//===- CostModel.h - Per-variant operation cost models ----------*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The performance model of the paper (§3.1.1, §4.1): for every cost
/// dimension D, collection variant V and critical operation op, a cubic
/// polynomial cost_op,V(s) of the maximum collection size s. The model
/// also implements the paper's total-cost metric
///
///   tc_W(V) = sum_op N_op,W * cost_op,V(s_W)
///
/// over a workload profile W, which allocation contexts aggregate over
/// all monitored instances to obtain TC_D(V).
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_MODEL_COSTMODEL_H
#define CSWITCH_MODEL_COSTMODEL_H

#include "collections/Variants.h"
#include "profile/WorkloadProfile.h"
#include "support/Polynomial.h"

#include <array>
#include <iosfwd>
#include <string>
#include <vector>

namespace cswitch {

/// Cost dimensions the framework optimizes (paper §3.1.1: "multiple cost
/// dimensions such as execution time and memory overhead"; energy is the
/// paper's §7 future-work dimension, realized here as a derived model —
/// see EnergyModel.h).
enum class CostDimension : unsigned {
  Time,   ///< Nanoseconds per operation.
  Alloc,  ///< Bytes allocated per operation.
  Energy, ///< Nanojoules per operation (derived; EnergyModel.h).
  /// Extra nanoseconds per operation as a polynomial of the *observed
  /// thread count* (not the collection size): the synchronization
  /// penalty of the concurrent tier. Empty for sequential variants; for
  /// concurrent variants the polynomial is shaped so it evaluates to ~0
  /// at one thread and grows with contention (DESIGN.md §11).
  Contention,
};

/// Number of CostDimension values.
constexpr size_t NumCostDimensions = 4;

/// All cost dimensions, in enum order.
constexpr std::array<CostDimension, NumCostDimensions> AllCostDimensions = {
    CostDimension::Time, CostDimension::Alloc, CostDimension::Energy,
    CostDimension::Contention};

/// Returns "time", "alloc", "energy" or "contention".
const char *costDimensionName(CostDimension Dim);

/// Parses a cost dimension name; returns false if unknown.
bool parseCostDimension(const std::string &Name, CostDimension &Out);

/// Per-dimension cost components of one (variant, workload) pair — the
/// unfolded breakdown the decision provenance ledger records alongside
/// the folded scalar the selection rule consumes (DESIGN.md §14).
struct CostVector {
  std::array<double, NumCostDimensions> Components = {};

  double of(CostDimension Dim) const {
    return Components[static_cast<size_t>(Dim)];
  }
  double &of(CostDimension Dim) {
    return Components[static_cast<size_t>(Dim)];
  }
};

/// Hardware-specific cost polynomials for every (variant, operation,
/// dimension) triple.
///
/// Built either by the ModelBuilder (benchmarking the target machine,
/// paper §4.1) or loaded from a serialized model file; a built-in default
/// model ships with the library (DefaultModel.h) so the framework works
/// out of the box.
class PerformanceModel {
public:
  PerformanceModel();

  /// Installs the cost polynomial for one triple.
  void setCost(VariantId Variant, OperationKind Op, CostDimension Dim,
               Polynomial Cost);

  /// Returns the cost polynomial of one triple (zero polynomial if never
  /// set).
  const Polynomial &cost(VariantId Variant, OperationKind Op,
                         CostDimension Dim) const;

  /// Predicted cost of one \p Op execution on a collection of maximum
  /// size \p Size (clamped to be non-negative).
  double operationCost(VariantId Variant, OperationKind Op,
                       CostDimension Dim, double Size) const;

  /// The paper's tc_W(V): predicted total cost of executing the workload
  /// \p Profile on variant \p Variant, using the profile's maximum size
  /// as the size argument of every operation model (a deliberate
  /// overestimate, §3.1.1).
  double totalCost(VariantId Variant, const WorkloadProfile &Profile,
                   CostDimension Dim) const;

  /// Full per-dimension breakdown of tc_W(V): every dimension's total
  /// over \p Profile, with the contention polynomials evaluated at
  /// \p ThreadCount (their argument is the observed thread count, not
  /// the collection size). Nothing is folded — the time component
  /// excludes the contention penalty; callers that want the selection
  /// rule's folded scalar add the two (exactly what the provenance
  /// ledger records as pre-fold components).
  CostVector totalCostVector(VariantId Variant,
                             const WorkloadProfile &Profile,
                             double ThreadCount) const;

  /// True if any polynomial is set for \p Variant. O(1): coverage is
  /// tracked as a per-abstraction bitmap maintained by setCost()/load()
  /// instead of re-scanning every (op, dimension) polynomial.
  bool hasVariant(VariantId Variant) const;

  /// Bitmap of covered variants of \p Kind (bit V set iff variant V has
  /// at least one polynomial).
  uint32_t coverageMask(AbstractionKind Kind) const {
    return Coverage[static_cast<size_t>(Kind)];
  }

  /// Serializes the model as a line-oriented text document.
  void save(std::ostream &OS) const;

  /// Parses a model produced by save(). \returns false (and leaves the
  /// model partially updated) on malformed input: unknown names,
  /// non-finite (NaN/Inf) coefficients, duplicate
  /// (abstraction, variant, operation, dimension) rows, or trailing
  /// garbage after the coefficients. When \p Error is non-null it
  /// receives a line-numbered diagnostic on failure.
  bool load(std::istream &IS, std::string *Error = nullptr);

  /// Convenience wrappers over save()/load() for files. Return false on
  /// I/O or parse failure.
  bool saveToFile(const std::string &Path) const;
  bool loadFromFile(const std::string &Path, std::string *Error = nullptr);

private:
  size_t indexOf(VariantId Variant, OperationKind Op,
                 CostDimension Dim) const;

  /// Dense storage: abstraction-major, then variant, operation, dimension.
  std::vector<Polynomial> Costs;
  /// Start offset of each abstraction in Costs.
  std::array<size_t, NumAbstractionKinds> AbstractionOffsets;
  /// Per-abstraction coverage bitmaps (bit V set iff variant V has at
  /// least one non-empty polynomial); kept in sync by setCost().
  std::array<uint32_t, NumAbstractionKinds> Coverage = {};
};

} // namespace cswitch

#endif // CSWITCH_MODEL_COSTMODEL_H
