//===- DefaultModel.h - Built-in fallback performance model -----*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A built-in performance model with analytic cost estimates for every
/// variant, so the framework selects sensibly out of the box and unit
/// tests are deterministic. The paper's position (§4.1) is that the model
/// must be rebuilt per target machine — run `bench/model_builder` to
/// regenerate and persist a measured model; this file only encodes the
/// *relative structure* every machine shares (array scans are linear and
/// cheap per element, chained tables pay pointer chasing, open tables are
/// constant-time, compact tables trade lookup speed for bytes).
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_MODEL_DEFAULTMODEL_H
#define CSWITCH_MODEL_DEFAULTMODEL_H

#include "model/CostModel.h"

namespace cswitch {

/// Returns the built-in analytic performance model.
PerformanceModel defaultPerformanceModel();

/// Backfills \p Model with the default rows of the concurrent-tier
/// variants it does not cover, and with the analytic contention
/// polynomials (which no measurement produces). Lets models serialized
/// before the concurrent tier existed — or rebuilt by the single-thread
/// ModelBuilder — drive concurrent selection.
void augmentConcurrentCoverage(PerformanceModel &Model);

} // namespace cswitch

#endif // CSWITCH_MODEL_DEFAULTMODEL_H
