//===- EnergyModel.cpp - Derived energy cost dimension --------------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//

#include "model/EnergyModel.h"

using namespace cswitch;

void cswitch::deriveEnergyModel(PerformanceModel &Model,
                                const EnergyCoefficients &Coefficients) {
  for (size_t A = 0; A != NumAbstractionKinds; ++A) {
    auto Kind = static_cast<AbstractionKind>(A);
    for (size_t V = 0, E = numVariantsOf(Kind); V != E; ++V) {
      VariantId Id{Kind, static_cast<unsigned>(V)};
      for (OperationKind Op : AllOperationKinds) {
        const Polynomial &Time = Model.cost(Id, Op, CostDimension::Time);
        const Polynomial &Alloc = Model.cost(Id, Op, CostDimension::Alloc);
        if (Time.coefficients().empty() && Alloc.coefficients().empty())
          continue;
        Polynomial Energy =
            Time.scaled(Coefficients.NanojoulesPerNanosecond) +
            Alloc.scaled(Coefficients.NanojoulesPerByte);
        Model.setCost(Id, Op, CostDimension::Energy, std::move(Energy));
      }
    }
  }
}
