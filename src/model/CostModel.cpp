//===- CostModel.cpp - Per-variant operation cost models -----------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//

#include "model/CostModel.h"

#include <cassert>
#include <fstream>
#include <sstream>

using namespace cswitch;

const char *cswitch::costDimensionName(CostDimension Dim) {
  switch (Dim) {
  case CostDimension::Time:
    return "time";
  case CostDimension::Alloc:
    return "alloc";
  case CostDimension::Energy:
    return "energy";
  }
  return "unknown";
}

bool cswitch::parseCostDimension(const std::string &Name,
                                 CostDimension &Out) {
  for (CostDimension Dim : AllCostDimensions) {
    if (Name == costDimensionName(Dim)) {
      Out = Dim;
      return true;
    }
  }
  return false;
}

PerformanceModel::PerformanceModel() {
  size_t Offset = 0;
  for (size_t A = 0; A != NumAbstractionKinds; ++A) {
    AbstractionOffsets[A] = Offset;
    Offset += numVariantsOf(static_cast<AbstractionKind>(A)) *
              NumOperationKinds * NumCostDimensions;
  }
  Costs.resize(Offset);
}

size_t PerformanceModel::indexOf(VariantId Variant, OperationKind Op,
                                 CostDimension Dim) const {
  size_t A = static_cast<size_t>(Variant.Abstraction);
  assert(Variant.Index < numVariantsOf(Variant.Abstraction) &&
         "variant index out of range");
  return AbstractionOffsets[A] +
         (Variant.Index * NumOperationKinds + static_cast<size_t>(Op)) *
             NumCostDimensions +
         static_cast<size_t>(Dim);
}

void PerformanceModel::setCost(VariantId Variant, OperationKind Op,
                               CostDimension Dim, Polynomial Cost) {
  bool NonEmpty = !Cost.coefficients().empty();
  Costs[indexOf(Variant, Op, Dim)] = std::move(Cost);
  size_t A = static_cast<size_t>(Variant.Abstraction);
  uint32_t Bit = 1u << Variant.Index;
  if (NonEmpty) {
    Coverage[A] |= Bit;
    return;
  }
  if (!(Coverage[A] & Bit))
    return;
  // An installed polynomial was cleared: the bit survives only if some
  // other (op, dimension) slot of this variant is still populated.
  for (OperationKind O : AllOperationKinds)
    for (CostDimension D : AllCostDimensions)
      if (!cost(Variant, O, D).coefficients().empty())
        return;
  Coverage[A] &= ~Bit;
}

const Polynomial &PerformanceModel::cost(VariantId Variant, OperationKind Op,
                                         CostDimension Dim) const {
  return Costs[indexOf(Variant, Op, Dim)];
}

double PerformanceModel::operationCost(VariantId Variant, OperationKind Op,
                                       CostDimension Dim,
                                       double Size) const {
  return cost(Variant, Op, Dim).evaluateNonNegative(Size);
}

double PerformanceModel::totalCost(VariantId Variant,
                                   const WorkloadProfile &Profile,
                                   CostDimension Dim) const {
  double Size = static_cast<double>(Profile.MaxSize);
  double Total = 0.0;
  for (OperationKind Op : AllOperationKinds) {
    uint64_t N = Profile.count(Op);
    if (N == 0)
      continue;
    Total += static_cast<double>(N) * operationCost(Variant, Op, Dim, Size);
  }
  return Total;
}

bool PerformanceModel::hasVariant(VariantId Variant) const {
  assert(Variant.Index < numVariantsOf(Variant.Abstraction) &&
         "variant index out of range");
  return (Coverage[static_cast<size_t>(Variant.Abstraction)] >>
          Variant.Index) &
         1u;
}

void PerformanceModel::save(std::ostream &OS) const {
  OS << "cswitch-performance-model v1\n";
  OS.precision(17);
  for (size_t A = 0; A != NumAbstractionKinds; ++A) {
    auto Kind = static_cast<AbstractionKind>(A);
    for (size_t V = 0, E = numVariantsOf(Kind); V != E; ++V) {
      VariantId Id{Kind, static_cast<unsigned>(V)};
      for (OperationKind Op : AllOperationKinds) {
        for (CostDimension Dim : AllCostDimensions) {
          const Polynomial &P = cost(Id, Op, Dim);
          if (P.coefficients().empty())
            continue;
          OS << abstractionKindName(Kind) << ' ' << Id.name() << ' '
             << operationKindName(Op) << ' ' << costDimensionName(Dim);
          for (double C : P.coefficients())
            OS << ' ' << C;
          OS << '\n';
        }
      }
    }
  }
}

bool PerformanceModel::load(std::istream &IS) {
  std::string Header;
  if (!std::getline(IS, Header) ||
      Header != "cswitch-performance-model v1")
    return false;

  std::string Line;
  while (std::getline(IS, Line)) {
    if (Line.empty() || Line[0] == '#')
      continue;
    std::istringstream LS(Line);
    std::string Abstraction, VariantName, OpName, DimName;
    if (!(LS >> Abstraction >> VariantName >> OpName >> DimName))
      return false;

    VariantId Id{AbstractionKind::List, 0};
    if (Abstraction == "list") {
      ListVariant V;
      if (!parseListVariant(VariantName, V))
        return false;
      Id = VariantId::of(V);
    } else if (Abstraction == "set") {
      SetVariant V;
      if (!parseSetVariant(VariantName, V))
        return false;
      Id = VariantId::of(V);
    } else if (Abstraction == "map") {
      MapVariant V;
      if (!parseMapVariant(VariantName, V))
        return false;
      Id = VariantId::of(V);
    } else {
      return false;
    }

    OperationKind Op;
    if (!parseOperationKind(OpName.c_str(), Op))
      return false;
    CostDimension Dim;
    if (!parseCostDimension(DimName, Dim))
      return false;

    std::vector<double> Coeffs;
    double C;
    while (LS >> C)
      Coeffs.push_back(C);
    if (Coeffs.empty())
      return false;
    setCost(Id, Op, Dim, Polynomial(std::move(Coeffs)));
  }
  return true;
}

bool PerformanceModel::saveToFile(const std::string &Path) const {
  std::ofstream OS(Path);
  if (!OS)
    return false;
  save(OS);
  return static_cast<bool>(OS);
}

bool PerformanceModel::loadFromFile(const std::string &Path) {
  std::ifstream IS(Path);
  if (!IS)
    return false;
  return load(IS);
}
