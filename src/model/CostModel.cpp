//===- CostModel.cpp - Per-variant operation cost models -----------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//

#include "model/CostModel.h"

#include <cassert>
#include <cmath>
#include <fstream>
#include <set>
#include <sstream>

using namespace cswitch;

const char *cswitch::costDimensionName(CostDimension Dim) {
  switch (Dim) {
  case CostDimension::Time:
    return "time";
  case CostDimension::Alloc:
    return "alloc";
  case CostDimension::Energy:
    return "energy";
  case CostDimension::Contention:
    return "contention";
  }
  return "unknown";
}

bool cswitch::parseCostDimension(const std::string &Name,
                                 CostDimension &Out) {
  for (CostDimension Dim : AllCostDimensions) {
    if (Name == costDimensionName(Dim)) {
      Out = Dim;
      return true;
    }
  }
  return false;
}

PerformanceModel::PerformanceModel() {
  size_t Offset = 0;
  for (size_t A = 0; A != NumAbstractionKinds; ++A) {
    AbstractionOffsets[A] = Offset;
    Offset += numVariantsOf(static_cast<AbstractionKind>(A)) *
              NumOperationKinds * NumCostDimensions;
  }
  Costs.resize(Offset);
}

size_t PerformanceModel::indexOf(VariantId Variant, OperationKind Op,
                                 CostDimension Dim) const {
  size_t A = static_cast<size_t>(Variant.Abstraction);
  assert(Variant.Index < numVariantsOf(Variant.Abstraction) &&
         "variant index out of range");
  return AbstractionOffsets[A] +
         (Variant.Index * NumOperationKinds + static_cast<size_t>(Op)) *
             NumCostDimensions +
         static_cast<size_t>(Dim);
}

void PerformanceModel::setCost(VariantId Variant, OperationKind Op,
                               CostDimension Dim, Polynomial Cost) {
  bool NonEmpty = !Cost.coefficients().empty();
  Costs[indexOf(Variant, Op, Dim)] = std::move(Cost);
  size_t A = static_cast<size_t>(Variant.Abstraction);
  uint32_t Bit = 1u << Variant.Index;
  if (NonEmpty) {
    Coverage[A] |= Bit;
    return;
  }
  if (!(Coverage[A] & Bit))
    return;
  // An installed polynomial was cleared: the bit survives only if some
  // other (op, dimension) slot of this variant is still populated.
  for (OperationKind O : AllOperationKinds)
    for (CostDimension D : AllCostDimensions)
      if (!cost(Variant, O, D).coefficients().empty())
        return;
  Coverage[A] &= ~Bit;
}

const Polynomial &PerformanceModel::cost(VariantId Variant, OperationKind Op,
                                         CostDimension Dim) const {
  return Costs[indexOf(Variant, Op, Dim)];
}

double PerformanceModel::operationCost(VariantId Variant, OperationKind Op,
                                       CostDimension Dim,
                                       double Size) const {
  return cost(Variant, Op, Dim).evaluateNonNegative(Size);
}

double PerformanceModel::totalCost(VariantId Variant,
                                   const WorkloadProfile &Profile,
                                   CostDimension Dim) const {
  double Size = static_cast<double>(Profile.MaxSize);
  double Total = 0.0;
  for (OperationKind Op : AllOperationKinds) {
    uint64_t N = Profile.count(Op);
    if (N == 0)
      continue;
    Total += static_cast<double>(N) * operationCost(Variant, Op, Dim, Size);
  }
  return Total;
}

CostVector
PerformanceModel::totalCostVector(VariantId Variant,
                                  const WorkloadProfile &Profile,
                                  double ThreadCount) const {
  double Size = static_cast<double>(Profile.MaxSize);
  CostVector Out;
  for (OperationKind Op : AllOperationKinds) {
    uint64_t N = Profile.count(Op);
    if (N == 0)
      continue;
    double Scale = static_cast<double>(N);
    for (CostDimension Dim : AllCostDimensions) {
      double Arg = Dim == CostDimension::Contention ? ThreadCount : Size;
      Out.of(Dim) += Scale * operationCost(Variant, Op, Dim, Arg);
    }
  }
  return Out;
}

bool PerformanceModel::hasVariant(VariantId Variant) const {
  assert(Variant.Index < numVariantsOf(Variant.Abstraction) &&
         "variant index out of range");
  return (Coverage[static_cast<size_t>(Variant.Abstraction)] >>
          Variant.Index) &
         1u;
}

void PerformanceModel::save(std::ostream &OS) const {
  OS << "cswitch-performance-model v1\n";
  OS.precision(17);
  for (size_t A = 0; A != NumAbstractionKinds; ++A) {
    auto Kind = static_cast<AbstractionKind>(A);
    for (size_t V = 0, E = numVariantsOf(Kind); V != E; ++V) {
      VariantId Id{Kind, static_cast<unsigned>(V)};
      for (OperationKind Op : AllOperationKinds) {
        for (CostDimension Dim : AllCostDimensions) {
          const Polynomial &P = cost(Id, Op, Dim);
          if (P.coefficients().empty())
            continue;
          OS << abstractionKindName(Kind) << ' ' << Id.name() << ' '
             << operationKindName(Op) << ' ' << costDimensionName(Dim);
          for (double C : P.coefficients())
            OS << ' ' << C;
          OS << '\n';
        }
      }
    }
  }
}

namespace {

/// Formats "line N: <what>" into *Error (when provided) and returns
/// false, so load() can `return fail(...)` at every reject site.
bool fail(std::string *Error, size_t LineNo, const std::string &What) {
  if (Error)
    *Error = "line " + std::to_string(LineNo) + ": " + What;
  return false;
}

} // namespace

bool PerformanceModel::load(std::istream &IS, std::string *Error) {
  std::string Header;
  if (!std::getline(IS, Header) ||
      Header != "cswitch-performance-model v1")
    return fail(Error, 1, "not a cswitch-performance-model v1 document");

  // A well-formed document carries at most one polynomial per
  // (variant, operation, dimension) cell; a duplicate means the file
  // was corrupted or concatenated, and silently keeping the last row
  // would mask that.
  std::set<size_t> SeenCells;

  std::string Line;
  size_t LineNo = 1;
  while (std::getline(IS, Line)) {
    ++LineNo;
    if (Line.empty() || Line[0] == '#')
      continue;
    std::istringstream LS(Line);
    std::string Abstraction, VariantName, OpName, DimName;
    if (!(LS >> Abstraction >> VariantName >> OpName >> DimName))
      return fail(Error, LineNo, "truncated row");

    VariantId Id{AbstractionKind::List, 0};
    if (Abstraction == "list") {
      ListVariant V;
      if (!parseListVariant(VariantName, V))
        return fail(Error, LineNo, "unknown list variant '" + VariantName +
                                       "'");
      Id = VariantId::of(V);
    } else if (Abstraction == "set") {
      SetVariant V;
      if (!parseSetVariant(VariantName, V))
        return fail(Error, LineNo,
                    "unknown set variant '" + VariantName + "'");
      Id = VariantId::of(V);
    } else if (Abstraction == "map") {
      MapVariant V;
      if (!parseMapVariant(VariantName, V))
        return fail(Error, LineNo,
                    "unknown map variant '" + VariantName + "'");
      Id = VariantId::of(V);
    } else {
      return fail(Error, LineNo,
                  "unknown abstraction '" + Abstraction + "'");
    }

    OperationKind Op;
    if (!parseOperationKind(OpName.c_str(), Op))
      return fail(Error, LineNo, "unknown operation '" + OpName + "'");
    CostDimension Dim;
    if (!parseCostDimension(DimName, Dim))
      return fail(Error, LineNo, "unknown cost dimension '" + DimName + "'");

    if (!SeenCells.insert(indexOf(Id, Op, Dim)).second)
      return fail(Error, LineNo,
                  "duplicate row for " + Abstraction + " " + Id.name() +
                      " " + OpName + " " + DimName);

    std::vector<double> Coeffs;
    double C;
    while (LS >> C) {
      // operator>> accepts "nan"/"inf" spellings on common libstdc++
      // configurations; a non-finite coefficient would poison every
      // cost comparison downstream, so reject it here.
      if (!std::isfinite(C))
        return fail(Error, LineNo, "non-finite coefficient");
      Coeffs.push_back(C);
    }
    if (Coeffs.empty())
      return fail(Error, LineNo, "row has no coefficients");
    if (!LS.eof()) {
      std::string Rest;
      LS.clear();
      LS >> Rest;
      return fail(Error, LineNo,
                  "trailing garbage '" + Rest + "' after coefficients");
    }
    setCost(Id, Op, Dim, Polynomial(std::move(Coeffs)));
  }
  return true;
}

bool PerformanceModel::saveToFile(const std::string &Path) const {
  std::ofstream OS(Path);
  if (!OS)
    return false;
  save(OS);
  return static_cast<bool>(OS);
}

bool PerformanceModel::loadFromFile(const std::string &Path,
                                    std::string *Error) {
  std::ifstream IS(Path);
  if (!IS) {
    if (Error)
      *Error = "cannot open " + Path;
    return false;
  }
  return load(IS, Error);
}
