//===- ModelBuilder.cpp - Benchmark-driven model construction ------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//

#include "model/ModelBuilder.h"

#include "model/EnergyModel.h"

#include "collections/Factory.h"
#include "support/LeastSquares.h"
#include "support/MemoryTracker.h"
#include "support/Random.h"
#include "support/Timer.h"

#include <sstream>

using namespace cswitch;

namespace {

/// Element type of the factorial plan (paper Table 3: Integer, uniform).
using Elem = int64_t;

/// Defeats dead-code elimination of lookup results.
volatile uint64_t MeasurementSink;

/// One measured sample: per-operation nanoseconds and allocated bytes.
struct OpSample {
  double Nanos;
  double AllocBytes;
};

/// Times \p Body until both MinSampleNanos and one full execution have
/// elapsed; \p OpsPerExecution ops happen per Body call.
template <typename Fn>
OpSample measurePerOp(uint64_t MinSampleNanos, size_t OpsPerExecution,
                      Fn &&Body) {
  AllocationScope Alloc;
  Timer Clock;
  uint64_t Executions = 0;
  do {
    Body();
    ++Executions;
  } while (Clock.elapsedNanos() < MinSampleNanos);
  double Ops =
      static_cast<double>(Executions) * static_cast<double>(OpsPerExecution);
  return {static_cast<double>(Clock.elapsedNanos()) / Ops,
          static_cast<double>(Alloc.allocatedInScope()) / Ops};
}

/// Uniform distinct keys for a collection of \p Size elements, plus an
/// equal number of keys guaranteed absent (the paper's contains scenario
/// mixes hits and misses).
struct KeySet {
  std::vector<Elem> Present;
  std::vector<Elem> Absent;

  KeySet(SplitMix64 &Rng, size_t Size) {
    std::vector<Elem> All =
        distinctIntegers(Rng, Size * 2, static_cast<int64_t>(Size) * 16 + 64);
    Present.assign(All.begin(), All.begin() + static_cast<ptrdiff_t>(Size));
    Absent.assign(All.begin() + static_cast<ptrdiff_t>(Size), All.end());
  }
};

//===----------------------------------------------------------------------===//
// List scenarios
//===----------------------------------------------------------------------===//

void runListScenarios(
    ListVariant Variant, OperationKind Op, size_t Size, SplitMix64 &Rng,
    const ModelBuildOptions &Options,
    const std::function<void(const OpSample &)> &EmitSample) {
  KeySet Keys(Rng, Size);
  size_t Iterations = Options.WarmupIterations + Options.MeasuredIterations;

  // Pre-populated instance for the read-mostly scenarios.
  std::unique_ptr<ListImpl<Elem>> Populated = makeListImpl<Elem>(Variant);
  if (Op != OperationKind::Populate) {
    Populated->reserve(Size);
    for (Elem V : Keys.Present)
      Populated->push_back(V);
  }

  for (size_t It = 0; It != Iterations; ++It) {
    OpSample Sample{0, 0};
    switch (Op) {
    case OperationKind::Populate:
      Sample = measurePerOp(Options.MinSampleNanos, Size, [&] {
        std::unique_ptr<ListImpl<Elem>> L = makeListImpl<Elem>(Variant);
        for (Elem V : Keys.Present)
          L->push_back(V);
        MeasurementSink = MeasurementSink + static_cast<uint64_t>(L->size());
      });
      break;
    case OperationKind::Contains:
      Sample = measurePerOp(Options.MinSampleNanos, Size * 2, [&] {
        uint64_t Found = 0;
        for (size_t I = 0; I != Size; ++I) {
          Found += Populated->contains(Keys.Present[I]);
          Found += Populated->contains(Keys.Absent[I]);
        }
        MeasurementSink = MeasurementSink + static_cast<uint64_t>(Found);
      });
      break;
    case OperationKind::Iterate:
      Sample = measurePerOp(Options.MinSampleNanos, 1, [&] {
        uint64_t Sum = 0;
        Populated->forEach([&Sum](const Elem &V) {
          Sum += static_cast<uint64_t>(V);
        });
        MeasurementSink = MeasurementSink + static_cast<uint64_t>(Sum);
      });
      break;
    case OperationKind::IndexAccess:
      Sample = measurePerOp(Options.MinSampleNanos, Size, [&] {
        uint64_t Sum = 0;
        // A fixed stride visits all positions in shuffled-ish order
        // without per-access RNG cost.
        size_t Index = 0;
        for (size_t I = 0; I != Size; ++I) {
          Index = (Index + 7) % Size;
          Sum += static_cast<uint64_t>(Populated->at(Index));
        }
        MeasurementSink = MeasurementSink + static_cast<uint64_t>(Sum);
      });
      break;
    case OperationKind::Middle:
      Sample = measurePerOp(Options.MinSampleNanos, 2, [&] {
        Populated->insertAt(Populated->size() / 2, Keys.Absent[0]);
        Populated->removeAt(Populated->size() / 2);
      });
      break;
    case OperationKind::Remove:
      Sample = measurePerOp(Options.MinSampleNanos, 2, [&] {
        // Remove a present value, then re-add it to keep the size
        // stable; half the measured pair is a push_back, which slightly
        // and uniformly overestimates remove on all variants.
        Elem V = Keys.Present[MeasurementSink % Size];
        MeasurementSink =
            MeasurementSink + static_cast<uint64_t>(Populated->removeValue(V));
        Populated->push_back(V);
      });
      break;
    }
    if (It >= Options.WarmupIterations)
      EmitSample(Sample);
  }
}

//===----------------------------------------------------------------------===//
// Set scenarios
//===----------------------------------------------------------------------===//

void runSetScenarios(
    SetVariant Variant, OperationKind Op, size_t Size, SplitMix64 &Rng,
    const ModelBuildOptions &Options,
    const std::function<void(const OpSample &)> &EmitSample) {
  KeySet Keys(Rng, Size);
  size_t Iterations = Options.WarmupIterations + Options.MeasuredIterations;

  std::unique_ptr<SetImpl<Elem>> Populated = makeSetImpl<Elem>(Variant);
  if (Op != OperationKind::Populate)
    for (Elem V : Keys.Present)
      Populated->add(V);

  for (size_t It = 0; It != Iterations; ++It) {
    OpSample Sample{0, 0};
    switch (Op) {
    case OperationKind::Populate:
      Sample = measurePerOp(Options.MinSampleNanos, Size, [&] {
        std::unique_ptr<SetImpl<Elem>> S = makeSetImpl<Elem>(Variant);
        for (Elem V : Keys.Present)
          S->add(V);
        MeasurementSink = MeasurementSink + static_cast<uint64_t>(S->size());
      });
      break;
    case OperationKind::Contains:
      Sample = measurePerOp(Options.MinSampleNanos, Size * 2, [&] {
        uint64_t Found = 0;
        for (size_t I = 0; I != Size; ++I) {
          Found += Populated->contains(Keys.Present[I]);
          Found += Populated->contains(Keys.Absent[I]);
        }
        MeasurementSink = MeasurementSink + static_cast<uint64_t>(Found);
      });
      break;
    case OperationKind::Iterate:
      Sample = measurePerOp(Options.MinSampleNanos, 1, [&] {
        uint64_t Sum = 0;
        Populated->forEach([&Sum](const Elem &V) {
          Sum += static_cast<uint64_t>(V);
        });
        MeasurementSink = MeasurementSink + static_cast<uint64_t>(Sum);
      });
      break;
    case OperationKind::Remove:
      Sample = measurePerOp(Options.MinSampleNanos, 2, [&] {
        Elem V = Keys.Present[MeasurementSink % Size];
        MeasurementSink =
            MeasurementSink + static_cast<uint64_t>(Populated->remove(V));
        Populated->add(V);
      });
      break;
    case OperationKind::IndexAccess:
    case OperationKind::Middle:
      // Not part of the set abstraction; no model is produced.
      return;
    }
    if (It >= Options.WarmupIterations)
      EmitSample(Sample);
  }
}

//===----------------------------------------------------------------------===//
// Map scenarios
//===----------------------------------------------------------------------===//

void runMapScenarios(
    MapVariant Variant, OperationKind Op, size_t Size, SplitMix64 &Rng,
    const ModelBuildOptions &Options,
    const std::function<void(const OpSample &)> &EmitSample) {
  KeySet Keys(Rng, Size);
  size_t Iterations = Options.WarmupIterations + Options.MeasuredIterations;

  std::unique_ptr<MapImpl<Elem, Elem>> Populated =
      makeMapImpl<Elem, Elem>(Variant);
  if (Op != OperationKind::Populate)
    for (Elem V : Keys.Present)
      Populated->put(V, V * 3);

  for (size_t It = 0; It != Iterations; ++It) {
    OpSample Sample{0, 0};
    switch (Op) {
    case OperationKind::Populate:
      Sample = measurePerOp(Options.MinSampleNanos, Size, [&] {
        std::unique_ptr<MapImpl<Elem, Elem>> M =
            makeMapImpl<Elem, Elem>(Variant);
        for (Elem V : Keys.Present)
          M->put(V, V * 3);
        MeasurementSink = MeasurementSink + static_cast<uint64_t>(M->size());
      });
      break;
    case OperationKind::Contains:
      Sample = measurePerOp(Options.MinSampleNanos, Size * 2, [&] {
        uint64_t Found = 0;
        for (size_t I = 0; I != Size; ++I) {
          Found += Populated->get(Keys.Present[I]) != nullptr;
          Found += Populated->get(Keys.Absent[I]) != nullptr;
        }
        MeasurementSink = MeasurementSink + static_cast<uint64_t>(Found);
      });
      break;
    case OperationKind::Iterate:
      Sample = measurePerOp(Options.MinSampleNanos, 1, [&] {
        uint64_t Sum = 0;
        Populated->forEach([&Sum](const Elem &K, const Elem &V) {
          Sum += static_cast<uint64_t>(K) + static_cast<uint64_t>(V);
        });
        MeasurementSink = MeasurementSink + static_cast<uint64_t>(Sum);
      });
      break;
    case OperationKind::Remove:
      Sample = measurePerOp(Options.MinSampleNanos, 2, [&] {
        Elem K = Keys.Present[MeasurementSink % Size];
        MeasurementSink =
            MeasurementSink + static_cast<uint64_t>(Populated->remove(K));
        Populated->put(K, K * 3);
      });
      break;
    case OperationKind::IndexAccess:
    case OperationKind::Middle:
      return;
    }
    if (It >= Options.WarmupIterations)
      EmitSample(Sample);
  }
}

} // namespace

std::vector<size_t> ModelBuildOptions::paperSizes() {
  std::vector<size_t> Sizes;
  Sizes.push_back(10);
  for (size_t S = 50; S <= 1000; S += 50)
    Sizes.push_back(S);
  return Sizes;
}

ModelBuildOptions ModelBuildOptions::quick() {
  ModelBuildOptions Options;
  Options.Sizes = {10, 25, 50, 100, 200, 400, 700, 1000};
  Options.WarmupIterations = 1;
  Options.MeasuredIterations = 3;
  Options.MinSampleNanos = 50000;
  return Options;
}

ModelBuilder::ModelBuilder(ModelBuildOptions Opts)
    : Options(std::move(Opts)) {
  if (Options.Sizes.empty())
    Options.Sizes = ModelBuildOptions::paperSizes();
}

void ModelBuilder::report(const std::string &Line) {
  if (Progress)
    Progress(Line);
}

void ModelBuilder::fitAndStore(PerformanceModel &Model, VariantId Variant,
                               OperationKind Op,
                               const std::vector<double> &Sizes,
                               const std::vector<double> &TimeSamples,
                               const std::vector<double> &AllocSamples) {
  if (Sizes.size() < Options.PolynomialDegree + 1)
    return;
  Model.setCost(Variant, Op, CostDimension::Time,
                fitPolynomial(Sizes, TimeSamples, Options.PolynomialDegree));
  Model.setCost(Variant, Op, CostDimension::Alloc,
                fitPolynomial(Sizes, AllocSamples,
                              Options.PolynomialDegree));
  std::ostringstream OS;
  OS << Variant.name() << ' ' << operationKindName(Op) << ": time="
     << Model.cost(Variant, Op, CostDimension::Time).toString();
  report(OS.str());
}

void ModelBuilder::buildListModels(PerformanceModel &Model) {
  for (ListVariant Variant : AllListVariants) {
    // The concurrent tier is never calibrated here: single-threaded
    // timing of lock-based variants measures only the uncontended fast
    // path, and the resulting noisy rows would make the mutex-vs-
    // striped decision depend on calibration luck instead of the
    // contention model. Their rows always come from the analytic
    // defaults (augmentConcurrentCoverage).
    if (isConcurrentVariant(AbstractionKind::List,
                            static_cast<unsigned>(Variant)))
      continue;
    for (OperationKind Op : AllOperationKinds) {
      std::vector<double> Xs, Times, Allocs;
      SplitMix64 Rng(Options.Seed);
      for (size_t Size : Options.Sizes) {
        runListScenarios(Variant, Op, Size, Rng, Options,
                         [&](const OpSample &S) {
                           Xs.push_back(static_cast<double>(Size));
                           Times.push_back(S.Nanos);
                           Allocs.push_back(S.AllocBytes);
                         });
      }
      fitAndStore(Model, VariantId::of(Variant), Op, Xs, Times, Allocs);
    }
  }
}

void ModelBuilder::buildSetModels(PerformanceModel &Model) {
  for (SetVariant Variant : AllSetVariants) {
    // Concurrent tier: analytic rows only (see buildListModels).
    if (isConcurrentVariant(AbstractionKind::Set,
                            static_cast<unsigned>(Variant)))
      continue;
    for (OperationKind Op : AllOperationKinds) {
      std::vector<double> Xs, Times, Allocs;
      SplitMix64 Rng(Options.Seed);
      for (size_t Size : Options.Sizes) {
        runSetScenarios(Variant, Op, Size, Rng, Options,
                        [&](const OpSample &S) {
                          Xs.push_back(static_cast<double>(Size));
                          Times.push_back(S.Nanos);
                          Allocs.push_back(S.AllocBytes);
                        });
      }
      fitAndStore(Model, VariantId::of(Variant), Op, Xs, Times, Allocs);
    }
  }
}

void ModelBuilder::buildMapModels(PerformanceModel &Model) {
  for (MapVariant Variant : AllMapVariants) {
    // Concurrent tier: analytic rows only (see buildListModels).
    if (isConcurrentVariant(AbstractionKind::Map,
                            static_cast<unsigned>(Variant)))
      continue;
    for (OperationKind Op : AllOperationKinds) {
      std::vector<double> Xs, Times, Allocs;
      SplitMix64 Rng(Options.Seed);
      for (size_t Size : Options.Sizes) {
        runMapScenarios(Variant, Op, Size, Rng, Options,
                        [&](const OpSample &S) {
                          Xs.push_back(static_cast<double>(Size));
                          Times.push_back(S.Nanos);
                          Allocs.push_back(S.AllocBytes);
                        });
      }
      fitAndStore(Model, VariantId::of(Variant), Op, Xs, Times, Allocs);
    }
  }
}

PerformanceModel ModelBuilder::build() {
  PerformanceModel Model;
  buildListModels(Model);
  buildSetModels(Model);
  buildMapModels(Model);
  // Derive the energy dimension from the measured time/alloc models.
  deriveEnergyModel(Model);
  return Model;
}
