//===- Rewriter.cpp - Allocation-site source rewriter ---------------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//

#include "rewriter/Rewriter.h"

#include <cassert>
#include <cctype>
#include <sstream>

using namespace cswitch;

namespace {

/// A minimal C++ token: just enough structure for declaration matching.
struct Token {
  enum KindType { Identifier, Punct, End } Kind;
  std::string Text;   ///< Identifier text or single punct character.
  size_t Offset;      ///< Byte offset in the source.
  size_t Line;        ///< 1-based line.
};

/// Lexes C++ source into identifiers and punctuation, skipping
/// whitespace, comments, string/char literals and numbers — the regions
/// a source rewriter must never match inside.
class Lexer {
public:
  explicit Lexer(const std::string &Source) : Src(Source) {}

  Token next() {
    skipIgnored();
    if (Pos >= Src.size())
      return {Token::End, "", Pos, Line};
    char C = Src[Pos];
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      size_t Start = Pos;
      while (Pos < Src.size() &&
             (std::isalnum(static_cast<unsigned char>(Src[Pos])) ||
              Src[Pos] == '_'))
        ++Pos;
      return {Token::Identifier, Src.substr(Start, Pos - Start), Start,
              Line};
    }
    ++Pos;
    return {Token::Punct, std::string(1, C), Pos - 1, Line};
  }

private:
  void skipIgnored() {
    while (Pos < Src.size()) {
      char C = Src[Pos];
      if (C == '\n') {
        ++Line;
        ++Pos;
      } else if (std::isspace(static_cast<unsigned char>(C))) {
        ++Pos;
      } else if (C == '/' && Pos + 1 < Src.size() &&
                 Src[Pos + 1] == '/') {
        while (Pos < Src.size() && Src[Pos] != '\n')
          ++Pos;
      } else if (C == '/' && Pos + 1 < Src.size() &&
                 Src[Pos + 1] == '*') {
        Pos += 2;
        while (Pos + 1 < Src.size() &&
               !(Src[Pos] == '*' && Src[Pos + 1] == '/')) {
          if (Src[Pos] == '\n')
            ++Line;
          ++Pos;
        }
        Pos = Pos + 2 <= Src.size() ? Pos + 2 : Src.size();
      } else if (C == '"' || C == '\'') {
        char Quote = C;
        ++Pos;
        while (Pos < Src.size() && Src[Pos] != Quote) {
          if (Src[Pos] == '\\')
            ++Pos;
          if (Pos < Src.size() && Src[Pos] == '\n')
            ++Line;
          ++Pos;
        }
        if (Pos < Src.size())
          ++Pos; // closing quote
      } else if (std::isdigit(static_cast<unsigned char>(C))) {
        while (Pos < Src.size() &&
               (std::isalnum(static_cast<unsigned char>(Src[Pos])) ||
                Src[Pos] == '.' || Src[Pos] == '\''))
          ++Pos;
      } else {
        return;
      }
    }
  }

  const std::string &Src;
  size_t Pos = 0;
  size_t Line = 1;
};

/// How one std container maps into the framework.
struct ContainerMapping {
  const char *StdName;       ///< e.g. "vector".
  AbstractionKind Abstraction;
  const char *DefaultVariant; ///< Default variant enum spelling.
  const char *FacadeName;     ///< Facade template (makeContext argument).
  const char *CreateMethod;   ///< Context create method.
};

const ContainerMapping Mappings[] = {
    {"vector", AbstractionKind::List, "ListVariant::ArrayList", "List",
     "createList"},
    {"unordered_set", AbstractionKind::Set,
     "SetVariant::ChainedHashSet", "Set", "createSet"},
    {"set", AbstractionKind::Set, "SetVariant::TreeSet", "Set",
     "createSet"},
    {"unordered_map", AbstractionKind::Map,
     "MapVariant::ChainedHashMap", "Map", "createMap"},
    {"map", AbstractionKind::Map, "MapVariant::TreeMap", "Map",
     "createMap"},
};

const ContainerMapping *findMapping(const std::string &Name) {
  for (const ContainerMapping &M : Mappings)
    if (Name == M.StdName)
      return &M;
  return nullptr;
}

/// A matched candidate declaration (byte range [Begin, End)).
struct Candidate {
  RewriteAction Action;
  size_t Begin;
  size_t End;
  const ContainerMapping *Mapping;
};

std::string buildReplacement(const Candidate &C) {
  std::ostringstream OS;
  OS << "static auto " << C.Action.VariableName
     << "_Ctx = cswitch::Switch::makeContext<cswitch::"
     << C.Mapping->FacadeName << "<" << C.Action.ElementText << ">>(\""
     << C.Action.SiteName << "\", cswitch::" << C.Mapping->DefaultVariant
     << "); auto " << C.Action.VariableName << " = "
     << C.Action.VariableName << "_Ctx->" << C.Mapping->CreateMethod
     << "();";
  return OS.str();
}

} // namespace

RewriteResult cswitch::rewriteSource(const std::string &Source,
                                     const RewriterOptions &Options) {
  RewriteResult Result;
  std::vector<Candidate> Candidates;

  Lexer Lex(Source);
  Token Tok = Lex.next();
  auto advance = [&] { Tok = Lex.next(); };

  while (Tok.Kind != Token::End) {
    // Match: `std` `::` <container> `<` ... `>` <name> `;`
    if (!(Tok.Kind == Token::Identifier && Tok.Text == "std")) {
      advance();
      continue;
    }
    size_t DeclBegin = Tok.Offset;
    size_t DeclLine = Tok.Line;
    advance();
    if (!(Tok.Kind == Token::Punct && Tok.Text == ":"))
      continue;
    advance();
    if (!(Tok.Kind == Token::Punct && Tok.Text == ":"))
      continue;
    advance();
    if (Tok.Kind != Token::Identifier)
      continue;
    const ContainerMapping *Mapping = findMapping(Tok.Text);
    if (!Mapping) {
      advance();
      continue;
    }
    std::string ContainerName = "std::" + Tok.Text;
    advance();
    if (!(Tok.Kind == Token::Punct && Tok.Text == "<"))
      continue;

    // Capture the template argument text with balanced angle brackets.
    size_t ElemBegin = Tok.Offset + 1;
    int Depth = 1;
    size_t ElemEnd = ElemBegin;
    advance();
    while (Tok.Kind != Token::End && Depth > 0) {
      if (Tok.Kind == Token::Punct && Tok.Text == "<")
        ++Depth;
      else if (Tok.Kind == Token::Punct && Tok.Text == ">") {
        --Depth;
        if (Depth == 0)
          ElemEnd = Tok.Offset;
      }
      advance();
    }
    if (Depth != 0)
      continue; // unbalanced; bail on this site.

    if (Tok.Kind != Token::Identifier)
      continue; // not a simple declaration (e.g. a function return type).
    std::string VariableName = Tok.Text;
    advance();

    RewriteAction Action;
    Action.Line = DeclLine;
    Action.ContainerName = ContainerName;
    Action.ElementText = Source.substr(ElemBegin, ElemEnd - ElemBegin);
    // Trim surrounding whitespace of the element text.
    while (!Action.ElementText.empty() &&
           std::isspace(static_cast<unsigned char>(
               Action.ElementText.front())))
      Action.ElementText.erase(Action.ElementText.begin());
    while (!Action.ElementText.empty() &&
           std::isspace(static_cast<unsigned char>(
               Action.ElementText.back())))
      Action.ElementText.pop_back();
    Action.VariableName = VariableName;
    Action.SiteName =
        Options.FileName + ":" + std::to_string(DeclLine);
    Action.Abstraction = Mapping->Abstraction;

    if (Tok.Kind == Token::Punct && Tok.Text == ";") {
      Action.Rewritten = !Options.DryRun;
      Candidates.push_back(
          {Action, DeclBegin, Tok.Offset + 1, Mapping});
      advance();
      continue;
    }

    // Initialized, function parameter, etc.: report but do not touch
    // (the paper's parser is equally conservative).
    Action.Rewritten = false;
    Action.SkipReason = "declaration has an initializer or is not a "
                        "simple local declaration";
    Candidates.push_back({Action, DeclBegin, DeclBegin, Mapping});
  }

  // Splice the replacements back to front so offsets stay valid.
  Result.Code = Source;
  for (auto It = Candidates.rbegin(); It != Candidates.rend(); ++It) {
    if (!It->Action.Rewritten)
      continue;
    Result.Code.replace(It->Begin, It->End - It->Begin,
                        buildReplacement(*It));
  }
  for (Candidate &C : Candidates)
    Result.Actions.push_back(std::move(C.Action));
  return Result;
}
