//===- Rewriter.h - Allocation-site source rewriter -------------*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The automated parser of the paper (§4.3): "an automated parser that
/// rewrites the code of collection instantiation to the adaptive context
/// required by our framework. The parser only identifies collections
/// already declared as using the JCF interfaces and only uses the static
/// context."
///
/// The C++ counterpart identifies default-initialized standard-container
/// declarations —
///
///   std::vector<int64_t> Rows;
///
/// — and rewrites them to a static allocation context plus a context-
/// created facade:
///
///   static auto Rows_Ctx =
///       cswitch::Switch::makeContext<cswitch::List<int64_t>>(
///           "file.cpp:42", cswitch::ListVariant::ArrayList);
///   auto Rows = Rows_Ctx->createList();
///
/// Like the paper's parser it is deliberately conservative: only
/// declarations with no initializer are touched (everything else is
/// reported as skipped), comments and string literals are never
/// rewritten, and the mapping of std containers to default variants
/// mirrors the JDK defaults (vector -> ArrayList, unordered_set ->
/// ChainedHashSet, set -> TreeSet, unordered_map -> ChainedHashMap,
/// map -> TreeMap).
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_REWRITER_REWRITER_H
#define CSWITCH_REWRITER_REWRITER_H

#include "collections/Variants.h"

#include <cstddef>
#include <string>
#include <vector>

namespace cswitch {

/// One declaration the rewriter identified.
struct RewriteAction {
  size_t Line = 0;            ///< 1-based source line.
  std::string ContainerName;  ///< e.g. "std::vector".
  std::string ElementText;    ///< Template argument text, verbatim.
  std::string VariableName;   ///< Declared variable.
  std::string SiteName;       ///< "<file>:<line>" used for the context.
  AbstractionKind Abstraction = AbstractionKind::List;
  bool Rewritten = false;     ///< False when only reported (initializer
                              ///< present, unsupported form, ...).
  std::string SkipReason;     ///< Set when !Rewritten.
};

/// Options of one rewriting pass.
struct RewriterOptions {
  /// File name used in generated site names ("<file>:<line>").
  std::string FileName = "input.cpp";
  /// Report candidate sites without changing the code.
  bool DryRun = false;
};

/// Result of rewriting one translation unit.
struct RewriteResult {
  std::string Code; ///< Rewritten source (== input when DryRun).
  std::vector<RewriteAction> Actions;

  /// Number of actions actually rewritten.
  size_t rewrittenCount() const {
    size_t N = 0;
    for (const RewriteAction &A : Actions)
      N += A.Rewritten;
    return N;
  }
};

/// Rewrites collection allocation sites in \p Source; see the file
/// comment for what is recognized. Never throws; unparseable regions are
/// simply left untouched.
RewriteResult rewriteSource(const std::string &Source,
                            const RewriterOptions &Options = {});

} // namespace cswitch

#endif // CSWITCH_REWRITER_REWRITER_H
