//===- SelectionStore.h - Cross-run persistent selections -------*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The persistent selection store: per-allocation-site aggregated
/// workload summaries plus the converged variant decision, carried
/// across process runs so restarted services skip the cold observation
/// ramp (the cost offline approaches — Chameleon, Brainy, §6 — avoid by
/// construction, recovered here without giving up online adaptivity).
///
/// One SelectionStore instance fronts one `cswitch-store-v1` file:
///
///  - load() reads the previous runs' state. A missing file is a normal
///    cold start; a corrupt or version-mismatched file degrades to cold
///    start gracefully (logged to the EventLog, counted in stats()) —
///    it never fails the process.
///  - lookup() feeds warm starts: contexts created with
///    ContextOptions::warmStart seed their initial variant from the
///    stored decision and shrink their first observation window.
///  - recordFinished() accumulates the lifetime aggregate of a dying
///    context into the in-process contribution ledger.
///  - persist() folds the ledger plus the currently-live contexts into
///    the on-disk document under an advisory `flock`, so concurrent
///    processes merge instead of clobbering each other. Each process
///    counts as one run per site: the first time it touches a site it
///    scales the older aggregate by DecayFactor (exponential decay of
///    stale knowledge) and bumps the run count; repeated periodic
///    persists only add the delta since the last one.
///
/// Thread-safe; persist() additionally serializes cross-process via the
/// lock file `<path>.lock`.
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_STORE_SELECTIONSTORE_H
#define CSWITCH_STORE_SELECTIONSTORE_H

#include "profile/WorkloadProfile.h"
#include "store/StoreFormat.h"
#include "support/Telemetry.h"

#include <chrono>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace cswitch {

/// Tuning knobs of a selection store (aggregate with a fluent spelling,
/// like ContextOptions).
struct StoreOptions {
  /// Scale applied to a site's older aggregate the first time a new
  /// process run contributes to it (exponential decay; 1.0 = never
  /// forget, 0.0 = every run starts the aggregate over).
  double DecayFactor = 0.5;
  /// Minimum time between two automatic persists on the engine's
  /// background thread; zero disables periodic persistence (explicit
  /// persistStore() calls only).
  std::chrono::milliseconds PersistInterval{0};

  StoreOptions &decayFactor(double Value) {
    DecayFactor = Value;
    return *this;
  }
  StoreOptions &persistInterval(std::chrono::milliseconds Value) {
    PersistInterval = Value;
    return *this;
  }
};

/// Persistent cross-run store of per-site selections and workload
/// aggregates.
class SelectionStore {
public:
  /// Live-context snapshot the engine hands to persist(): the current
  /// decision plus the lifetime aggregate of analyzed instances.
  struct LiveSite {
    std::string Name;
    std::string Rule;
    AbstractionKind Kind = AbstractionKind::List;
    unsigned Decision = 0;
    WorkloadProfile Profile;
    uint64_t Instances = 0;
  };

  explicit SelectionStore(StoreOptions Options = {});

  SelectionStore(const SelectionStore &) = delete;
  SelectionStore &operator=(const SelectionStore &) = delete;

  const StoreOptions &options() const { return Options; }

  /// Loads the store at \p Path, replacing any previously loaded state
  /// (and clearing the contribution ledger). A missing file yields an
  /// empty store and returns true (normal cold start). A corrupt or
  /// version-mismatched file also yields an empty store but returns
  /// false, records an EventKind::Store event, and counts a load
  /// failure — warm starts simply find nothing.
  bool load(const std::string &Path, std::string *Error = nullptr);

  /// Looks up the persisted state of a site (by name, selection-rule
  /// name, and abstraction) in the loaded base document.
  std::optional<StoreSite> lookup(std::string_view Name,
                                  std::string_view Rule,
                                  AbstractionKind Kind) const;

  /// Counts one warm-started context (called by contexts that seeded
  /// their variant from lookup()).
  void noteWarmStart();

  /// Folds the lifetime aggregate of a finished context into the
  /// in-process contribution ledger (the engine calls this when a
  /// context unregisters). \p Instances is the number of analyzed
  /// instances behind \p Profile; zero-instance contributions are
  /// ignored.
  void recordFinished(const std::string &Name, const std::string &Rule,
                      AbstractionKind Kind, unsigned Decision,
                      const WorkloadProfile &Profile, uint64_t Instances);

  /// Merges this process's contributions (ledger + \p Live) into the
  /// document at \p Path under an advisory flock, with crash-safe
  /// replacement. A corrupt on-disk document is replaced rather than
  /// crashed on (counted as a load failure). Idempotent across repeated
  /// calls: only the delta since the previous persist is added, and the
  /// per-site decay + run-count bump happen once per process.
  bool persist(const std::string &Path, const std::vector<LiveSite> &Live,
               std::string *Error = nullptr);

  /// This replica's current knowledge as one site list, suitable for
  /// serving to fleet peers (encodeStore): the loaded base document with
  /// this process's contributions (ledger + \p Live) folded on top. Pure
  /// read — no decay, no run bump, no ledger bookkeeping; a site's run
  /// count is raised by one when this process contributed to it.
  std::vector<StoreSite> exportSites(
      const std::vector<LiveSite> &Live = {}) const;

  /// Flock-merges a peer's site list into the document at \p Path AND
  /// into the in-memory base (so warm-start lookups see the fleet's
  /// knowledge immediately). Remote counts are scaled by DecayFactor
  /// before being added — fleet knowledge is weighted like any other
  /// stale aggregate — while local counts stay untouched; per site, the
  /// decision with the higher run count wins (remote on ties: latest
  /// information). \p SitesMerged (when non-null) receives the number
  /// of remote sites folded in.
  bool mergeRemote(const std::string &Path,
                   const std::vector<StoreSite> &Remote,
                   std::string *Error = nullptr,
                   uint64_t *SitesMerged = nullptr);

  /// Number of sites in the loaded base document.
  size_t siteCount() const;

  /// Cumulative counters (exported via TelemetrySnapshot.Store).
  StoreStats stats() const;

private:
  /// Site key: (name, rule, abstraction).
  using Key = std::tuple<std::string, std::string, unsigned>;

  /// This process's contribution to one site, tracked so repeated
  /// persists stay idempotent: Folded accumulates finished contexts,
  /// Written remembers what already reached disk, and Seeded marks that
  /// this process already decayed the older aggregate and counted its
  /// run.
  struct Contribution {
    unsigned Decision = 0;
    WorkloadProfile Folded;
    uint64_t FoldedInstances = 0;
    std::array<uint64_t, NumOperationKinds> WrittenCounts = {};
    uint64_t WrittenInstances = 0;
    bool Seeded = false;
  };

  static Key keyOf(std::string_view Name, std::string_view Rule,
                   AbstractionKind Kind) {
    return {std::string(Name), std::string(Rule),
            static_cast<unsigned>(Kind)};
  }

  const StoreOptions Options;

  mutable std::mutex Mutex;
  /// Disk state as of load(); the warm-start source. Guarded by Mutex.
  std::map<Key, StoreSite> Base;
  /// This process's contributions. Guarded by Mutex.
  std::map<Key, Contribution> Ledger;
  StoreStats Counters; ///< Guarded by Mutex.
};

} // namespace cswitch

#endif // CSWITCH_STORE_SELECTIONSTORE_H
