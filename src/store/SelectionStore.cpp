//===- SelectionStore.cpp - Cross-run persistent selections ---------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//

#include "store/SelectionStore.h"

#include "support/EventLog.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <fstream>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>
#define CSWITCH_STORE_FLOCK 1
#endif

using namespace cswitch;

namespace {

uint64_t monus(uint64_t A, uint64_t B) { return A > B ? A - B : 0; }

/// Exponential-decay scaling of one integer counter. Counts stay
/// integral so documents round-trip exactly through the canonical
/// encoder and the text export.
uint64_t decay(uint64_t Value, double Factor) {
  if (Value == 0)
    return 0;
  double Scaled = static_cast<double>(Value) * Factor;
  if (Scaled <= 0.0)
    return 0;
  return static_cast<uint64_t>(std::llround(Scaled));
}

/// RAII advisory lock on `<store>.lock`: the cross-process critical
/// section around persist()'s read-modify-write. Blocking; concurrent
/// persists from other processes queue up instead of clobbering.
class FileLock {
public:
  bool acquire(const std::string &Path) {
#ifdef CSWITCH_STORE_FLOCK
    Fd = ::open(Path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
    if (Fd < 0)
      return false;
    while (::flock(Fd, LOCK_EX) != 0) {
      if (errno == EINTR)
        continue;
      ::close(Fd);
      Fd = -1;
      return false;
    }
#else
    (void)Path; // No advisory locking on this platform; best effort.
#endif
    return true;
  }

  ~FileLock() {
#ifdef CSWITCH_STORE_FLOCK
    if (Fd >= 0) {
      ::flock(Fd, LOCK_UN);
      ::close(Fd);
    }
#endif
  }

private:
#ifdef CSWITCH_STORE_FLOCK
  int Fd = -1;
#endif
};

} // namespace

SelectionStore::SelectionStore(StoreOptions Options) : Options([&] {
  Options.DecayFactor = std::clamp(Options.DecayFactor, 0.0, 1.0);
  return Options;
}()) {}

bool SelectionStore::load(const std::string &Path, std::string *Error) {
  std::vector<StoreSite> Sites;
  std::string LoadError;
  bool Present = false;
  bool Ok = false;
  {
    std::ifstream IS(Path, std::ios::binary);
    if (IS) {
      Present = true;
      Ok = readStore(IS, Sites, &LoadError);
    }
  }

  std::lock_guard<std::mutex> Lock(Mutex);
  Base.clear();
  Ledger.clear();
  if (!Present) {
    // No store yet: a normal cold start, not a failure.
    ++Counters.Loads;
    return true;
  }
  if (!Ok) {
    // Corrupt or version-mismatched store: degrade to cold start. The
    // event + counter make the degradation observable; the process
    // itself proceeds unaffected.
    ++Counters.LoadFailures;
    EventLog::global().record(EventKind::Store, Path,
                              "load failed: " + LoadError +
                                  "; starting cold");
    if (Error)
      *Error = LoadError;
    return false;
  }
  for (StoreSite &Site : Sites) {
    Key K = keyOf(Site.Name, Site.Rule, Site.Kind);
    Base.emplace(std::move(K), std::move(Site));
  }
  ++Counters.Loads;
  Counters.SitesLoaded += Base.size();
  return true;
}

std::optional<StoreSite> SelectionStore::lookup(std::string_view Name,
                                                std::string_view Rule,
                                                AbstractionKind Kind) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Base.find(keyOf(Name, Rule, Kind));
  if (It == Base.end())
    return std::nullopt;
  return It->second;
}

void SelectionStore::noteWarmStart() {
  std::lock_guard<std::mutex> Lock(Mutex);
  ++Counters.WarmStarts;
}

void SelectionStore::recordFinished(const std::string &Name,
                                    const std::string &Rule,
                                    AbstractionKind Kind, unsigned Decision,
                                    const WorkloadProfile &Profile,
                                    uint64_t Instances) {
  if (Instances == 0)
    return;
  std::lock_guard<std::mutex> Lock(Mutex);
  Contribution &C = Ledger[keyOf(Name, Rule, Kind)];
  C.Decision = Decision;
  C.Folded.merge(Profile);
  C.FoldedInstances += Instances;
}

bool SelectionStore::persist(const std::string &Path,
                             const std::vector<LiveSite> &Live,
                             std::string *Error) {
  auto failPersist = [&](const std::string &Message) {
    std::lock_guard<std::mutex> Lock(Mutex);
    ++Counters.PersistFailures;
    EventLog::global().record(EventKind::Store, Path,
                              "persist failed: " + Message);
    if (Error)
      *Error = Message;
    return false;
  };

  FileLock Guard;
  if (!Guard.acquire(Path + ".lock"))
    return failPersist("cannot acquire store lock");

  // Fresh read under the flock: another process may have merged its run
  // since our load(). A corrupt document is replaced, never crashed on.
  std::vector<StoreSite> DiskSites;
  {
    std::ifstream IS(Path, std::ios::binary);
    if (IS) {
      std::string ReadError;
      if (!readStore(IS, DiskSites, &ReadError)) {
        DiskSites.clear();
        std::lock_guard<std::mutex> Lock(Mutex);
        ++Counters.LoadFailures;
        EventLog::global().record(EventKind::Store, Path,
                                  "corrupt store replaced on persist: " +
                                      ReadError);
      }
    }
  }

  std::lock_guard<std::mutex> Lock(Mutex);
  std::map<Key, StoreSite> Disk;
  for (StoreSite &Site : DiskSites) {
    Key K = keyOf(Site.Name, Site.Rule, Site.Kind);
    Disk.emplace(std::move(K), std::move(Site));
  }

  // This process's current totals per site: the folded ledger plus the
  // live contexts' lifetime aggregates.
  struct Totals {
    unsigned Decision = 0;
    std::array<uint64_t, NumOperationKinds> Counts = {};
    uint64_t Instances = 0;
    uint64_t MaxSize = 0;
  };
  std::map<Key, Totals> Pending;
  for (const auto &[K, C] : Ledger) {
    Totals &T = Pending[K];
    T.Decision = C.Decision;
    T.Counts = C.Folded.Counts;
    T.Instances = C.FoldedInstances;
    T.MaxSize = C.Folded.MaxSize;
  }
  for (const LiveSite &L : Live) {
    if (L.Instances == 0)
      continue;
    Totals &T = Pending[keyOf(L.Name, L.Rule, L.Kind)];
    T.Decision = L.Decision; // Live state is the most recent decision.
    for (size_t Op = 0; Op != NumOperationKinds; ++Op)
      T.Counts[Op] += L.Profile.Counts[Op];
    T.Instances += L.Instances;
    T.MaxSize = std::max(T.MaxSize, L.Profile.MaxSize);
  }

  // Merge: decay + run bump once per (site, process), then add only the
  // delta beyond what this process already wrote. Ledger bookkeeping is
  // staged and committed after the write succeeds, so a failed write
  // retries the full delta (and the decay) next time.
  struct StagedUpdate {
    Contribution *C;
    std::array<uint64_t, NumOperationKinds> Counts;
    uint64_t Instances;
  };
  std::vector<StagedUpdate> Staged;
  Staged.reserve(Pending.size());
  for (auto &[K, T] : Pending) {
    Contribution &C = Ledger[K];
    auto [It, Fresh] = Disk.try_emplace(K);
    StoreSite &E = It->second;
    if (Fresh) {
      E.Name = std::get<0>(K);
      E.Rule = std::get<1>(K);
      E.Kind = static_cast<AbstractionKind>(std::get<2>(K));
    }
    if (!C.Seeded) {
      for (uint64_t &Count : E.Counts)
        Count = decay(Count, Options.DecayFactor);
      E.Instances = decay(E.Instances, Options.DecayFactor);
      E.Runs += 1;
    }
    for (size_t Op = 0; Op != NumOperationKinds; ++Op)
      E.Counts[Op] += monus(T.Counts[Op], C.WrittenCounts[Op]);
    E.Instances += monus(T.Instances, C.WrittenInstances);
    E.MaxSize = std::max(E.MaxSize, T.MaxSize);
    E.Decision = T.Decision;
    Staged.push_back({&C, T.Counts, T.Instances});
  }

  std::vector<StoreSite> Merged;
  Merged.reserve(Disk.size());
  for (auto &[K, Site] : Disk)
    if (Site.Instances > 0) // Sites decayed to nothing are pruned.
      Merged.push_back(std::move(Site));

  std::string WriteError;
  if (!writeStoreToFile(Path, Merged, &WriteError)) {
    ++Counters.PersistFailures;
    EventLog::global().record(EventKind::Store, Path,
                              "persist failed: " + WriteError);
    if (Error)
      *Error = WriteError;
    return false;
  }
  for (StagedUpdate &U : Staged) {
    U.C->Seeded = true;
    U.C->WrittenCounts = U.Counts;
    U.C->WrittenInstances = U.Instances;
  }
  ++Counters.Persists;
  return true;
}

std::vector<StoreSite>
SelectionStore::exportSites(const std::vector<LiveSite> &Live) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::map<Key, StoreSite> Out = Base;

  auto foldInto = [&Out](const Key &K, unsigned Decision,
                         const std::array<uint64_t, NumOperationKinds> &Counts,
                         uint64_t Instances, uint64_t MaxSize, bool BumpRun) {
    auto [It, Fresh] = Out.try_emplace(K);
    StoreSite &E = It->second;
    if (Fresh) {
      E.Name = std::get<0>(K);
      E.Rule = std::get<1>(K);
      E.Kind = static_cast<AbstractionKind>(std::get<2>(K));
    }
    for (size_t Op = 0; Op != NumOperationKinds; ++Op)
      E.Counts[Op] += Counts[Op];
    E.Instances += Instances;
    E.MaxSize = std::max(E.MaxSize, MaxSize);
    E.Decision = Decision;
    if (BumpRun)
      E.Runs += 1;
  };

  // Ledger first, live contexts second, matching persist(): the live
  // state carries the most recent decision. The run bump applies once
  // per site (a site can appear in both the ledger and a live context).
  std::map<Key, bool> Bumped;
  for (const auto &[K, C] : Ledger) {
    foldInto(K, C.Decision, C.Folded.Counts, C.FoldedInstances,
             C.Folded.MaxSize, !Bumped[K]);
    Bumped[K] = true;
  }
  for (const LiveSite &L : Live) {
    if (L.Instances == 0)
      continue;
    Key K = keyOf(L.Name, L.Rule, L.Kind);
    foldInto(K, L.Decision, L.Profile.Counts, L.Instances, L.Profile.MaxSize,
             !Bumped[K]);
    Bumped[K] = true;
  }

  std::vector<StoreSite> Sites;
  Sites.reserve(Out.size());
  for (auto &[K, Site] : Out)
    if (Site.Instances > 0)
      Sites.push_back(std::move(Site));
  return Sites;
}

bool SelectionStore::mergeRemote(const std::string &Path,
                                 const std::vector<StoreSite> &Remote,
                                 std::string *Error, uint64_t *SitesMerged) {
  auto failMerge = [&](const std::string &Message) {
    std::lock_guard<std::mutex> Lock(Mutex);
    ++Counters.PersistFailures;
    EventLog::global().record(EventKind::Store, Path,
                              "fleet merge failed: " + Message);
    if (Error)
      *Error = Message;
    return false;
  };

  FileLock Guard;
  if (!Guard.acquire(Path + ".lock"))
    return failMerge("cannot acquire store lock");

  // Fresh read under the flock — a sibling process (or a concurrent
  // persist of our own) may have advanced the document. Corrupt
  // documents are replaced, never crashed on, like persist().
  std::vector<StoreSite> DiskSites;
  {
    std::ifstream IS(Path, std::ios::binary);
    if (IS) {
      std::string ReadError;
      if (!readStore(IS, DiskSites, &ReadError)) {
        DiskSites.clear();
        std::lock_guard<std::mutex> Lock(Mutex);
        ++Counters.LoadFailures;
        EventLog::global().record(EventKind::Store, Path,
                                  "corrupt store replaced on fleet merge: " +
                                      ReadError);
      }
    }
  }

  std::lock_guard<std::mutex> Lock(Mutex);
  std::map<Key, StoreSite> Disk;
  for (StoreSite &Site : DiskSites) {
    Key K = keyOf(Site.Name, Site.Rule, Site.Kind);
    Disk.emplace(std::move(K), std::move(Site));
  }

  uint64_t Folded = 0;
  for (const StoreSite &R : Remote) {
    if (R.Instances == 0)
      continue;
    Key K = keyOf(R.Name, R.Rule, R.Kind);
    auto [It, Fresh] = Disk.try_emplace(K);
    StoreSite &E = It->second;
    if (Fresh) {
      E.Name = R.Name;
      E.Rule = R.Rule;
      E.Kind = R.Kind;
    }
    // Remote knowledge is decay-weighted on the way in; local counts
    // stay untouched (their decay happens per local run, in persist()).
    for (size_t Op = 0; Op != NumOperationKinds; ++Op)
      E.Counts[Op] += decay(R.Counts[Op], Options.DecayFactor);
    uint64_t RemoteInstances = decay(R.Instances, Options.DecayFactor);
    if (RemoteInstances == 0 && Fresh)
      RemoteInstances = 1; // A fresh site must survive the zero prune.
    E.Instances += RemoteInstances;
    E.MaxSize = std::max(E.MaxSize, R.MaxSize);
    // Decision: more runs wins; remote wins ties (latest information).
    if (R.Runs >= E.Runs || Fresh)
      E.Decision = R.Decision;
    E.Runs += R.Runs;
    ++Folded;
  }

  std::vector<StoreSite> Merged;
  Merged.reserve(Disk.size());
  for (auto &[K, Site] : Disk)
    if (Site.Instances > 0)
      Merged.push_back(Site); // Copy: the map doubles as the new Base.

  std::string WriteError;
  if (!writeStoreToFile(Path, Merged, &WriteError)) {
    ++Counters.PersistFailures;
    EventLog::global().record(EventKind::Store, Path,
                              "fleet merge failed: " + WriteError);
    if (Error)
      *Error = WriteError;
    return false;
  }

  // The merged document becomes the warm-start source: lookups now see
  // disk state ⊕ fleet knowledge. The contribution ledger is untouched,
  // so subsequent persists still add only this process's deltas.
  Base = std::move(Disk);
  for (auto It = Base.begin(); It != Base.end();) {
    if (It->second.Instances == 0)
      It = Base.erase(It);
    else
      ++It;
  }
  ++Counters.Persists;
  if (SitesMerged)
    *SitesMerged = Folded;
  return true;
}

size_t SelectionStore::siteCount() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Base.size();
}

StoreStats SelectionStore::stats() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Counters;
}
