//===- StoreFormat.cpp - Binary selection-store format --------------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//

#include "store/StoreFormat.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <numeric>
#include <sstream>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define CSWITCH_STORE_POSIX 1
#endif

using namespace cswitch;

namespace {

constexpr char Magic[] = "cswitch-store-v1"; // 16 bytes, no terminator.
constexpr size_t MagicSize = 16;
constexpr uint64_t FormatVersion = 1;

/// Pre-allocation guard while decoding untrusted counts: never reserve
/// more than this many elements up front; growth beyond it must be paid
/// for by actual input bytes.
constexpr size_t MaxReserve = 1 << 16;

/// Header-only mirror of numVariantsOf(): the store library sits below
/// the collections library in the link order, so it must not pull in
/// Variants.cpp symbols.
constexpr size_t variantCountOf(AbstractionKind Kind) {
  switch (Kind) {
  case AbstractionKind::List:
    return NumListVariants;
  case AbstractionKind::Set:
    return NumSetVariants;
  case AbstractionKind::Map:
    return NumMapVariants;
  }
  return 0;
}

void putVarint(std::string &Out, uint64_t Value) {
  while (Value >= 0x80) {
    Out += static_cast<char>((Value & 0x7f) | 0x80);
    Value >>= 7;
  }
  Out += static_cast<char>(Value);
}

/// Bounded byte reader over the encoded document.
class Reader {
public:
  Reader(std::string_view Bytes) : Cur(Bytes.data()), End(Cur + Bytes.size()) {}

  bool varint(uint64_t &Out) {
    Out = 0;
    for (unsigned Shift = 0; Shift < 64; Shift += 7) {
      if (Cur == End)
        return false;
      uint8_t Byte = static_cast<uint8_t>(*Cur++);
      Out |= static_cast<uint64_t>(Byte & 0x7f) << Shift;
      if (!(Byte & 0x80))
        return true;
    }
    return false; // More than 10 continuation bytes: corrupt.
  }

  bool bytes(size_t N, std::string &Out) {
    if (static_cast<size_t>(End - Cur) < N)
      return false;
    Out.assign(Cur, N);
    Cur += N;
    return true;
  }

  bool view(size_t N, std::string_view &Out) {
    if (static_cast<size_t>(End - Cur) < N)
      return false;
    Out = std::string_view(Cur, N);
    Cur += N;
    return true;
  }

  bool byte(uint8_t &Out) {
    if (Cur == End)
      return false;
    Out = static_cast<uint8_t>(*Cur++);
    return true;
  }

  bool atEnd() const { return Cur == End; }

private:
  const char *Cur;
  const char *End;
};

bool fail(std::string *Error, const char *Message) {
  if (Error)
    *Error = Message;
  return false;
}

/// Encodes one site payload (the checksummed record body).
std::string encodeSitePayload(const StoreSite &Site) {
  std::string Out;
  putVarint(Out, Site.Name.size());
  Out += Site.Name;
  putVarint(Out, Site.Rule.size());
  Out += Site.Rule;
  Out += static_cast<char>(static_cast<unsigned>(Site.Kind));
  putVarint(Out, Site.Decision);
  putVarint(Out, Site.Runs);
  putVarint(Out, Site.Instances);
  putVarint(Out, Site.MaxSize);
  for (uint64_t Count : Site.Counts)
    putVarint(Out, Count);
  return Out;
}

/// Decodes one site payload; total over its bytes (every byte must be
/// consumed).
bool decodeSitePayload(std::string_view Payload, StoreSite &Site,
                       std::string *Error) {
  Reader In(Payload);
  uint64_t NameLen = 0;
  if (!In.varint(NameLen) || !In.bytes(NameLen, Site.Name))
    return fail(Error, "truncated site name");
  uint64_t RuleLen = 0;
  if (!In.varint(RuleLen) || !In.bytes(RuleLen, Site.Rule))
    return fail(Error, "truncated rule name");
  uint8_t Kind = 0;
  if (!In.byte(Kind) || Kind >= NumAbstractionKinds)
    return fail(Error, "bad abstraction kind");
  Site.Kind = static_cast<AbstractionKind>(Kind);
  uint64_t Decision = 0;
  if (!In.varint(Decision) || Decision >= variantCountOf(Site.Kind))
    return fail(Error, "bad decision variant index");
  Site.Decision = static_cast<unsigned>(Decision);
  if (!In.varint(Site.Runs) || !In.varint(Site.Instances) ||
      !In.varint(Site.MaxSize))
    return fail(Error, "truncated site counters");
  for (uint64_t &Count : Site.Counts)
    if (!In.varint(Count))
      return fail(Error, "truncated operation counts");
  if (!In.atEnd())
    return fail(Error, "oversized site payload");
  return true;
}

} // namespace

uint32_t cswitch::storeCrc32(std::string_view Bytes) {
  // IEEE CRC32 (reflected polynomial 0xEDB88320), one shared table.
  static const std::array<uint32_t, 256> Table = [] {
    std::array<uint32_t, 256> T;
    for (uint32_t I = 0; I != 256; ++I) {
      uint32_t C = I;
      for (int Bit = 0; Bit != 8; ++Bit)
        C = (C >> 1) ^ (0xEDB88320u & (0u - (C & 1u)));
      T[I] = C;
    }
    return T;
  }();
  uint32_t Crc = 0xFFFFFFFFu;
  for (char Ch : Bytes)
    Crc = (Crc >> 8) ^ Table[(Crc ^ static_cast<uint8_t>(Ch)) & 0xFFu];
  return Crc ^ 0xFFFFFFFFu;
}

std::string cswitch::encodeStore(const std::vector<StoreSite> &Sites) {
  // Canonical order regardless of the caller's: encode a sorted view.
  std::vector<size_t> Order(Sites.size());
  std::iota(Order.begin(), Order.end(), size_t{0});
  std::sort(Order.begin(), Order.end(), [&Sites](size_t A, size_t B) {
    return StoreSite::orderedBefore(Sites[A], Sites[B]);
  });

  std::string Out;
  Out.reserve(MagicSize + 8 + Sites.size() * 48);
  Out.append(Magic, MagicSize);
  putVarint(Out, FormatVersion);
  putVarint(Out, Sites.size());
  for (size_t I : Order) {
    std::string Payload = encodeSitePayload(Sites[I]);
    putVarint(Out, Payload.size());
    Out += Payload;
    uint32_t Crc = storeCrc32(Payload);
    for (int Byte = 0; Byte != 4; ++Byte)
      Out += static_cast<char>((Crc >> (8 * Byte)) & 0xFFu);
  }
  return Out;
}

bool cswitch::decodeStore(std::string_view Bytes,
                          std::vector<StoreSite> &Out, std::string *Error) {
  Out.clear();
  if (Bytes.size() < MagicSize ||
      std::memcmp(Bytes.data(), Magic, MagicSize) != 0)
    return fail(Error, "not a cswitch-store document (bad magic)");
  Reader In(Bytes.substr(MagicSize));

  uint64_t Version = 0;
  if (!In.varint(Version))
    return fail(Error, "truncated version");
  if (Version != FormatVersion) {
    if (Error)
      *Error = "unsupported cswitch-store version " +
               std::to_string(Version) + " (expected " +
               std::to_string(FormatVersion) + ")";
    return false;
  }

  uint64_t SiteCount = 0;
  if (!In.varint(SiteCount))
    return fail(Error, "truncated site count");
  Out.reserve(std::min<uint64_t>(SiteCount, MaxReserve));
  for (uint64_t I = 0; I != SiteCount; ++I) {
    uint64_t PayloadLen = 0;
    std::string_view Payload;
    if (!In.varint(PayloadLen) || !In.view(PayloadLen, Payload)) {
      Out.clear();
      return fail(Error, "truncated site record");
    }
    uint32_t Stored = 0;
    for (int Byte = 0; Byte != 4; ++Byte) {
      uint8_t B = 0;
      if (!In.byte(B)) {
        Out.clear();
        return fail(Error, "truncated record crc");
      }
      Stored |= static_cast<uint32_t>(B) << (8 * Byte);
    }
    if (Stored != storeCrc32(Payload)) {
      Out.clear();
      return fail(Error, "record crc mismatch");
    }
    StoreSite Site;
    if (!decodeSitePayload(Payload, Site, Error)) {
      Out.clear();
      return false;
    }
    if (!Out.empty() && !StoreSite::orderedBefore(Out.back(), Site)) {
      Out.clear();
      return fail(Error, "sites out of canonical order");
    }
    Out.push_back(std::move(Site));
  }

  if (!In.atEnd()) {
    Out.clear();
    return fail(Error, "trailing bytes after site records");
  }
  return true;
}

bool cswitch::writeStoreToFile(const std::string &Path,
                               const std::vector<StoreSite> &Sites,
                               std::string *Error) {
  std::string Bytes = encodeStore(Sites);
  std::string TmpPath = Path + ".tmp";
#ifdef CSWITCH_STORE_POSIX
  // Crash-safe replace: write a temporary sibling, flush it to disk,
  // then atomically rename it over the destination. Readers observe
  // either the complete old document or the complete new one.
  int Fd = ::open(TmpPath.c_str(), O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC,
                  0644);
  if (Fd < 0)
    return fail(Error, "cannot create store temp file");
  size_t Off = 0;
  while (Off != Bytes.size()) {
    ssize_t N = ::write(Fd, Bytes.data() + Off, Bytes.size() - Off);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      ::close(Fd);
      ::unlink(TmpPath.c_str());
      return fail(Error, "short write to store temp file");
    }
    Off += static_cast<size_t>(N);
  }
  bool Flushed = ::fsync(Fd) == 0;
  bool Closed = ::close(Fd) == 0;
  if (!Flushed || !Closed ||
      std::rename(TmpPath.c_str(), Path.c_str()) != 0) {
    ::unlink(TmpPath.c_str());
    return fail(Error, "cannot replace store file");
  }
  return true;
#else
  {
    std::ofstream OS(TmpPath, std::ios::binary | std::ios::trunc);
    if (!OS)
      return fail(Error, "cannot create store temp file");
    OS.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
    if (!OS) {
      std::remove(TmpPath.c_str());
      return fail(Error, "short write to store temp file");
    }
  }
  if (std::rename(TmpPath.c_str(), Path.c_str()) != 0) {
    std::remove(TmpPath.c_str());
    return fail(Error, "cannot replace store file");
  }
  return true;
#endif
}

bool cswitch::readStore(std::istream &IS, std::vector<StoreSite> &Out,
                        std::string *Error) {
  std::ostringstream Buffer;
  Buffer << IS.rdbuf();
  if (IS.bad()) {
    Out.clear();
    return fail(Error, "I/O error reading store stream");
  }
  return decodeStore(Buffer.str(), Out, Error);
}

bool cswitch::readStoreFromFile(const std::string &Path,
                                std::vector<StoreSite> &Out,
                                std::string *Error) {
  std::ifstream IS(Path, std::ios::binary);
  if (!IS) {
    Out.clear();
    return fail(Error, "cannot open store file");
  }
  return readStore(IS, Out, Error);
}
