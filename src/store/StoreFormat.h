//===- StoreFormat.h - Binary selection-store format ------------*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `cswitch-store-v1` binary format of the persistent selection
/// store: per allocation site, the aggregated workload summary and the
/// converged variant decision of previous process runs.
///
/// Document layout (all integers LEB128 varints, like the
/// `cswitch-optrace-v1` trace format):
///
///   magic "cswitch-store-v1" (16 bytes)
///   varint version (1)
///   varint site count
///   per site: varint payload length | payload bytes | CRC32 (4 bytes LE)
///
/// Each site payload is self-delimiting and individually checksummed
/// (IEEE CRC32 of the payload bytes) so a torn write corrupts exactly
/// one record, never the reader:
///
///   varint name length | name bytes
///   varint rule length | rule bytes       (selection-rule name)
///   1 byte abstraction kind
///   varint decision (variant index)
///   varint runs | varint instances | varint max size
///   NumOperationKinds varint operation counts
///
/// The encoding is canonical: sites are ordered strictly ascending by
/// (Name, Rule, Kind) and decode(encode(S)) == S reproduces the exact
/// input bytes. The decoder is total — truncation at any offset, bad
/// magic, unknown versions, CRC mismatches, out-of-range kinds or
/// decisions, disordered or duplicate sites, and trailing bytes are all
/// rejected with the output left empty.
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_STORE_STOREFORMAT_H
#define CSWITCH_STORE_STOREFORMAT_H

#include "collections/Variants.h"
#include "profile/OperationKind.h"

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace cswitch {

/// One persisted allocation site: the aggregate of every contributing
/// run, decayed by the SelectionStore's merge policy.
struct StoreSite {
  std::string Name;        ///< Allocation-site name.
  std::string Rule;        ///< Selection-rule name the decision was made under.
  AbstractionKind Kind = AbstractionKind::List;
  unsigned Decision = 0;   ///< Converged variant index.
  uint64_t Runs = 0;       ///< Process runs that contributed.
  uint64_t Instances = 0;  ///< Monitored instances aggregated (decayed).
  uint64_t MaxSize = 0;    ///< Largest maximum size ever observed.
  std::array<uint64_t, NumOperationKinds> Counts = {}; ///< Decayed op counts.

  bool operator==(const StoreSite &Other) const = default;

  /// Canonical document order: ascending (Name, Rule, Kind).
  static bool orderedBefore(const StoreSite &A, const StoreSite &B) {
    if (A.Name != B.Name)
      return A.Name < B.Name;
    if (A.Rule != B.Rule)
      return A.Rule < B.Rule;
    return A.Kind < B.Kind;
  }
};

/// IEEE CRC32 (polynomial 0xEDB88320) of \p Bytes — the per-record
/// checksum of the store format, exposed for tests and tools.
uint32_t storeCrc32(std::string_view Bytes);

/// Serializes \p Sites into the canonical `cswitch-store-v1` encoding.
/// The input order does not matter (a sorted copy of the indices is
/// encoded); duplicate (Name, Rule, Kind) keys are a caller bug and
/// produce a document the decoder rejects.
std::string encodeStore(const std::vector<StoreSite> &Sites);

/// Parses a `cswitch-store-v1` document. \returns true on success;
/// false on any malformation, with \p Out cleared and \p Error (when
/// non-null) describing the first problem found.
bool decodeStore(std::string_view Bytes, std::vector<StoreSite> &Out,
                 std::string *Error = nullptr);

/// Atomically replaces \p Path with the encoding of \p Sites: the
/// document is written to a temporary sibling, fsync'ed, and renamed
/// over the destination, so a crash mid-write never leaves a torn
/// store behind.
bool writeStoreToFile(const std::string &Path,
                      const std::vector<StoreSite> &Sites,
                      std::string *Error = nullptr);

/// Reads one store document from \p IS (consumes the whole stream).
bool readStore(std::istream &IS, std::vector<StoreSite> &Out,
               std::string *Error = nullptr);

/// Reads the store document at \p Path.
bool readStoreFromFile(const std::string &Path, std::vector<StoreSite> &Out,
                       std::string *Error = nullptr);

} // namespace cswitch

#endif // CSWITCH_STORE_STOREFORMAT_H
