//===- warmstart_convergence.cpp - Cold vs warm convergence ---------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
//
// Quantifies what the persistent selection store (src/store/) buys on
// the table5 apps: a cold FullAdap Rtime run pays the full observation
// ramp at every site before converging; a second, warm-started run
// seeds each site from the persisted decision and should reach its
// converged variant with far fewer pre-convergence window evaluations
// (the acceptance bar: >= 50% fewer on at least two apps).
//
// Per app: the store file is wiped, a cold run executes and persists,
// then a warm run executes against the persisted store. Convergence
// work is measured from the EventLog: for every context, the number of
// Evaluation events preceding its last Transition (a context that never
// transitions is already converged and contributes zero). A corrupted
// store is also exercised: loading must fail cleanly, the run must
// produce the exact cold-run checksum, and the failure must be counted
// in the exported telemetry.
//
// Emits BENCH_warmstart.json (schema cswitch-warmstart-v1); `--check`
// exits non-zero when the acceptance bar is missed.
//
// Usage: warmstart_convergence [--apps a,b] [--scale S] [--json <path>]
//                              [--check]
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"
#include "apps/Apps.h"
#include "core/Switch.h"
#include "store/SelectionStore.h"
#include "support/EventLog.h"
#include "support/MetricsExport.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

using namespace cswitch;
using namespace cswitch::bench;

namespace {

/// Pre-convergence work of one run, reconstructed from the event log.
struct ConvergenceAccount {
  uint64_t PreconvEvaluations = 0; ///< Evaluations before the last
                                   ///< transition, summed over contexts.
  uint64_t Transitions = 0;
  uint64_t WarmStarts = 0;
};

/// Folds the events drained from one app run: per context, every
/// Evaluation that happened before that context's last Transition was
/// still "searching" work; everything after it is steady-state
/// monitoring.
ConvergenceAccount accountFor(const std::vector<Event> &Events) {
  struct PerContext {
    uint64_t Evaluations = 0;
    uint64_t EvalsAtLastTransition = 0;
  };
  std::map<std::string, PerContext> Contexts;
  ConvergenceAccount Account;
  for (const Event &E : Events) {
    if (E.Kind == EventKind::Evaluation) {
      ++Contexts[E.Context].Evaluations;
    } else if (E.Kind == EventKind::Transition) {
      PerContext &C = Contexts[E.Context];
      C.EvalsAtLastTransition = C.Evaluations;
      ++Account.Transitions;
    } else if (E.Kind == EventKind::WarmStart) {
      ++Account.WarmStarts;
    }
  }
  for (const auto &[Name, C] : Contexts)
    Account.PreconvEvaluations += C.EvalsAtLastTransition;
  return Account;
}

struct AppOutcome {
  const char *Name = nullptr;
  ConvergenceAccount Cold;
  ConvergenceAccount Warm;
  double ReductionPct = 0.0;
};

/// One measured run with the event log freshly drained; the returned
/// account covers exactly this run.
ConvergenceAccount measuredRun(AppKind App, const AppRunConfig &Config,
                               uint64_t *Checksum = nullptr) {
  EventLog::global().drain();
  AppResult R = runApp(App, Config);
  if (Checksum)
    *Checksum = R.Checksum;
  return accountFor(EventLog::global().drain());
}

} // namespace

int main(int Argc, char **Argv) {
  double Scale = 0.35;
  if (const char *S = stringOption(Argc, Argv, "--scale", ""))
    if (S[0])
      Scale = std::atof(S);
  const char *JsonPath =
      stringOption(Argc, Argv, "--json", "BENCH_warmstart.json");
  bool Check = hasFlag(Argc, Argv, "--check");

  std::vector<AppKind> Apps;
  {
    const char *Filter = stringOption(Argc, Argv, "--apps", "");
    for (AppKind App : AllAppKinds) {
      if (!Filter[0] || std::strstr(Filter, appKindName(App)))
        Apps.push_back(App);
    }
  }

  AppRunConfig Base;
  Base.Model = loadModel();
  Base.Seed = 17;
  Base.Scale = Scale;
  Base.Config = AppConfig::FullAdap;
  Base.Rule = SelectionRule::timeRule();
  Base.CtxOptions.WindowSize = 100;
  Base.CtxOptions.FinishedRatio = 0.6;
  Base.CtxOptions.LogEvents = true;
  Base.CtxOptions.WarmStart = true; // Cold runs simply miss every site.

  std::printf("\nWarm-start convergence on the DaCapo-substitute apps "
              "(scale %.2f)\n",
              Scale);
  std::printf("%-9s | %10s %6s | %10s %6s %6s | %9s\n", "bench",
              "cold-evals", "cold-T", "warm-evals", "warm-T", "warmed",
              "reduction");

  std::vector<AppOutcome> Outcomes;
  size_t AppsWithHalfReduction = 0;
  for (AppKind App : Apps) {
    std::string StorePath =
        std::string("warmstart_") + appKindName(App) + ".cswitchstore";
    std::remove(StorePath.c_str());
    std::remove((StorePath + ".lock").c_str());

    AppOutcome Outcome;
    Outcome.Name = appKindName(App);

    // Cold generation: empty store, full observation ramp; the learned
    // selections are persisted on the way out.
    Switch::loadStore(StorePath);
    Outcome.Cold = measuredRun(App, Base);
    Switch::persistStore();
    Switch::closeStore();

    // Warm generation: every site seeds from the persisted decision.
    Switch::loadStore(StorePath);
    Outcome.Warm = measuredRun(App, Base);
    Switch::persistStore();
    Switch::closeStore();

    Outcome.ReductionPct =
        Outcome.Cold.PreconvEvaluations == 0
            ? 0.0
            : 100.0 * (1.0 - static_cast<double>(
                                 Outcome.Warm.PreconvEvaluations) /
                                 static_cast<double>(
                                     Outcome.Cold.PreconvEvaluations));
    if (Outcome.Cold.PreconvEvaluations > 0 && Outcome.ReductionPct >= 50.0)
      ++AppsWithHalfReduction;

    std::printf("%-9s | %10llu %6llu | %10llu %6llu %6llu | %8.1f%%\n",
                Outcome.Name,
                (unsigned long long)Outcome.Cold.PreconvEvaluations,
                (unsigned long long)Outcome.Cold.Transitions,
                (unsigned long long)Outcome.Warm.PreconvEvaluations,
                (unsigned long long)Outcome.Warm.Transitions,
                (unsigned long long)Outcome.Warm.WarmStarts,
                Outcome.ReductionPct);
    Outcomes.push_back(Outcome);

    std::remove(StorePath.c_str());
    std::remove((StorePath + ".lock").c_str());
  }

  // Corrupt-store fallback: a deliberately damaged store must fail to
  // load (counted, evented), start cold, and leave the app's results
  // untouched.
  bool CorruptFallbackOk = true;
  {
    AppKind App = Apps.empty() ? AppKind::H2 : Apps.front();
    std::string StorePath = "warmstart_corrupt.cswitchstore";
    {
      std::FILE *F = std::fopen(StorePath.c_str(), "wb");
      if (F) {
        // Valid magic, torn body: exercises the CRC/truncation path,
        // not just the magic check.
        std::fwrite("cswitch-store-v1\x01\x07garbage-not-a-record", 1, 38,
                    F);
        std::fclose(F);
      }
    }
    uint64_t ReferenceChecksum = 0;
    {
      // Reference: no store at all.
      AppRunConfig Cold = Base;
      Cold.CtxOptions.WarmStart = false;
      runApp(App, Cold); // Warm up any lazy state.
      AppRunConfig Ref = Base;
      Ref.CtxOptions.WarmStart = false;
      (void)measuredRun(App, Ref, &ReferenceChecksum);
    }
    bool LoadFailed = !Switch::loadStore(StorePath);
    uint64_t CorruptChecksum = 0;
    (void)measuredRun(App, Base, &CorruptChecksum);
    StoreStats Stats;
    if (std::shared_ptr<SelectionStore> St = Switch::store())
      Stats = St->stats();
    Switch::closeStore();
    CorruptFallbackOk = LoadFailed && Stats.LoadFailures >= 1 &&
                        CorruptChecksum == ReferenceChecksum;
    std::printf("\ncorrupt-store fallback: load %s, load_failures %llu, "
                "checksum %s -> %s\n",
                LoadFailed ? "rejected" : "ACCEPTED (bug)",
                (unsigned long long)Stats.LoadFailures,
                CorruptChecksum == ReferenceChecksum ? "unchanged"
                                                     : "CHANGED (bug)",
                CorruptFallbackOk ? "ok" : "FAILED");
    std::remove(StorePath.c_str());
    std::remove((StorePath + ".lock").c_str());
  }

  // Machine-readable summary.
  std::string Json = "{\n  \"schema\": \"cswitch-warmstart-v1\",\n";
  Json += "  \"scale\": " + std::to_string(Scale) + ",\n  \"apps\": [\n";
  for (size_t I = 0; I != Outcomes.size(); ++I) {
    const AppOutcome &O = Outcomes[I];
    char Buf[256];
    std::snprintf(
        Buf, sizeof(Buf),
        "    {\"app\": \"%s\", \"cold_preconv_evals\": %llu, "
        "\"warm_preconv_evals\": %llu, \"cold_transitions\": %llu, "
        "\"warm_transitions\": %llu, \"warm_started_contexts\": %llu, "
        "\"reduction_pct\": %.1f}%s\n",
        O.Name, (unsigned long long)O.Cold.PreconvEvaluations,
        (unsigned long long)O.Warm.PreconvEvaluations,
        (unsigned long long)O.Cold.Transitions,
        (unsigned long long)O.Warm.Transitions,
        (unsigned long long)O.Warm.WarmStarts, O.ReductionPct,
        I + 1 == Outcomes.size() ? "" : ",");
    Json += Buf;
  }
  Json += "  ],\n";
  Json += "  \"apps_with_half_reduction\": " +
          std::to_string(AppsWithHalfReduction) + ",\n";
  Json += std::string("  \"corrupt_fallback_ok\": ") +
          (CorruptFallbackOk ? "true" : "false") + "\n}\n";
  if (writeTextFile(JsonPath, Json))
    std::printf("[wrote %s]\n", JsonPath);
  else
    std::fprintf(stderr, "[failed to write %s]\n", JsonPath);

  if (Check) {
    bool Pass = AppsWithHalfReduction >= 2 && CorruptFallbackOk;
    std::printf("[check %s: %zu/%zu apps at >=50%% reduction, corrupt "
                "fallback %s]\n",
                Pass ? "passed" : "FAILED", AppsWithHalfReduction,
                Outcomes.size(), CorruptFallbackOk ? "ok" : "broken");
    return Pass ? 0 : 1;
  }
  return 0;
}
