//===- fig3_table1_threshold.cpp - Reproduces Fig. 3 and Table 1 ----------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
//
// Figure 3: the transition-threshold analysis of AdaptiveSet — the
// benefit of transitioning array -> hash as a function of set size,
// crossing zero at the optimal threshold. Table 1: the derived optimal
// thresholds for all three adaptive collections.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"
#include "model/ThresholdAnalyzer.h"

#include <cstdio>

using namespace cswitch;

static void printCurve(const ThresholdAnalyzer &Analyzer) {
  std::printf("\nFigure 3: Transition threshold analysis of AdaptiveSet\n");
  std::printf("(benefit of array->hash transition; optimal threshold at "
              "the zero crossing)\n");
  std::printf("%8s  %12s  %s\n", "size", "benefit", "");
  for (size_t Size = 5; Size <= 80; Size += 5) {
    double Benefit = Analyzer.benefitAt(AbstractionKind::Set, Size);
    // ASCII sparkline around zero.
    int Offset = static_cast<int>(Benefit * 10.0);
    char Bar[48];
    int Mid = 20;
    for (int I = 0; I != 41; ++I)
      Bar[I] = I == Mid ? '|' : ' ';
    int Pos = Mid + (Offset < -20 ? -20 : (Offset > 20 ? 20 : Offset));
    Bar[Pos] = '*';
    Bar[41] = '\0';
    std::printf("%8zu  %12.3f  %s\n", Size, Benefit, Bar);
  }
}

int main() {
  using cswitch::bench::loadModel;
  std::shared_ptr<const PerformanceModel> Model = loadModel();
  ThresholdAnalyzer Analyzer(*Model);

  printCurve(Analyzer);

  AdaptiveThresholds T = Analyzer.computeAll();
  std::printf("\nTable 1: Adaptive collection types, transitions and "
              "optimal thresholds\n");
  std::printf("%-14s %-18s %10s %10s\n", "Col. Variant", "Transition",
              "threshold", "(paper)");
  std::printf("%-14s %-18s %10zu %10s\n", "AdaptiveList", "array -> hash",
              T.List, "80");
  std::printf("%-14s %-18s %10zu %10s\n", "AdaptiveSet",
              "array -> openhash", T.Set, "40");
  std::printf("%-14s %-18s %10zu %10s\n", "AdaptiveMap",
              "array -> openhash", T.Map, "50");
  return 0;
}
