//===- table2_variants.cpp - Reproduces Table 2 ---------------------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
//
// The candidate variant inventory (paper Table 2), printed from the live
// factory together with each variant's measured footprint for 100
// 8-byte elements — making the time/space trade-offs the selection
// rules navigate directly visible.
//
//===----------------------------------------------------------------------===//

#include "collections/Factory.h"

#include <cstdio>

using namespace cswitch;

namespace {

const char *listDescription(ListVariant V) {
  switch (V) {
  case ListVariant::ArrayList:
    return "array-backed list (JDK ArrayList analogue)";
  case ListVariant::LinkedList:
    return "double-linked list (JDK LinkedList analogue)";
  case ListVariant::HashArrayList:
    return "ArrayList + HashBag for faster lookups";
  case ListVariant::AdaptiveList:
    return "array on small sizes, hash-array above threshold";
  case ListVariant::MutexList:
    return "mutex-serialized array list (concurrent tier)";
  case ListVariant::SnapshotList:
    return "copy-on-write list (CopyOnWriteArrayList analogue)";
  }
  return "";
}

const char *setDescription(SetVariant V) {
  switch (V) {
  case SetVariant::ChainedHashSet:
    return "chained hash-backed set (JDK HashSet analogue)";
  case SetVariant::OpenHashSet:
    return "open-address hash set, load 1/2 (Koloboke-like)";
  case SetVariant::LinkedHashSet:
    return "chained hash with linked entries (JDK analogue)";
  case SetVariant::ArraySet:
    return "array-backed set (FastUtil/Google/NLP analogue)";
  case SetVariant::CompactHashSet:
    return "open-address hash set, load 7/8 (compact)";
  case SetVariant::AdaptiveSet:
    return "array on small sizes, open hash above threshold";
  case SetVariant::TreeSet:
    return "AVL tree, sorted iteration (JDK TreeSet analogue)";
  case SetVariant::SortedArraySet:
    return "sorted array, binary-search lookups (extension)";
  case SetVariant::MutexHashSet:
    return "mutex-serialized open hash set (concurrent tier)";
  case SetVariant::StripedHashSet:
    return "lock-striped open hash set (concurrent tier)";
  }
  return "";
}

const char *mapDescription(MapVariant V) {
  switch (V) {
  case MapVariant::ChainedHashMap:
    return "chained hash-backed map (JDK HashMap analogue)";
  case MapVariant::OpenHashMap:
    return "open-address hash map, load 1/2 (Koloboke-like)";
  case MapVariant::LinkedHashMap:
    return "chained hash with linked entries (JDK analogue)";
  case MapVariant::ArrayMap:
    return "parallel-array map (FastUtil/Google/NLP analogue)";
  case MapVariant::CompactHashMap:
    return "open-address hash map, load 7/8 (compact)";
  case MapVariant::AdaptiveMap:
    return "array on small sizes, open hash above threshold";
  case MapVariant::TreeMap:
    return "AVL tree, sorted iteration (JDK TreeMap analogue)";
  case MapVariant::SortedArrayMap:
    return "parallel sorted arrays, binary search (extension)";
  case MapVariant::MutexHashMap:
    return "mutex-serialized open hash map (concurrent tier)";
  case MapVariant::ShardedHashMap:
    return "lock-striped hash map (ConcurrentHashMap analogue)";
  }
  return "";
}

} // namespace

int main() {
  std::printf("Table 2: collection implementations identified as "
              "candidates for variants\n\n");
  std::printf("%-12s %-16s %10s  %s\n", "Abstraction", "Implementation",
              "B@100", "Description");

  for (ListVariant V : AllListVariants) {
    auto L = makeListImpl<int64_t>(V);
    for (int64_t I = 0; I != 100; ++I)
      L->push_back(I);
    std::printf("%-12s %-16s %10zu  %s\n", "List", listVariantName(V),
                L->memoryFootprint(), listDescription(V));
  }
  for (SetVariant V : AllSetVariants) {
    auto S = makeSetImpl<int64_t>(V);
    for (int64_t I = 0; I != 100; ++I)
      S->add(I);
    std::printf("%-12s %-16s %10zu  %s\n", "Set", setVariantName(V),
                S->memoryFootprint(), setDescription(V));
  }
  for (MapVariant V : AllMapVariants) {
    auto M = makeMapImpl<int64_t, int64_t>(V);
    for (int64_t I = 0; I != 100; ++I)
      M->put(I, I);
    std::printf("%-12s %-16s %10zu  %s\n", "Map", mapVariantName(V),
                M->memoryFootprint(), mapDescription(V));
  }
  std::printf("\n(B@100: measured footprint in bytes holding 100 int64 "
              "elements)\n");
  return 0;
}
