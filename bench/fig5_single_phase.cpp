//===- fig5_single_phase.cpp - Reproduces Fig. 5 (a-e) --------------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
//
// The single-phase micro-benchmark (paper §5.1, Fig. 5): each scenario
// creates and populates many collection instances and then performs 100
// lookup searches per instance, across collection sizes 100..1000.
// CollectionSwitch (Rtime for the time plots a-c, Ralloc for the
// allocation plots d-e) is compared against the fixed JDK-like defaults
// ArrayList / HashSet (chained) / HashMap (chained).
//
// Defaults are scaled down from the paper's 100k instances to keep the
// whole figure under a minute; pass `--instances 100000 --paper` for the
// full-size run.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"
#include "core/Switch.h"
#include "support/BenchmarkRunner.h"
#include "support/Random.h"

#include <cstdio>
#include <functional>

using namespace cswitch;
using namespace cswitch::bench;

namespace {

struct FigureConfig {
  size_t Instances = 1000;
  size_t Warmup = 3;
  size_t Measured = 5;
  std::shared_ptr<const PerformanceModel> Model;
};

/// One figure series: per-size mean of the measured metric.
struct SeriesPoint {
  size_t Size;
  double BaselineValue;
  double SwitchValue;
  std::string FinalVariant;
};

ContextOptions benchContextOptions() {
  ContextOptions Options;
  Options.WindowSize = 100;    // paper §5.
  Options.FinishedRatio = 0.6; // paper §5.
  Options.LogEvents = false;
  return Options;
}

/// Runs the populate+lookup scenario over a collection factory.
/// \p MakeCollection returns a fresh collection facade; Populate/Lookup
/// are abstraction-specific.
template <typename MakeFn>
MeasurementResult measureScenario(const FigureConfig &Config, size_t Size,
                                  MakeFn &&MakeAndExercise,
                                  const std::function<void()> &AfterIter) {
  MeasurementPlan Plan;
  Plan.WarmupIterations = Config.Warmup;
  Plan.MeasuredIterations = Config.Measured;
  SplitMix64 KeyRng(99);
  std::vector<int64_t> Keys =
      distinctIntegers(KeyRng, Size, static_cast<int64_t>(Size) * 4);
  return measureSteadyState(Plan, [&] {
    SplitMix64 Rng(7);
    for (size_t I = 0; I != Config.Instances; ++I)
      MakeAndExercise(Keys, Rng);
    AfterIter();
  });
}

template <typename BaselineFn, typename SwitchFn, typename CtxT>
SeriesPoint
runPoint(const FigureConfig &Config, size_t Size, BaselineFn &&Baseline,
         CtxT &Ctx, SwitchFn &&Switched, bool MeasureAlloc) {
  MeasurementResult BaselineResult =
      measureScenario(Config, Size, Baseline, [] {});
  MeasurementResult SwitchResult = measureScenario(
      Config, Size, Switched, [&Ctx] { Ctx.evaluate(); });
  SeriesPoint Point;
  Point.Size = Size;
  if (MeasureAlloc) {
    Point.BaselineValue = BaselineResult.allocStats().Mean / 1e6;
    Point.SwitchValue = SwitchResult.allocStats().Mean / 1e6;
  } else {
    Point.BaselineValue = BaselineResult.timeStats().Mean / 1e6;
    Point.SwitchValue = SwitchResult.timeStats().Mean / 1e6;
  }
  Point.FinalVariant = Ctx.currentVariant().name();
  return Point;
}

void printSeries(const char *Title, const char *BaselineName,
                 const char *Unit, const std::vector<SeriesPoint> &Series) {
  std::printf("\n%s\n", Title);
  std::printf("%6s  %14s  %16s  %7s  %s\n", "size", BaselineName,
              "CollectionSwitch", "ratio", "selected variant");
  for (const SeriesPoint &P : Series) {
    double Ratio =
        P.BaselineValue > 0 ? P.SwitchValue / P.BaselineValue : 0.0;
    std::printf("%6zu  %11.3f %s  %13.3f %s  %7.2f  %s\n", P.Size,
                P.BaselineValue, Unit, P.SwitchValue, Unit, Ratio,
                P.FinalVariant.c_str());
  }
}

} // namespace

int main(int Argc, char **Argv) {
  FigureConfig Config;
  Config.Instances =
      static_cast<size_t>(intOption(Argc, Argv, "--instances", 1000));
  size_t Lookups =
      static_cast<size_t>(intOption(Argc, Argv, "--lookups", 100));
  if (hasFlag(Argc, Argv, "--paper")) {
    Config.Warmup = 15;
    Config.Measured = 30;
  }
  Config.Model = loadModel();
  std::printf("Figure 5: %zu instances per iteration, %zu lookups per "
              "instance, %zu+%zu iterations\n",
              Config.Instances, Lookups, Config.Warmup, Config.Measured);

  std::vector<size_t> Sizes;
  for (size_t S = 100; S <= 1000; S += 100)
    Sizes.push_back(S);

  // ---- (a) Lists, execution time, Rtime --------------------------------
  // At the paper's 100 lookups, C++'s vectorized scans keep ArrayList
  // genuinely optimal (see EXPERIMENTS.md); a second series at 1000
  // lookups shows the paper's crossover on this machine.
  std::vector<size_t> ListLookupCounts = {Lookups};
  if (Lookups == 100)
    ListLookupCounts.push_back(1000);
  for (size_t ListLookups : ListLookupCounts) {
    std::vector<SeriesPoint> Series;
    for (size_t Size : Sizes) {
      ListContext<int64_t> Ctx("fig5:list", ListVariant::ArrayList,
                               Config.Model, SelectionRule::timeRule(),
                               benchContextOptions());
      auto Exercise = [Size, ListLookups](auto MakeList) {
        return [Size, ListLookups,
                MakeList](const std::vector<int64_t> &Keys,
                          SplitMix64 &Rng) {
          auto L = MakeList();
          L.reserve(Size);
          for (int64_t K : Keys)
            L.add(K);
          uint64_t Hits = 0;
          for (size_t I = 0; I != ListLookups; ++I)
            Hits += L.contains(static_cast<int64_t>(
                Rng.nextBelow(Size * 4)));
          (void)Hits;
        };
      };
      Series.push_back(runPoint(
          Config, Size,
          Exercise([] {
            return List<int64_t>(
                makeListImpl<int64_t>(ListVariant::ArrayList));
          }),
          Ctx, Exercise([&Ctx] { return Ctx.createList(); }),
          /*MeasureAlloc=*/false));
    }
    char Title[96];
    std::snprintf(Title, sizeof(Title),
                  "Figure 5a: time vs JDK ArrayList (Rtime, %zu "
                  "lookups/instance)",
                  ListLookups);
    printSeries(Title, "ArrayList", "ms", Series);
  }

  // ---- (b, d) Sets: time under Rtime, allocation under Ralloc ----------
  for (bool Alloc : {false, true}) {
    std::vector<SeriesPoint> Series;
    for (size_t Size : Sizes) {
      SetContext<int64_t> Ctx("fig5:set", SetVariant::ChainedHashSet,
                              Config.Model,
                              Alloc ? SelectionRule::allocRule()
                                    : SelectionRule::timeRule(),
                              benchContextOptions());
      auto Exercise = [Size, Lookups](auto MakeSet) {
        return [Size, Lookups, MakeSet](const std::vector<int64_t> &Keys,
                               SplitMix64 &Rng) {
          auto S = MakeSet();
          for (int64_t K : Keys)
            S.add(K);
          uint64_t Hits = 0;
          for (size_t I = 0; I != Lookups; ++I)
            Hits += S.contains(static_cast<int64_t>(
                Rng.nextBelow(Size * 4)));
          (void)Hits;
        };
      };
      Series.push_back(runPoint(
          Config, Size,
          Exercise([] {
            return Set<int64_t>(
                makeSetImpl<int64_t>(SetVariant::ChainedHashSet));
          }),
          Ctx, Exercise([&Ctx] { return Ctx.createSet(); }), Alloc));
    }
    printSeries(Alloc
                    ? "Figure 5d: allocation vs JDK HashSet (Ralloc)"
                    : "Figure 5b: time vs JDK HashSet (Rtime)",
                "HashSet", Alloc ? "MB" : "ms", Series);
  }

  // ---- (c, e) Maps: time under Rtime, allocation under Ralloc ----------
  for (bool Alloc : {false, true}) {
    std::vector<SeriesPoint> Series;
    for (size_t Size : Sizes) {
      MapContext<int64_t, int64_t> Ctx(
          "fig5:map", MapVariant::ChainedHashMap, Config.Model,
          Alloc ? SelectionRule::allocRule() : SelectionRule::timeRule(),
          benchContextOptions());
      auto Exercise = [Size, Lookups](auto MakeMap) {
        return [Size, Lookups, MakeMap](const std::vector<int64_t> &Keys,
                               SplitMix64 &Rng) {
          auto M = MakeMap();
          for (int64_t K : Keys)
            M.put(K, K);
          uint64_t Hits = 0;
          for (size_t I = 0; I != Lookups; ++I)
            Hits += M.get(static_cast<int64_t>(
                        Rng.nextBelow(Size * 4))) != nullptr;
          (void)Hits;
        };
      };
      Series.push_back(runPoint(
          Config, Size,
          Exercise([] {
            return Map<int64_t, int64_t>(
                makeMapImpl<int64_t, int64_t>(MapVariant::ChainedHashMap));
          }),
          Ctx, Exercise([&Ctx] { return Ctx.createMap(); }), Alloc));
    }
    printSeries(Alloc
                    ? "Figure 5e: allocation vs JDK HashMap (Ralloc)"
                    : "Figure 5c: time vs JDK HashMap (Rtime)",
                "HashMap", Alloc ? "MB" : "ms", Series);
  }

  return 0;
}
