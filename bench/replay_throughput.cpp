//===- replay_throughput.cpp - Trace record/replay cost -------------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
//
// The cost account of the src/replay/ subsystem, in three parts:
//
// Part 1 — recording overhead on the fig7 monitored-cycle harness: the
// same monitored create/add/contains/destroy cycle once with monitoring
// only and once with a TraceRecorder attached. The acceptance bar is
// recording <= 2x the monitoring-only baseline (per cycle, wall time);
// the measured ratio is printed and emitted as JSON.
//
// Part 2 — raw TraceRecorder::record() throughput under contention
// (1/4/8 threads), nanoseconds per recorded op.
//
// Part 3 — replay throughput: a recorded synthetic trace re-executed in
// fixed and engine mode, in Mops/s, plus a determinism double-check
// (two engine replays must produce byte-identical decision logs).
//
// Results go to BENCH_replay.json (--json <path> overrides, --no-json
// disables).
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"
#include "core/Switch.h"
#include "replay/Replayer.h"
#include "replay/TraceRecorder.h"
#include "support/Timer.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

using namespace cswitch;
using namespace cswitch::bench;

namespace {

/// One monitored create/add/contains/destroy cycle workload against a
/// single contended context (the fig7 part-2 shape), optionally with a
/// trace recorder attached. Returns wall nanoseconds per cycle.
double monitoredCycleCost(size_t Threads, size_t PerThread,
                          const std::shared_ptr<const PerformanceModel> &M,
                          TraceRecorder *Rec) {
  ContextOptions Options;
  Options.WindowSize = 64;
  Options.FinishedRatio = 0.5;
  Options.LogEvents = false;
  Options.Recorder = Rec;
  ListContext<int64_t> Ctx("replay:overhead", ListVariant::ArrayList, M,
                           SelectionRule::impossibleRule(), Options);

  std::atomic<bool> Stop{false};
  std::atomic<size_t> Ready{0};
  std::atomic<bool> Go{false};
  std::vector<std::thread> Workers;
  for (size_t T = 0; T != Threads; ++T) {
    Workers.emplace_back([&Ctx, &Ready, &Go, PerThread] {
      Ready.fetch_add(1);
      while (!Go.load(std::memory_order_acquire)) {
      }
      for (size_t I = 0; I != PerThread; ++I) {
        List<int64_t> L = Ctx.createList();
        L.add(static_cast<int64_t>(I));
        (void)L.contains(1);
        if (I % 256 == 255)
          Ctx.evaluate();
      }
    });
  }
  std::thread Evaluator([&Ctx, &Stop] {
    while (!Stop.load(std::memory_order_relaxed)) {
      Ctx.evaluate();
      std::this_thread::yield();
    }
  });
  while (Ready.load() != Threads) {
  }
  Timer Clock;
  Go.store(true, std::memory_order_release);
  for (std::thread &W : Workers)
    W.join();
  double Nanos = static_cast<double>(Clock.elapsedNanos());
  Stop.store(true, std::memory_order_relaxed);
  Evaluator.join();
  return Nanos / static_cast<double>(Threads * PerThread);
}

struct OverheadRow {
  size_t Threads = 0;
  double MonitoringNanos = 0.0;
  double RecordingNanos = 0.0;
  double ratio() const {
    return MonitoringNanos > 0.0 ? RecordingNanos / MonitoringNanos : 0.0;
  }
};

/// Raw record() cost under contention, ns per op.
double contendedRecordCost(size_t Threads, size_t PerThread) {
  TraceRecorder Rec(TraceRecorderOptions{}.capacity(1 << 22));
  uint32_t Site = Rec.registerSite("replay:raw", AbstractionKind::List, 0);

  std::atomic<size_t> Ready{0};
  std::atomic<bool> Go{false};
  std::vector<std::thread> Workers;
  for (size_t T = 0; T != Threads; ++T) {
    Workers.emplace_back([&Rec, &Ready, &Go, PerThread, Site] {
      Ready.fetch_add(1);
      while (!Go.load(std::memory_order_acquire)) {
      }
      for (size_t I = 0; I != PerThread; ++I)
        Rec.record(Site, 0, TraceOpKind::Populate, OpClass::None, I);
    });
  }
  while (Ready.load() != Threads) {
  }
  Timer Clock;
  Go.store(true, std::memory_order_release);
  for (std::thread &W : Workers)
    W.join();
  double Nanos = static_cast<double>(Clock.elapsedNanos());
  return Nanos / static_cast<double>(Threads * PerThread);
}

/// Records a synthetic single-site workload and returns its trace.
OpTrace recordSyntheticTrace(
    const std::shared_ptr<const PerformanceModel> &M, size_t Instances,
    size_t OpsPerInstance) {
  TraceRecorder Rec(TraceRecorderOptions{}.capacity(1 << 22));
  ContextOptions Options;
  Options.LogEvents = false;
  Options.Recorder = &Rec;
  ListContext<int64_t> Ctx("replay:synthetic", ListVariant::LinkedList, M,
                           SelectionRule::timeRule(), Options);
  for (size_t I = 0; I != Instances; ++I) {
    List<int64_t> L = Ctx.createList();
    for (size_t Op = 0; Op != OpsPerInstance; ++Op)
      L.add(static_cast<int64_t>(Op));
    for (size_t Op = 0; Op != OpsPerInstance; ++Op)
      (void)L.get(Op);
    (void)L.contains(-1);
  }
  return Rec.trace();
}

double replayMopsPerSec(const ReplayResult &Result) {
  return Result.ElapsedNanos
             ? static_cast<double>(Result.OpsExecuted) * 1e3 /
                   static_cast<double>(Result.ElapsedNanos)
             : 0.0;
}

const char *jsonPath(int Argc, char **Argv) {
  if (hasFlag(Argc, Argv, "--no-json"))
    return nullptr;
  for (int I = 1; I + 1 < Argc; ++I)
    if (std::strcmp(Argv[I], "--json") == 0)
      return Argv[I + 1];
  return "BENCH_replay.json";
}

} // namespace

int main(int Argc, char **Argv) {
  std::shared_ptr<const PerformanceModel> Model = loadModel();
  size_t PerThread = static_cast<size_t>(
      std::max(intOption(Argc, Argv, "--instances", 100000), 8L));

  std::printf("\nRecording overhead on the monitored cycle (fig7 "
              "harness): ns per create+destroy cycle\n");
  std::printf("%8s  %14s  %14s  %8s\n", "threads", "monitoring",
              "+recording", "ratio");
  std::vector<OverheadRow> Overhead;
  for (size_t Threads : {1u, 4u}) {
    std::vector<double> Mon, Record;
    for (int R = 0; R != 7; ++R) {
      Mon.push_back(
          monitoredCycleCost(Threads, PerThread / Threads, Model,
                             nullptr));
      // A fresh recorder per repetition: steady-state recording into a
      // buffer with room, the configuration the 2x bar is about.
      TraceRecorder Rec(TraceRecorderOptions{}.capacity(1 << 22));
      Record.push_back(
          monitoredCycleCost(Threads, PerThread / Threads, Model, &Rec));
    }
    std::sort(Mon.begin(), Mon.end());
    std::sort(Record.begin(), Record.end());
    OverheadRow Row;
    Row.Threads = Threads;
    Row.MonitoringNanos = Mon[3];
    Row.RecordingNanos = Record[3];
    Overhead.push_back(Row);
    std::printf("%8zu  %14.1f  %14.1f  %7.2fx\n", Threads,
                Row.MonitoringNanos, Row.RecordingNanos, Row.ratio());
  }
  std::printf("(acceptance bar: recording <= 2x monitoring-only)\n");

  std::printf("\nRaw TraceRecorder::record() under contention\n");
  std::printf("%8s  %12s\n", "threads", "ns/record");
  std::vector<std::pair<size_t, double>> RawRecord;
  for (size_t Threads : {1u, 4u, 8u}) {
    std::vector<double> Reps;
    for (int R = 0; R != 7; ++R)
      Reps.push_back(contendedRecordCost(Threads, PerThread / Threads));
    std::sort(Reps.begin(), Reps.end());
    RawRecord.emplace_back(Threads, Reps[3]);
    std::printf("%8zu  %12.1f\n", Threads, Reps[3]);
  }

  std::printf("\nReplay throughput (synthetic 1-site trace)\n");
  OpTrace Trace = recordSyntheticTrace(Model, 2000, 48);
  std::printf("  trace: %zu ops, %llu instances sampled, %llu dropped\n",
              Trace.Ops.size(),
              static_cast<unsigned long long>(Trace.InstancesSampled),
              static_cast<unsigned long long>(Trace.OpsDropped));

  ReplayOptions Fixed;
  Fixed.Mode = ReplayMode::Fixed;
  Replayer FixedReplay(Trace, Fixed);
  ReplayResult FixedResult = FixedReplay.run();

  ReplayOptions Engine;
  Engine.Mode = ReplayMode::Engine;
  Engine.Model = Model;
  Replayer EngineReplay(Trace, Engine);
  ReplayResult EngineFirst = EngineReplay.run();
  ReplayResult EngineSecond = EngineReplay.run();
  bool Deterministic =
      EngineFirst.DecisionLog == EngineSecond.DecisionLog &&
      [&] {
        for (size_t I = 0; I != EngineFirst.Sites.size(); ++I)
          if (EngineFirst.Sites[I].FinalVariantIndex !=
              EngineSecond.Sites[I].FinalVariantIndex)
            return false;
        return true;
      }();

  std::printf("  fixed:  %8.1f Mops/s (%llu ops, %llu mismatches)\n",
              replayMopsPerSec(FixedResult),
              static_cast<unsigned long long>(FixedResult.OpsExecuted),
              static_cast<unsigned long long>(FixedResult.SizeMismatches));
  std::printf("  engine: %8.1f Mops/s (%llu evaluations, %llu switches, "
              "deterministic: %s)\n",
              replayMopsPerSec(EngineFirst),
              static_cast<unsigned long long>(EngineFirst.Evaluations),
              static_cast<unsigned long long>(EngineFirst.Switches),
              Deterministic ? "yes" : "NO");

  if (const char *Path = jsonPath(Argc, Argv)) {
    std::FILE *F = std::fopen(Path, "w");
    if (!F) {
      std::fprintf(stderr, "cannot write %s\n", Path);
      return 1;
    }
    std::fprintf(F, "{\n  \"bench\": \"replay_throughput\",\n");
    std::fprintf(F, "  \"recording_overhead\": [\n");
    for (size_t I = 0; I != Overhead.size(); ++I) {
      const OverheadRow &R = Overhead[I];
      std::fprintf(F,
                   "    {\"threads\": %zu, \"monitoring_ns\": %.1f, "
                   "\"recording_ns\": %.1f, \"ratio\": %.3f, "
                   "\"within_2x\": %s}%s\n",
                   R.Threads, R.MonitoringNanos, R.RecordingNanos,
                   R.ratio(), R.ratio() <= 2.0 ? "true" : "false",
                   I + 1 == Overhead.size() ? "" : ",");
    }
    std::fprintf(F, "  ],\n  \"record_ns_per_op\": [\n");
    for (size_t I = 0; I != RawRecord.size(); ++I)
      std::fprintf(F, "    {\"threads\": %zu, \"ns\": %.1f}%s\n",
                   RawRecord[I].first, RawRecord[I].second,
                   I + 1 == RawRecord.size() ? "" : ",");
    std::fprintf(F,
                 "  ],\n  \"replay\": {\"trace_ops\": %zu, "
                 "\"fixed_mops\": %.2f, \"engine_mops\": %.2f, "
                 "\"deterministic\": %s}\n}\n",
                 Trace.Ops.size(), replayMopsPerSec(FixedResult),
                 replayMopsPerSec(EngineFirst),
                 Deterministic ? "true" : "false");
    std::fclose(F);
    std::printf("\n[wrote %s]\n", Path);
  }
  return Deterministic ? 0 : 1;
}
