//===- table6_transitions.cpp - Reproduces Table 6 ------------------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
//
// The most commonly performed transitions per application and selection
// rule (paper §5.2, Table 6), harvested from the framework's event log
// over one FullAdap run of each app under each rule.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"
#include "apps/Apps.h"
#include "core/Switch.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <utility>
#include <vector>
#include <string>

using namespace cswitch;
using namespace cswitch::bench;

namespace {

/// Variants selected by any transition across the whole experiment
/// (paper §5.2: "Only 11 out of the 25 possible variants were used").
std::set<std::string> &selectedVariants() {
  static std::set<std::string> Set;
  return Set;
}

/// Runs \p App under \p Rule and returns the transitions sorted by
/// frequency (top 2), or "--" when none happened.
std::string dominantTransition(AppKind App, const SelectionRule &Rule,
                               std::shared_ptr<const PerformanceModel> M) {
  Switch::drainEvents(); // discard events of earlier runs
  AppRunConfig RC;
  RC.Config = AppConfig::FullAdap;
  RC.Rule = Rule;
  RC.Model = std::move(M);
  RC.Seed = 17;
  RC.Scale = 0.5;
  RC.CtxOptions.WindowSize = 100;
  RC.CtxOptions.FinishedRatio = 0.6;
  RC.CtxOptions.LogEvents = true;
  runApp(App, RC);

  std::map<std::string, int> Counts;
  for (const Event &E : Switch::drainEvents()) {
    if (E.Kind != EventKind::Transition)
      continue;
    ++Counts[E.Detail];
    size_t Arrow = E.Detail.find(" -> ");
    if (Arrow != std::string::npos)
      selectedVariants().insert(E.Detail.substr(Arrow + 4));
  }
  if (Counts.empty())
    return "--";
  std::vector<std::pair<std::string, int>> Sorted(Counts.begin(),
                                                  Counts.end());
  std::sort(Sorted.begin(), Sorted.end(),
            [](const auto &A, const auto &B) { return A.second > B.second; });
  std::string Out;
  for (size_t I = 0; I != Sorted.size() && I != 2; ++I) {
    if (I)
      Out += "; ";
    Out += Sorted[I].first + " (x" + std::to_string(Sorted[I].second) + ")";
  }
  return Out;
}

} // namespace

int main() {
  std::shared_ptr<const PerformanceModel> Model = loadModel();
  std::printf("\nTable 6: most commonly performed transitions\n");
  std::printf("%-10s %-42s %-42s\n", "Benchmark", "Rtime", "Ralloc");
  for (AppKind App : AllAppKinds) {
    std::string Rtime =
        dominantTransition(App, SelectionRule::timeRule(), Model);
    std::string Ralloc =
        dominantTransition(App, SelectionRule::allocRule(), Model);
    std::printf("%-10s %-42s %-42s\n", appKindName(App), Rtime.c_str(),
                Ralloc.c_str());
  }
  size_t Pool = NumListVariants + NumSetVariants + NumMapVariants;
  std::printf("\ndistinct variants selected: %zu of %zu in the pool "
              "(paper: 11 of 25)\n",
              selectedVariants().size(), Pool);
  std::printf("\n(paper Table 6: avrora HS->OpenHashSet / HS->AdaptiveSet;"
              " bloat LL->AL / HS->AdaptiveSet; fop AL->AdaptiveList x2;\n"
              " h2 AL->AdaptiveList / HS->ArraySet; lusearch "
              "HM->OpenHashMap / HM->AdaptiveMap)\n");
  return 0;
}
