//===- histogram_overhead.cpp - Continuous-profiling cost & fig7 p99s -----===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
//
// Two questions about the continuous profiling layer (src/obs/):
//
// Part 1 — what does it cost? The fig7 contended monitoring cycle
// (create/add/contains/destroy against one shared context with rounds
// rotating) run twice per thread count: profiling enabled (the default)
// and disabled via ProfilingRegistry::setEnabled(false). The delta is
// the price of the 1-in-64 sampled clocking on the record fast path.
//
// Part 2 — what does it see? The latency distributions the enabled runs
// collected: per-path p50/p99/p999 of record (sampled), evaluate and
// switch, i.e. the tail data Fig. 7's averages cannot show. Both parts
// are emitted into BENCH_histogram.json so the perf-trajectory file set
// covers latency distributions.
//
// The thread ladder is BenchSupport's threadSweep — {1,2,4,8,16,32,64}
// clamped to this machine, --max-threads overriding the ceiling.
//
//   histogram_overhead [--instances N] [--max-threads N]
//                      [--json PATH | --no-json]
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"
#include "core/Switch.h"
#include "obs/Profiling.h"
#include "support/Timer.h"
#include "support/Topology.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

using namespace cswitch;
using namespace cswitch::bench;

namespace {

struct CycleResult {
  size_t Threads = 0;
  uint64_t Instances = 0;
  double NanosPerInstance = 0.0;
};

/// The fig7 contended cycle: \p Threads workers hammer one shared
/// context with monitored create/destroy cycles while rounds rotate.
CycleResult contendedCycle(size_t Threads, size_t PerThread,
                           const std::shared_ptr<const PerformanceModel> &M,
                           const char *SiteName) {
  ContextOptions Options;
  Options.WindowSize = 64;
  Options.FinishedRatio = 0.5;
  Options.LogEvents = false;
  ListContext<int64_t> Ctx(SiteName, ListVariant::ArrayList, M,
                           SelectionRule::impossibleRule(), Options);

  std::atomic<bool> Stop{false};
  std::atomic<size_t> Ready{0};
  std::atomic<bool> Go{false};
  std::vector<std::thread> Workers;
  for (size_t T = 0; T != Threads; ++T) {
    Workers.emplace_back([&Ctx, &Ready, &Go, PerThread] {
      Ready.fetch_add(1);
      while (!Go.load(std::memory_order_acquire)) {
      }
      for (size_t I = 0; I != PerThread; ++I) {
        List<int64_t> L = Ctx.createList();
        L.add(static_cast<int64_t>(I));
        (void)L.contains(1);
        if (I % 256 == 255)
          Ctx.evaluate();
      }
    });
  }
  std::thread Evaluator([&Ctx, &Stop] {
    while (!Stop.load(std::memory_order_relaxed)) {
      Ctx.evaluate();
      std::this_thread::yield();
    }
  });
  while (Ready.load() != Threads) {
  }
  Timer Clock;
  Go.store(true, std::memory_order_release);
  for (std::thread &W : Workers)
    W.join();
  double Nanos = static_cast<double>(Clock.elapsedNanos());
  Stop.store(true, std::memory_order_relaxed);
  Evaluator.join();

  CycleResult R;
  R.Threads = Threads;
  R.Instances = Ctx.instancesCreated();
  R.NanosPerInstance = Nanos / static_cast<double>(R.Instances);
  return R;
}

double medianCycle(size_t Threads, size_t PerThread,
                   const std::shared_ptr<const PerformanceModel> &M,
                   const char *SiteName) {
  std::vector<double> Reps;
  size_t Per = std::max<size_t>(PerThread / Threads, 64);
  for (int R = 0; R != 9; ++R)
    Reps.push_back(
        contendedCycle(Threads, Per, M, SiteName).NanosPerInstance);
  std::sort(Reps.begin(), Reps.end());
  return Reps[4];
}

const char *jsonPath(int Argc, char **Argv) {
  if (hasFlag(Argc, Argv, "--no-json"))
    return nullptr;
  for (int I = 1; I + 1 < Argc; ++I)
    if (std::strcmp(Argv[I], "--json") == 0)
      return Argv[I + 1];
  return "BENCH_histogram.json";
}

void printStats(const char *Path, const LatencyStats &S) {
  std::printf("%10s  %10llu  %8llu  %10.0f  %10.0f  %10.0f  %10llu\n", Path,
              static_cast<unsigned long long>(S.Count),
              static_cast<unsigned long long>(S.MinNanos), S.P50, S.P99,
              S.P999, static_cast<unsigned long long>(S.MaxNanos));
}

void jsonStats(std::FILE *F, const char *Key, const LatencyStats &S,
               const char *Trailer) {
  std::fprintf(F,
               "    \"%s\": {\"count\": %llu, \"min_nanos\": %llu, "
               "\"p50\": %.1f, \"p90\": %.1f, \"p99\": %.1f, "
               "\"p999\": %.1f, \"max_nanos\": %llu}%s\n",
               Key, static_cast<unsigned long long>(S.Count),
               static_cast<unsigned long long>(S.MinNanos), S.P50, S.P90,
               S.P99, S.P999, static_cast<unsigned long long>(S.MaxNanos),
               Trailer);
}

} // namespace

int main(int Argc, char **Argv) {
  std::shared_ptr<const PerformanceModel> Model = loadModel();
  size_t PerThread = static_cast<size_t>(
      std::max(intOption(Argc, Argv, "--instances", 200000), 8L));

  struct Row {
    size_t Threads;
    double ProfiledNs;
    double UnprofiledNs;
  };
  std::vector<Row> Rows;
  std::vector<size_t> Sweep = threadSweep(Argc, Argv);
  const Topology &Topo = Topology::system();
  std::printf("Continuous profiling: fig7 contended cycle with histograms "
              "on vs off\n");
  std::printf("(topology: %u node%s, %u cpu%s%s)\n", Topo.nodeCount(),
              Topo.nodeCount() == 1 ? "" : "s", Topo.cpuCount(),
              Topo.cpuCount() == 1 ? "" : "s",
              Topo.synthetic() ? ", synthetic" : "");
  std::printf("%8s  %14s  %14s  %10s\n", "threads", "profiled ns",
              "unprofiled ns", "delta ns");
  for (size_t Threads : Sweep) {
    obs::ProfilingRegistry::setEnabled(true);
    double On = medianCycle(Threads, PerThread, Model, "hist:profiled");
    obs::ProfilingRegistry::setEnabled(false);
    double Off = medianCycle(Threads, PerThread, Model, "hist:unprofiled");
    obs::ProfilingRegistry::setEnabled(true);
    Rows.push_back({Threads, On, Off});
    std::printf("%8zu  %14.1f  %14.1f  %10.1f\n", Threads, On, Off,
                On - Off);
  }

  // The distributions the enabled runs just filled in.
  const obs::SiteProfile *Site =
      obs::ProfilingRegistry::global().profile("hist:profiled");
  SiteLatencies L = Site->latencies();
  std::printf("\nCollected fig7-cycle latency distributions (ns)\n");
  std::printf("%10s  %10s  %8s  %10s  %10s  %10s  %10s\n", "path", "count",
              "min", "p50", "p99", "p999", "max");
  printStats("record", L.Record);
  printStats("evaluate", L.Evaluate);
  printStats("switch", L.Switch);

  if (const char *Path = jsonPath(Argc, Argv)) {
    std::FILE *F = std::fopen(Path, "w");
    if (!F) {
      std::fprintf(stderr, "cannot write %s\n", Path);
      return 1;
    }
    std::fprintf(F, "{\n  \"bench\": \"histogram_overhead\",\n");
    std::fprintf(F,
                 "  \"topology\": {\"nodes\": %u, \"cpus\": %u, "
                 "\"synthetic\": %s, \"hardware_concurrency\": %u},\n",
                 Topo.nodeCount(), Topo.cpuCount(),
                 Topo.synthetic() ? "true" : "false",
                 std::thread::hardware_concurrency());
    std::fprintf(F, "  \"contended_cycle\": [\n");
    for (size_t I = 0; I != Rows.size(); ++I)
      std::fprintf(F,
                   "    {\"threads\": %zu, \"profiled_ns\": %.1f, "
                   "\"unprofiled_ns\": %.1f, \"delta_ns\": %.1f}%s\n",
                   Rows[I].Threads, Rows[I].ProfiledNs, Rows[I].UnprofiledNs,
                   Rows[I].ProfiledNs - Rows[I].UnprofiledNs,
                   I + 1 == Rows.size() ? "" : ",");
    std::fprintf(F, "  ],\n  \"fig7_cycle_latency\": {\n");
    jsonStats(F, "record", L.Record, ",");
    jsonStats(F, "evaluate", L.Evaluate, ",");
    jsonStats(F, "switch", L.Switch, "");
    std::fprintf(F, "  }\n}\n");
    std::fclose(F);
    std::printf("\n[wrote %s]\n", Path);
  }
  return 0;
}
