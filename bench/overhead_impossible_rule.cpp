//===- overhead_impossible_rule.cpp - Reproduces §5.3's overhead check ----===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
//
// The framework-overhead experiment (paper §5.3): run every app in its
// original form and under the full framework with an impossible
// selection rule (1000x improvement required), so all monitoring and
// analysis machinery is active but no transition ever fires. The paper
// found no significant execution-time difference on any benchmark; this
// harness reports the same comparison, plus the ~1 KB-per-context
// footprint claim.
//
// Pass --json <path> to also emit the per-app comparison and the
// footprint probe as machine-readable JSON.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"
#include "apps/AppHarness.h"
#include "apps/Apps.h"
#include "support/Statistics.h"

#include <cstdio>
#include <cstring>
#include <vector>

using namespace cswitch;
using namespace cswitch::bench;

namespace {

struct AppRow {
  const char *Name;
  double OriginalMean;
  double MonitoredMean;
  double RelativeChange;
  bool Significant;
};

const char *jsonPath(int Argc, char **Argv) {
  for (int I = 1; I + 1 < Argc; ++I)
    if (std::strcmp(Argv[I], "--json") == 0)
      return Argv[I + 1];
  return nullptr;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Paper = hasFlag(Argc, Argv, "--paper");
  size_t Warmup = Paper ? 5 : 2;
  size_t Measured = Paper ? 30 : 10;

  AppRunConfig Base;
  Base.Model = loadModel();
  Base.Seed = 23;
  Base.Scale = Paper ? 1.0 : 0.4;
  Base.CtxOptions.WindowSize = 100;
  Base.CtxOptions.FinishedRatio = 0.6;
  Base.CtxOptions.LogEvents = false;

  std::printf("\nFramework overhead with disabled optimization actions "
              "(impossible rule; %zu+%zu runs)\n",
              Warmup, Measured);
  std::printf("%-10s %12s %14s %10s %12s\n", "bench", "orig T(s)",
              "monitored T(s)", "overhead", "significant?");

  std::vector<AppRow> Rows;
  for (AppKind App : AllAppKinds) {
    std::vector<double> Original, Monitored;
    for (size_t I = 0; I != Warmup + Measured; ++I) {
      AppRunConfig RC = Base;
      RC.Config = AppConfig::Original;
      AppResult R = runApp(App, RC);
      if (I >= Warmup)
        Original.push_back(R.Seconds);
    }
    for (size_t I = 0; I != Warmup + Measured; ++I) {
      AppRunConfig RC = Base;
      RC.Config = AppConfig::FullAdap;
      RC.Rule = SelectionRule::impossibleRule();
      AppResult R = runApp(App, RC);
      if (I >= Warmup)
        Monitored.push_back(R.Seconds);
    }
    ComparisonResult Cmp = compareMeans(Original, Monitored);
    AppRow Row = {appKindName(App), summarize(Original).Mean,
                  summarize(Monitored).Mean, Cmp.RelativeChange,
                  Cmp.Significant};
    Rows.push_back(Row);
    std::printf("%-10s %12.4f %14.4f %9.1f%% %12s\n", Row.Name,
                Row.OriginalMean, Row.MonitoredMean,
                Row.RelativeChange * 100.0,
                Row.Significant ? "yes" : "no");
  }

  // Context footprint (paper: ~1 KB per allocation context).
  ContextOptions Options;
  Options.WindowSize = 100;
  Options.LogEvents = false;
  ListContext<int64_t> Ctx("footprint-probe", ListVariant::ArrayList,
                           Base.Model, SelectionRule::timeRule(), Options);
  size_t Footprint = Ctx.memoryFootprint();
  std::printf("\nallocation-context footprint at window size 100: %zu "
              "bytes (paper: ~1 KB)\n",
              Footprint);

  if (const char *Path = jsonPath(Argc, Argv)) {
    std::FILE *F = std::fopen(Path, "w");
    if (!F) {
      std::fprintf(stderr, "cannot write %s\n", Path);
      return 1;
    }
    std::fprintf(F, "{\n  \"bench\": \"overhead_impossible_rule\",\n");
    std::fprintf(F, "  \"warmup_runs\": %zu,\n  \"measured_runs\": %zu,\n",
                 Warmup, Measured);
    std::fprintf(F, "  \"apps\": [\n");
    for (size_t I = 0; I != Rows.size(); ++I) {
      const AppRow &R = Rows[I];
      std::fprintf(F,
                   "    {\"app\": \"%s\", \"original_s\": %.6f, "
                   "\"monitored_s\": %.6f, \"overhead\": %.4f, "
                   "\"significant\": %s}%s\n",
                   R.Name, R.OriginalMean, R.MonitoredMean,
                   R.RelativeChange, R.Significant ? "true" : "false",
                   I + 1 == Rows.size() ? "" : ",");
    }
    std::fprintf(F, "  ],\n");
    std::fprintf(F, "  \"context_footprint_bytes\": %zu\n}\n", Footprint);
    std::fclose(F);
    std::printf("[wrote %s]\n", Path);
  }
  return 0;
}
