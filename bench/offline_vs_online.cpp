//===- offline_vs_online.cpp - Offline advice vs online adaptation --------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
//
// The comparison behind the paper's §6 positioning: offline advisors
// (Chameleon/Brainy-style) recommend one static variant per site from a
// profiling run, while CollectionSwitch adapts at runtime. On a stable
// workload the two agree; on a phase-shifting workload the offline
// choice is a compromise that loses to online adaptation. This harness
// measures both cases.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"
#include "core/OfflineAdvisor.h"
#include "core/Switch.h"
#include "support/Random.h"
#include "support/Timer.h"

#include <cstdio>
#include <functional>

using namespace cswitch;
using namespace cswitch::bench;

namespace {

/// Two-phase list workload: Phase A is lookup-heavy, phase B is
/// positional. Returns elapsed ms.
double runTwoPhases(const std::function<List<int64_t>()> &MakeList,
                    const std::function<void()> &BetweenIterations) {
  SplitMix64 Rng(5);
  Timer Clock;
  for (int Phase = 0; Phase != 2; ++Phase) {
    for (int Iter = 0; Iter != 8; ++Iter) {
      for (int I = 0; I != 150; ++I) {
        List<int64_t> L = MakeList();
        for (int64_t V = 0; V != 400; ++V)
          L.add(V);
        if (Phase == 0) {
          for (int64_t V = 0; V != 2500; ++V)
            (void)L.contains(static_cast<int64_t>(Rng.nextBelow(800)));
        } else {
          for (size_t V = 0; V != 2500; ++V)
            (void)L.get(Rng.nextBelow(400));
        }
      }
      BetweenIterations();
    }
  }
  return Clock.elapsedSeconds() * 1e3;
}

} // namespace

int main() {
  std::shared_ptr<const PerformanceModel> Model = loadModel();

  // --- Profiling run: record every instance's workload offline-style. --
  ProfileAggregator Profiler("ovo:list", AbstractionKind::List,
                             static_cast<unsigned>(ListVariant::ArrayList));
  {
    size_t Slot = 0;
    runTwoPhases(
        [&Profiler, &Slot] {
          return List<int64_t>(
              makeListImpl<int64_t>(ListVariant::ArrayList), &Profiler,
              Slot++);
        },
        [] {});
  }
  std::vector<SiteRecommendation> Advice =
      adviseOffline({&Profiler}, *Model, SelectionRule::timeRule());
  std::printf("\noffline advisor on the two-phase profile:\n  %s\n",
              Advice[0].toString().c_str());
  ListVariant OfflineChoice =
      Advice[0].RecommendedVariantIndex
          ? static_cast<ListVariant>(*Advice[0].RecommendedVariantIndex)
          : ListVariant::ArrayList;

  // --- Deployment runs. ------------------------------------------------
  double BaselineMs = runTwoPhases(
      [] {
        return List<int64_t>(
            makeListImpl<int64_t>(ListVariant::ArrayList));
      },
      [] {});

  double OfflineMs = runTwoPhases(
      [OfflineChoice] {
        return List<int64_t>(makeListImpl<int64_t>(OfflineChoice));
      },
      [] {});

  ContextOptions Options;
  Options.WindowSize = 100;
  Options.FinishedRatio = 0.6;
  Options.LogEvents = false;
  ListContext<int64_t> Ctx("ovo:online", ListVariant::ArrayList, Model,
                           SelectionRule::timeRule(), Options);
  double OnlineMs = runTwoPhases([&Ctx] { return Ctx.createList(); },
                                 [&Ctx] { Ctx.evaluate(); });

  std::printf("\ntwo-phase workload (lookup phase, then positional "
              "phase):\n");
  std::printf("  %-34s %8.1f ms\n", "fixed ArrayList (developer default)",
              BaselineMs);
  std::printf("  %-34s %8.1f ms  (one static choice: %s)\n",
              "offline advisor's recommendation", OfflineMs,
              listVariantName(OfflineChoice));
  std::printf("  %-34s %8.1f ms  (%llu transitions)\n",
              "CollectionSwitch online", OnlineMs,
              static_cast<unsigned long long>(Ctx.switchCount()));
  std::printf("\n(online adaptation can beat any single static choice "
              "once the workload shifts — the paper's §1 motivation)\n");
  return 0;
}
