//===- renergy_extension.cpp - Energy-dimension extension -----------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
//
// Extension experiment (not a paper table): the paper's §7 future work
// proposes expanding the model to energy. With the derived energy model
// (EnergyModel.h), this harness compares the variant each rule selects
// for the same set of workload profiles — showing where Renergy agrees
// with Rtime (lookup-dominated work: energy tracks time) and where it
// sides with Ralloc (allocation-churn-dominated work).
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"
#include "core/Switch.h"

#include <cstdio>

using namespace cswitch;
using namespace cswitch::bench;

namespace {

/// Runs a synthetic profile mix through one context per rule and reports
/// each rule's chosen variant.
void compareRules(const char *Scenario,
                  const std::shared_ptr<const PerformanceModel> &Model,
                  uint64_t Populates, uint64_t Lookups, uint64_t MaxSize) {
  std::printf("%-34s", Scenario);
  for (const SelectionRule &Rule :
       {SelectionRule::timeRule(), SelectionRule::allocRule(),
        SelectionRule::energyRule()}) {
    ContextOptions Options;
    Options.WindowSize = 10;
    Options.FinishedRatio = 0.5;
    Options.LogEvents = false;
    SetContext<int64_t> Ctx("renergy", SetVariant::ChainedHashSet, Model,
                            Rule, Options);
    for (int I = 0; I != 10; ++I) {
      Set<int64_t> S = Ctx.createSet();
      for (uint64_t V = 0; V != MaxSize; ++V)
        S.add(static_cast<int64_t>(V));
      // Scale the op counters to the scenario (the facade records one
      // populate per add; extra populates are emulated by re-adding).
      for (uint64_t P = MaxSize; P < Populates; ++P)
        S.add(static_cast<int64_t>(P % MaxSize));
      for (uint64_t L = 0; L != Lookups; ++L)
        (void)S.contains(static_cast<int64_t>(L % (MaxSize * 2)));
    }
    Ctx.evaluate();
    std::printf(" %-16s", Ctx.currentVariant().name().c_str());
  }
  std::printf("\n");
}

} // namespace

int main() {
  std::shared_ptr<const PerformanceModel> Model = loadModel();
  std::printf("\nExtension: variant selected per rule (set abstraction, "
              "initial ChainedHashSet)\n");
  std::printf("%-34s %-16s %-16s %-16s\n", "workload", "Rtime", "Ralloc",
              "Renergy");
  compareRules("lookup-dominated (n=500)", Model, 500, 5000, 500);
  compareRules("churn-dominated (n=200)", Model, 4000, 50, 200);
  compareRules("balanced (n=300)", Model, 900, 900, 300);
  compareRules("tiny sets (n=12)", Model, 24, 60, 12);
  std::printf("\nEnergy model: E = 3.5 nJ/ns * time + 0.02 nJ/B * alloc "
              "(see EnergyModel.h)\n");
  return 0;
}
