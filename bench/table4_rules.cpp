//===- table4_rules.cpp - Reproduces Table 4 (selection rules) -----------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
//
// Prints the selection rules Rtime and Ralloc exactly as paper Table 4
// states them, from the live rule objects (so the table can never drift
// from the implementation).
//
//===----------------------------------------------------------------------===//

#include "core/SelectionRule.h"

#include <cstdio>

using namespace cswitch;

static void printRule(const SelectionRule &Rule) {
  std::printf("%-8s", Rule.Name.c_str());
  bool First = true;
  for (const Criterion &C : Rule.Criteria) {
    std::printf("%s%s cost %s %.1f", First ? "  " : ",  ",
                costDimensionName(C.Dimension),
                C.Threshold < 1.0 ? "<" : "<=", C.Threshold);
    First = false;
  }
  std::printf("\n");
}

int main() {
  std::printf("Table 4: Selection rules Rtime and Ralloc\n");
  std::printf("Rule     Improvement / Penalty criteria\n");
  printRule(SelectionRule::timeRule());
  printRule(SelectionRule::allocRule());
  return 0;
}
