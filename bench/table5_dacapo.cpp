//===- table5_dacapo.cpp - Reproduces Table 5 -----------------------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
//
// The real-application evaluation (paper §5.2, Table 5): for every
// DaCapo-substitute app, the execution time T and the peak collection
// memory M of the original run are compared against the full framework
// under Rtime and Ralloc, and against instance-level adaptivity only
// (InstanceAdap). Differences are quoted only when significant (Welch's
// t-test at 5%, standing in for the paper's Tukey HSD); positive
// percentages are improvements, as in the paper.
//
// Defaults: 2 discarded + 8 measured runs at scale 0.5; `--paper` runs
// the paper's 5 + 30 at scale 1.0.
//
// Warm-start mode (`--store <file.cswitchstore>`): the selection store
// at that path is loaded before the table runs (a missing file starts
// cold), every adaptive context warm-starts from the persisted
// decisions, and the merged store is written back at the end — a
// second invocation with the same path converges with fewer switches.
//
// Recording mode (`--record <trace.optrace>`): instead of the table,
// one FullAdap Rtime run per app executes with a TraceRecorder attached
// and the combined operation trace is written for the src/replay/
// pipeline (cswitch_replay replay/simulate/info). `--apps a,b` filters
// the app set in both modes; `--sample N` traces every Nth instance.
//
// Observability mode (`--serve-metrics <port>`, 0 = ephemeral): the
// pull endpoint (Switch::serveMetrics) comes up before the table and
// stays up for `--serve-hold <seconds>` (default 30) afterwards, so
// `curl /metrics` and `cswitch_top` can observe a live run; event
// logging is forced on so /trace.json carries the decision timeline.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"
#include "apps/Apps.h"
#include "core/Switch.h"
#include "replay/TraceRecorder.h"
#include "support/EventLog.h"
#include "support/MetricsExport.h"
#include "support/Statistics.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

using namespace cswitch;
using namespace cswitch::bench;

namespace {

struct RunSeries {
  std::vector<double> Seconds;
  std::vector<double> PeakMB;
  uint64_t Instances = 0;
  size_t Sites = 0;
  /// Engine-stats interval of the last measured run — the framework's
  /// own account of the monitoring work (AppResult::Stats).
  EngineStats Stats;
};

RunSeries runSeries(AppKind App, const AppRunConfig &Base, size_t Warmup,
                    size_t Measured) {
  RunSeries Series;
  for (size_t I = 0; I != Warmup + Measured; ++I) {
    AppRunConfig RC = Base;
    AppResult R = runApp(App, RC);
    if (I < Warmup)
      continue;
    Series.Seconds.push_back(R.Seconds);
    Series.PeakMB.push_back(static_cast<double>(R.PeakLiveBytes) / 1e3);
    Series.Instances = R.InstancesCreated;
    Series.Sites = R.TargetSites;
    Series.Stats = R.Stats;
  }
  return Series;
}

/// Formats a significant relative improvement as the paper does
/// (positive = better); "--" when not significant.
std::string gain(const std::vector<double> &Original,
                 const std::vector<double> &Modified) {
  ComparisonResult Cmp = compareMeans(Original, Modified);
  if (!Cmp.Significant)
    return "   --";
  char Buf[16];
  std::snprintf(Buf, sizeof(Buf), "%+4.0f%%", -Cmp.RelativeChange * 100.0);
  return Buf;
}

/// Parses the `--apps a,b,c` filter; all apps when absent or empty.
std::vector<AppKind> selectedApps(const char *Filter) {
  std::vector<AppKind> Apps;
  if (!Filter[0]) {
    Apps.assign(AllAppKinds.begin(), AllAppKinds.end());
    return Apps;
  }
  std::string Spec = Filter;
  size_t Pos = 0;
  while (Pos <= Spec.size()) {
    size_t Comma = Spec.find(',', Pos);
    std::string Name = Spec.substr(
        Pos, Comma == std::string::npos ? std::string::npos : Comma - Pos);
    for (AppKind App : AllAppKinds)
      if (Name == appKindName(App))
        Apps.push_back(App);
    if (Comma == std::string::npos)
      break;
    Pos = Comma + 1;
  }
  return Apps;
}

/// `--record` mode: one FullAdap Rtime run per app with a recorder
/// attached; writes the combined operation trace.
int recordApps(const std::vector<AppKind> &Apps, AppRunConfig Base,
               const char *Path, uint64_t SampleEvery) {
  TraceRecorder Recorder(
      TraceRecorderOptions{}.capacity(1 << 22).sampleEvery(SampleEvery));
  Base.Config = AppConfig::FullAdap;
  Base.Rule = SelectionRule::timeRule();
  Base.CtxOptions.Recorder = &Recorder;
  for (AppKind App : Apps) {
    AppResult R = runApp(App, Base);
    std::printf("[recorded %s: %.3f s, %llu instances at %zu sites]\n",
                appKindName(App), R.Seconds,
                (unsigned long long)R.InstancesCreated, R.TargetSites);
  }
  OpTrace Trace = Recorder.trace();
  if (!writeTraceToFile(Path, Trace)) {
    std::fprintf(stderr, "error: cannot write trace %s\n", Path);
    return 1;
  }
  std::printf("[wrote %s: %zu sites, %zu ops, %llu dropped, %llu/%llu "
              "instances sampled]\n",
              Path, Trace.Sites.size(), Trace.Ops.size(),
              (unsigned long long)Trace.OpsDropped,
              (unsigned long long)Trace.InstancesSampled,
              (unsigned long long)(Trace.InstancesSampled +
                                   Trace.InstancesSkipped));
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Paper = hasFlag(Argc, Argv, "--paper");
  const char *TelemetryPath = stringOption(Argc, Argv, "--telemetry", "");
  const char *StorePath = stringOption(Argc, Argv, "--store", "");
  size_t Warmup = Paper ? 5 : 2;
  size_t Measured = Paper ? 30 : 10;
  double Scale = Paper ? 1.0 : 0.5;

  AppRunConfig Base;
  Base.Model = loadModel();
  Base.Seed = 17;
  Base.Scale = Scale;
  Base.CtxOptions.WindowSize = 100;
  Base.CtxOptions.FinishedRatio = 0.6;
  Base.CtxOptions.LogEvents = false;

  long ServePort = intOption(Argc, Argv, "--serve-metrics", -1);
  if (ServePort >= 0) {
    // --serve-store additionally exposes GET/POST /store on the same
    // endpoint so fleet peers (tools/cswitch_fleet, DESIGN.md §12) can
    // pull and merge this run's selection knowledge.
    if (hasFlag(Argc, Argv, "--serve-store")) {
      SwitchConfig Config;
      Config.Fleet.serveStore();
      Switch::configure(Config);
    }
    uint16_t Bound = Switch::serveMetrics(static_cast<uint16_t>(ServePort));
    if (!Bound) {
      std::fprintf(stderr, "error: cannot bind metrics port %ld\n",
                   ServePort);
      return 1;
    }
    std::printf("[serving metrics on http://127.0.0.1:%u]\n", Bound);
    std::fflush(stdout);
    // The decision-timeline export (/trace.json) draws on the event
    // ring, so a served run logs events even though the plain table
    // run keeps them off.
    Base.CtxOptions.LogEvents = true;
  }

  if (StorePath[0]) {
    if (Switch::loadStore(StorePath))
      std::printf("[selection store %s loaded; contexts warm-start]\n",
                  StorePath);
    else
      std::fprintf(stderr,
                   "[selection store %s unreadable; starting cold]\n",
                   StorePath);
    Base.CtxOptions.WarmStart = true;
  }

  std::vector<AppKind> Apps =
      selectedApps(stringOption(Argc, Argv, "--apps", ""));
  if (Apps.empty()) {
    std::fprintf(stderr, "error: --apps matched no applications\n");
    return 2;
  }
  const char *RecordPath = stringOption(Argc, Argv, "--record", "");
  if (RecordPath[0])
    return recordApps(
        Apps, Base, RecordPath,
        static_cast<uint64_t>(intOption(Argc, Argv, "--sample", 1)));

  std::printf("\nTable 5: results on the DaCapo-substitute apps "
              "(%zu+%zu runs, scale %.2f)\n",
              Warmup, Measured, Scale);
  std::printf("%-9s %6s | %8s %8s | %8s %6s %6s | %8s %6s %6s | %8s %6s "
              "%6s\n",
              "bench", "#sites", "T(s)", "M(KB)", "T1(s)", "dT1", "dM1",
              "T2(s)", "dT2", "dM2", "T3(s)", "dT3", "dM3");
  std::printf("%-9s %6s | %17s | %22s | %22s | %22s\n", "", "",
              "original", "FullAdap Rtime", "FullAdap Ralloc",
              "InstanceAdap");

  EngineStats Monitoring;
  TelemetrySnapshot Export;
  for (AppKind App : Apps) {
    AppRunConfig Original = Base;
    Original.Config = AppConfig::Original;
    RunSeries O = runSeries(App, Original, Warmup, Measured);

    AppRunConfig FullTime = Base;
    FullTime.Config = AppConfig::FullAdap;
    FullTime.Rule = SelectionRule::timeRule();
    RunSeries T1 = runSeries(App, FullTime, Warmup, Measured);

    AppRunConfig FullAlloc = Base;
    FullAlloc.Config = AppConfig::FullAdap;
    FullAlloc.Rule = SelectionRule::allocRule();
    RunSeries T2 = runSeries(App, FullAlloc, Warmup, Measured);

    AppRunConfig Instance = Base;
    Instance.Config = AppConfig::InstanceAdap;
    RunSeries T3 = runSeries(App, Instance, Warmup, Measured);

    std::printf(
        "%-9s %6zu | %8.3f %8.1f | %8.3f %6s %6s | %8.3f %6s %6s | "
        "%8.3f %6s %6s\n",
        appKindName(App), O.Sites, summarize(O.Seconds).Mean,
        summarize(O.PeakMB).Mean, summarize(T1.Seconds).Mean,
        gain(O.Seconds, T1.Seconds).c_str(),
        gain(O.PeakMB, T1.PeakMB).c_str(), summarize(T2.Seconds).Mean,
        gain(O.Seconds, T2.Seconds).c_str(),
        gain(O.PeakMB, T2.PeakMB).c_str(), summarize(T3.Seconds).Mean,
        gain(O.Seconds, T3.Seconds).c_str(),
        gain(O.PeakMB, T3.PeakMB).c_str());

    Monitoring += T1.Stats;

    // One telemetry row per app: the FullAdap Rtime interval of the
    // last measured run, aggregated over that app's contexts (the
    // contexts themselves die with the harness, so per-site rows are
    // not available after the fact).
    ContextSnapshot Row;
    Row.Name = appKindName(App);
    Row.Abstraction = "app";
    Row.Variant = "FullAdap Rtime";
    Row.Stats.InstancesCreated = T1.Stats.InstancesCreated;
    Row.Stats.InstancesMonitored = T1.Stats.InstancesMonitored;
    Row.Stats.ProfilesPublished = T1.Stats.ProfilesPublished;
    Row.Stats.ProfilesDiscarded = T1.Stats.ProfilesDiscarded;
    Row.Stats.Evaluations = T1.Stats.Evaluations;
    Row.Stats.Switches = T1.Stats.Switches;
    Export.Engine += T1.Stats;
    // Stats is an interval, so its context gauge diffs to zero; the
    // app's real site count is the meaningful figure here.
    Export.Engine.Contexts += T1.Sites;
    Export.Contexts.push_back(std::move(Row));
  }
  std::printf("\n(dT/dM: significant improvement vs original run; '--' = "
              "no significant difference)\n");
  std::printf("\nFullAdap Rtime monitoring account (last measured run per "
              "app, engine-stats intervals):\n"
              "  sites %llu, instances created %llu / monitored %llu, "
              "profiles published %llu / discarded %llu,\n"
              "  evaluations %llu, switches %llu\n",
              (unsigned long long)Export.Engine.Contexts,
              (unsigned long long)Monitoring.InstancesCreated,
              (unsigned long long)Monitoring.InstancesMonitored,
              (unsigned long long)Monitoring.ProfilesPublished,
              (unsigned long long)Monitoring.ProfilesDiscarded,
              (unsigned long long)Monitoring.Evaluations,
              (unsigned long long)Monitoring.Switches);

  if (StorePath[0]) {
    if (Switch::persistStore())
      std::printf("[selection store persisted to %s]\n", StorePath);
    else
      std::fprintf(stderr, "[failed to persist selection store to %s]\n",
                   StorePath);
    if (std::shared_ptr<SelectionStore> St = Switch::store())
      Export.Store = St->stats();
  }

  if (TelemetryPath[0]) {
    Export.Events.Recorded = EventLog::global().totalRecorded();
    Export.Events.Dropped = EventLog::global().droppedCount();
    if (writeTextFile(TelemetryPath, toJson(Export)))
      std::printf("[wrote telemetry snapshot to %s]\n", TelemetryPath);
    else
      std::fprintf(stderr, "[failed to write %s]\n", TelemetryPath);
  }

  if (ServePort >= 0) {
    long Hold = std::max(intOption(Argc, Argv, "--serve-hold", 30), 0L);
    std::printf("[metrics endpoint stays up for %ld s]\n", Hold);
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::seconds(Hold));
    Switch::stopMetricsServer();
  }
  return 0;
}
