//===- fig7_overhead.cpp - Reproduces Fig. 7 ------------------------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
//
// The cost of analyzing the collection metrics as a function of the
// monitored window size (paper §5.3, Fig. 7: ~250-285 ns per analyzed
// collection, flat from 100 to 100k). The harness fills a context's
// window with finished profiles and times evaluate(), reporting
// nanoseconds per monitored collection.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"
#include "core/Switch.h"
#include "support/Timer.h"

#include <cstdio>

using namespace cswitch;
using namespace cswitch::bench;

namespace {

double analysisNanosPerCollection(
    size_t WindowSize, const std::shared_ptr<const PerformanceModel> &M) {
  ContextOptions Options;
  Options.WindowSize = WindowSize;
  Options.FinishedRatio = 0.6;
  Options.LogEvents = false;
  ListContext<int64_t> Ctx("fig7", ListVariant::ArrayList, M,
                           SelectionRule::impossibleRule(), Options);
  // Fill the window with realistic finished profiles.
  for (size_t I = 0; I != WindowSize; ++I) {
    List<int64_t> L = Ctx.createList();
    for (int64_t V = 0; V != 32; ++V)
      L.add(V);
    for (int64_t V = 0; V != 16; ++V)
      (void)L.contains(V);
  }
  Timer Clock;
  bool Switched = Ctx.evaluate();
  double Nanos = static_cast<double>(Clock.elapsedNanos());
  (void)Switched;
  return Nanos / static_cast<double>(WindowSize);
}

} // namespace

int main() {
  std::shared_ptr<const PerformanceModel> Model = loadModel();
  std::printf("\nFigure 7: analysis overhead per monitored collection vs "
              "window size\n");
  std::printf("%10s  %18s\n", "window", "ns per collection");
  for (size_t Window : {100u, 300u, 1000u, 3000u, 10000u, 30000u,
                        100000u}) {
    // Median-of-5 to tame timer noise on the small windows.
    std::vector<double> Reps;
    for (int R = 0; R != 5; ++R)
      Reps.push_back(analysisNanosPerCollection(Window, Model));
    std::sort(Reps.begin(), Reps.end());
    std::printf("%10zu  %18.1f\n", Window, Reps[2]);
  }
  std::printf("\n(paper Fig. 7: 250-285 ns per collection, roughly flat; "
              "absolute values are machine- and layout-specific)\n");
  return 0;
}
