//===- fig7_overhead.cpp - Reproduces Fig. 7 + contended monitoring cost --===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
//
// Part 1 — the cost of analyzing the collection metrics as a function of
// the monitored window size (paper §5.3, Fig. 7: ~250-285 ns per analyzed
// collection, flat from 100 to 100k). The harness fills a context's
// window with finished profiles and times evaluate(), reporting
// nanoseconds per monitored collection.
//
// Part 2 — beyond the paper: the per-instance cost of the monitoring
// fast path itself (slot acquisition at creation + profile publication
// at destruction) on one contended context across the thread ladder
// {1,2,4,8,16,32,64} clamped to this machine (BenchSupport's
// threadSweep; --max-threads overrides the ceiling), with rounds
// rotating continuously so slot claims never stop. This is the
// workload the lock-free window rework and the NUMA striping
// (DESIGN.md §10) target. --check-scaling turns the sweep into a smoke
// gate: exit nonzero when the max-thread monitoring overhead exceeds
// 2x the 1-thread value.
//
// Part 3 — the cost of the telemetry ring itself: contended
// EventLog::record() (interned ids, no strings) across the same thread
// ladder racing one drainer, in nanoseconds per record() call. This is
// the price a context pays per event when LogEvents is on.
//
// Results are emitted as machine-readable JSON (default:
// BENCH_overhead.json + BENCH_telemetry.json; --json <path> /
// --telemetry-json <path> override, --no-json disables both) to seed
// the repo's perf trajectory.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"
#include "core/Switch.h"
#include "support/EventLog.h"
#include "support/Timer.h"
#include "support/Topology.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

using namespace cswitch;
using namespace cswitch::bench;

namespace {

double analysisNanosPerCollection(
    size_t WindowSize, const std::shared_ptr<const PerformanceModel> &M) {
  ContextOptions Options;
  Options.WindowSize = WindowSize;
  Options.FinishedRatio = 0.6;
  Options.LogEvents = false;
  ListContext<int64_t> Ctx("fig7", ListVariant::ArrayList, M,
                           SelectionRule::impossibleRule(), Options);
  // Fill the window with realistic finished profiles.
  for (size_t I = 0; I != WindowSize; ++I) {
    List<int64_t> L = Ctx.createList();
    for (int64_t V = 0; V != 32; ++V)
      L.add(V);
    for (int64_t V = 0; V != 16; ++V)
      (void)L.contains(V);
  }
  Timer Clock;
  bool Switched = Ctx.evaluate();
  double Nanos = static_cast<double>(Clock.elapsedNanos());
  (void)Switched;
  return Nanos / static_cast<double>(WindowSize);
}

struct ContendedResult {
  size_t Threads = 0;
  uint64_t Instances = 0;
  uint64_t Monitored = 0;
  uint64_t Rounds = 0;
  double NanosPerInstance = 0.0;
  double BaselineNanos = 0.0; // same cycle, no context/monitoring at all
};

/// The same create/add/contains/destroy cycle against a bare collection,
/// with no allocation context involved: the floor that isolates the
/// monitoring overhead (ns/instance minus this) from plain list work.
double unmonitoredCycleCost(size_t Threads, size_t PerThread) {
  std::atomic<size_t> Ready{0};
  std::atomic<bool> Go{false};
  std::vector<std::thread> Workers;
  for (size_t T = 0; T != Threads; ++T) {
    Workers.emplace_back([&Ready, &Go, PerThread] {
      Ready.fetch_add(1);
      while (!Go.load(std::memory_order_acquire)) {
      }
      for (size_t I = 0; I != PerThread; ++I) {
        List<int64_t> L(makeListImpl<int64_t>(ListVariant::ArrayList));
        L.add(static_cast<int64_t>(I));
        (void)L.contains(1);
      }
    });
  }
  while (Ready.load() != Threads) {
  }
  Timer Clock;
  Go.store(true, std::memory_order_release);
  for (std::thread &W : Workers)
    W.join();
  double Nanos = static_cast<double>(Clock.elapsedNanos());
  return Nanos / static_cast<double>(Threads * PerThread);
}

/// Hammers one shared context with monitored create/destroy cycles from
/// \p Threads threads while an evaluator keeps rotating rounds, so slot
/// claims and profile publications never quiesce. Returns wall
/// nanoseconds per create+destroy cycle.
ContendedResult contendedMonitoringCost(
    size_t Threads, size_t PerThread,
    const std::shared_ptr<const PerformanceModel> &M) {
  ContextOptions Options;
  Options.WindowSize = 64;
  Options.FinishedRatio = 0.5;
  Options.LogEvents = false;
  ListContext<int64_t> Ctx("fig7:contended", ListVariant::ArrayList, M,
                           SelectionRule::impossibleRule(), Options);

  std::atomic<bool> Stop{false};
  std::atomic<size_t> Ready{0};
  std::atomic<bool> Go{false};
  std::vector<std::thread> Workers;
  for (size_t T = 0; T != Threads; ++T) {
    Workers.emplace_back([&Ctx, &Ready, &Go, PerThread] {
      Ready.fetch_add(1);
      while (!Go.load(std::memory_order_acquire)) {
      }
      for (size_t I = 0; I != PerThread; ++I) {
        List<int64_t> L = Ctx.createList();
        L.add(static_cast<int64_t>(I));
        (void)L.contains(1);
        // Workers rotate rounds too: a dedicated evaluator alone can be
        // starved on few cores, leaving the window permanently full.
        if (I % 256 == 255)
          Ctx.evaluate();
      }
    });
  }
  std::thread Evaluator([&Ctx, &Stop] {
    while (!Stop.load(std::memory_order_relaxed)) {
      Ctx.evaluate();
      std::this_thread::yield();
    }
  });
  while (Ready.load() != Threads) {
  }
  Timer Clock;
  Go.store(true, std::memory_order_release);
  for (std::thread &W : Workers)
    W.join();
  double Nanos = static_cast<double>(Clock.elapsedNanos());
  Stop.store(true, std::memory_order_relaxed);
  Evaluator.join();

  ContendedResult R;
  R.Threads = Threads;
  R.Instances = Ctx.instancesCreated();
  R.Monitored = Ctx.instancesMonitored();
  R.Rounds = Ctx.evaluationCount();
  R.NanosPerInstance = Nanos / static_cast<double>(R.Instances);
  return R;
}

struct RecordResult {
  size_t Threads = 0;
  uint64_t Recorded = 0;
  uint64_t Dropped = 0;
  uint64_t Drained = 0;
  double NanosPerRecord = 0.0;
};

/// Hammers a private EventLog with record() calls (pre-interned ids —
/// the evaluation-path shape) from \p Threads threads while one drainer
/// keeps consuming, and returns wall nanoseconds per record() call.
RecordResult contendedRecordCost(size_t Threads, size_t PerThread) {
  EventLog Log(1 << 16);
  uint32_t Ctx = Log.intern("fig7:telemetry");
  uint32_t Detail = Log.intern("record-bench");

  std::atomic<bool> Stop{false};
  std::atomic<size_t> Ready{0};
  std::atomic<bool> Go{false};
  std::vector<std::thread> Workers;
  for (size_t T = 0; T != Threads; ++T) {
    Workers.emplace_back([&Log, &Ready, &Go, PerThread, Ctx, Detail] {
      Ready.fetch_add(1);
      while (!Go.load(std::memory_order_acquire)) {
      }
      for (size_t I = 0; I != PerThread; ++I)
        Log.record(EventKind::MonitoringRound, Ctx, Detail);
    });
  }
  std::atomic<uint64_t> Drained{0};
  std::thread Drainer([&Log, &Stop, &Drained] {
    while (!Stop.load(std::memory_order_relaxed)) {
      Drained.fetch_add(Log.drain().size(), std::memory_order_relaxed);
      std::this_thread::yield();
    }
  });
  while (Ready.load() != Threads) {
  }
  Timer Clock;
  Go.store(true, std::memory_order_release);
  for (std::thread &W : Workers)
    W.join();
  double Nanos = static_cast<double>(Clock.elapsedNanos());
  Stop.store(true, std::memory_order_relaxed);
  Drainer.join();

  RecordResult R;
  R.Threads = Threads;
  R.Recorded = Log.totalRecorded();
  R.Dropped = Log.droppedCount();
  R.Drained = Drained.load(std::memory_order_relaxed);
  R.NanosPerRecord = Nanos / static_cast<double>(Threads * PerThread);
  return R;
}

const char *jsonPath(int Argc, char **Argv) {
  if (hasFlag(Argc, Argv, "--no-json"))
    return nullptr;
  for (int I = 1; I + 1 < Argc; ++I)
    if (std::strcmp(Argv[I], "--json") == 0)
      return Argv[I + 1];
  return "BENCH_overhead.json";
}

const char *telemetryJsonPath(int Argc, char **Argv) {
  if (hasFlag(Argc, Argv, "--no-json"))
    return nullptr;
  for (int I = 1; I + 1 < Argc; ++I)
    if (std::strcmp(Argv[I], "--telemetry-json") == 0)
      return Argv[I + 1];
  return "BENCH_telemetry.json";
}

} // namespace

int main(int Argc, char **Argv) {
  std::shared_ptr<const PerformanceModel> Model = loadModel();

  std::printf("\nFigure 7: analysis overhead per monitored collection vs "
              "window size\n");
  std::printf("%10s  %18s\n", "window", "ns per collection");
  std::vector<std::pair<size_t, double>> AnalysisRows;
  for (size_t Window : {100u, 300u, 1000u, 3000u, 10000u, 30000u,
                        100000u}) {
    // Median-of-5 to tame timer noise on the small windows.
    std::vector<double> Reps;
    for (int R = 0; R != 5; ++R)
      Reps.push_back(analysisNanosPerCollection(Window, Model));
    std::sort(Reps.begin(), Reps.end());
    AnalysisRows.emplace_back(Window, Reps[2]);
    std::printf("%10zu  %18.1f\n", Window, Reps[2]);
  }
  std::printf("\n(paper Fig. 7: 250-285 ns per collection, roughly flat; "
              "absolute values are machine- and layout-specific)\n");

  size_t PerThread = static_cast<size_t>(
      std::max(intOption(Argc, Argv, "--instances", 200000), 8L));
  std::vector<size_t> Sweep = threadSweep(Argc, Argv);
  const Topology &Topo = Topology::system();
  std::printf("\nContended monitoring fast path: ns per monitored "
              "create+destroy cycle\n");
  std::printf("(topology: %u node%s, %u cpu%s%s)\n", Topo.nodeCount(),
              Topo.nodeCount() == 1 ? "" : "s", Topo.cpuCount(),
              Topo.cpuCount() == 1 ? "" : "s",
              Topo.synthetic() ? ", synthetic" : "");
  std::printf("%8s  %12s  %12s  %12s  %10s  %8s\n", "threads",
              "ns/instance", "baseline", "overhead", "monitored",
              "rounds");
  std::vector<ContendedResult> Contended;
  for (size_t Threads : Sweep) {
    // Median-of-9; scale the per-thread count down as threads go up so
    // total work stays comparable. Oversubscribed runs are noisy, so a
    // wide median beats averaging.
    size_t Per = std::max<size_t>(PerThread / Threads, 64);
    std::vector<ContendedResult> Reps;
    for (int R = 0; R != 9; ++R)
      Reps.push_back(contendedMonitoringCost(Threads, Per, Model));
    std::sort(Reps.begin(), Reps.end(),
              [](const ContendedResult &A, const ContendedResult &B) {
                return A.NanosPerInstance < B.NanosPerInstance;
              });
    ContendedResult Median = Reps[4];
    std::vector<double> Baselines;
    for (int R = 0; R != 9; ++R)
      Baselines.push_back(unmonitoredCycleCost(Threads, Per));
    std::sort(Baselines.begin(), Baselines.end());
    Median.BaselineNanos = Baselines[4];
    Contended.push_back(Median);
    std::printf("%8zu  %12.1f  %12.1f  %12.1f  %10llu  %8llu\n", Threads,
                Median.NanosPerInstance, Median.BaselineNanos,
                Median.NanosPerInstance - Median.BaselineNanos,
                static_cast<unsigned long long>(Median.Monitored),
                static_cast<unsigned long long>(Median.Rounds));
  }

  std::printf("\nTelemetry ring: contended EventLog::record() cost\n");
  std::printf("%8s  %12s  %12s  %12s\n", "threads", "ns/record",
              "recorded", "dropped");
  std::vector<RecordResult> Records;
  for (size_t Threads : Sweep) {
    std::vector<RecordResult> Reps;
    size_t Per = std::max<size_t>(PerThread / Threads, 64);
    for (int R = 0; R != 9; ++R)
      Reps.push_back(contendedRecordCost(Threads, Per));
    std::sort(Reps.begin(), Reps.end(),
              [](const RecordResult &A, const RecordResult &B) {
                return A.NanosPerRecord < B.NanosPerRecord;
              });
    RecordResult Median = Reps[4];
    Records.push_back(Median);
    std::printf("%8zu  %12.1f  %12llu  %12llu\n", Threads,
                Median.NanosPerRecord,
                static_cast<unsigned long long>(Median.Recorded),
                static_cast<unsigned long long>(Median.Dropped));
  }

  if (const char *Path = jsonPath(Argc, Argv)) {
    std::FILE *F = std::fopen(Path, "w");
    if (!F) {
      std::fprintf(stderr, "cannot write %s\n", Path);
      return 1;
    }
    std::fprintf(F, "{\n  \"bench\": \"fig7_overhead\",\n");
    std::fprintf(F,
                 "  \"topology\": {\"nodes\": %u, \"cpus\": %u, "
                 "\"synthetic\": %s, \"hardware_concurrency\": %u},\n",
                 Topo.nodeCount(), Topo.cpuCount(),
                 Topo.synthetic() ? "true" : "false",
                 std::thread::hardware_concurrency());
    std::fprintf(F, "  \"analysis_ns_per_collection\": [\n");
    for (size_t I = 0; I != AnalysisRows.size(); ++I)
      std::fprintf(F, "    {\"window\": %zu, \"ns\": %.1f}%s\n",
                   AnalysisRows[I].first, AnalysisRows[I].second,
                   I + 1 == AnalysisRows.size() ? "" : ",");
    std::fprintf(F, "  ],\n");
    std::fprintf(F, "  \"contended_monitoring\": [\n");
    for (size_t I = 0; I != Contended.size(); ++I) {
      const ContendedResult &R = Contended[I];
      std::fprintf(F,
                   "    {\"threads\": %zu, \"ns_per_instance\": %.1f, "
                   "\"baseline_ns\": %.1f, "
                   "\"monitoring_overhead_ns\": %.1f, "
                   "\"instances\": %llu, \"monitored\": %llu, "
                   "\"rounds\": %llu}%s\n",
                   R.Threads, R.NanosPerInstance, R.BaselineNanos,
                   R.NanosPerInstance - R.BaselineNanos,
                   static_cast<unsigned long long>(R.Instances),
                   static_cast<unsigned long long>(R.Monitored),
                   static_cast<unsigned long long>(R.Rounds),
                   I + 1 == Contended.size() ? "" : ",");
    }
    std::fprintf(F, "  ]\n}\n");
    std::fclose(F);
    std::printf("\n[wrote %s]\n", Path);
  }

  if (const char *Path = telemetryJsonPath(Argc, Argv)) {
    std::FILE *F = std::fopen(Path, "w");
    if (!F) {
      std::fprintf(stderr, "cannot write %s\n", Path);
      return 1;
    }
    std::fprintf(F, "{\n  \"bench\": \"telemetry_record\",\n");
    std::fprintf(F, "  \"record_ns_per_op\": [\n");
    for (size_t I = 0; I != Records.size(); ++I) {
      const RecordResult &R = Records[I];
      std::fprintf(F,
                   "    {\"threads\": %zu, \"ns\": %.1f, "
                   "\"recorded\": %llu, \"dropped\": %llu, "
                   "\"drained\": %llu}%s\n",
                   R.Threads, R.NanosPerRecord,
                   static_cast<unsigned long long>(R.Recorded),
                   static_cast<unsigned long long>(R.Dropped),
                   static_cast<unsigned long long>(R.Drained),
                   I + 1 == Records.size() ? "" : ",");
    }
    std::fprintf(F, "  ]\n}\n");
    std::fclose(F);
    std::printf("[wrote %s]\n", Path);
  }

  if (hasFlag(Argc, Argv, "--check-scaling")) {
    // CI smoke gate: monitoring overhead must stay roughly flat across
    // the sweep — the max-thread overhead may not exceed 2x the
    // 1-thread overhead. A few-ns floor keeps the ratio meaningful when
    // the absolute overhead is down in timer-noise territory.
    const ContendedResult &First = Contended.front();
    const ContendedResult &Last = Contended.back();
    double OverheadAt1 =
        std::max(First.NanosPerInstance - First.BaselineNanos, 5.0);
    double OverheadAtMax = Last.NanosPerInstance - Last.BaselineNanos;
    std::printf("\n[check-scaling] overhead %zu threads: %.1f ns vs "
                "1 thread: %.1f ns (limit %.1f ns)\n",
                Last.Threads, OverheadAtMax, OverheadAt1,
                2.0 * OverheadAt1);
    if (OverheadAtMax > 2.0 * OverheadAt1) {
      std::fprintf(stderr,
                   "FAIL: contended monitoring overhead at %zu threads "
                   "(%.1f ns) exceeds 2x the 1-thread overhead "
                   "(%.1f ns)\n",
                   Last.Threads, OverheadAtMax, OverheadAt1);
      return 1;
    }
  }
  return 0;
}
