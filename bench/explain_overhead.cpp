//===- explain_overhead.cpp - Decision provenance ledger cost gate --------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
//
// The cost of the decision provenance ledger (DESIGN.md §14), measured
// where it could hurt: the contended monitoring fast path of fig7 (slot
// claims + profile publication + periodic evaluation) run twice — once
// with the ledger disabled (the shipping default) and once with
// CSWITCH_EXPLAIN-style capture on. Capture happens on the evaluation
// path only, so the per-instance record cost must be indistinguishable;
// the gate allows 2%. Workers time their op loop and their evaluate()
// calls separately — the evaluation path is where capture legitimately
// spends (~1 us/round for the per-candidate breakdown pass), so it is
// reported as its own per-round column instead of being smeared into
// the fast-path number.
//
// --check turns the run into a CI gate asserting the ledger's three
// contractual guarantees:
//
//   1. Overhead: the contended record-path cost with capture on stays
//      within 2% of the capture-off cost (plus a 1 ns noise floor).
//   2. Disabled path allocates nothing: after the capture-off phase the
//      registry's allocation counter has not moved.
//   3. Explainability: a fig6-style multi-phase workload (dominant
//      operation changes per phase) produces at least one switched
//      decision whose record carries per-dimension cost breakdowns,
//      criterion thresholds and a positive margin — and rendering the
//      document twice with no intervening decisions is byte-identical.
//
// Results are emitted as machine-readable JSON (default:
// BENCH_explain_overhead.json; --json <path> overrides, --no-json
// disables) to seed the repo's perf trajectory.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"
#include "core/Switch.h"
#include "obs/Provenance.h"
#include "support/Random.h"
#include "support/Timer.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <functional>
#include <thread>
#include <vector>

using namespace cswitch;
using namespace cswitch::bench;

namespace {

/// One contended run's two costs, separated at the path boundary: the
/// per-instance record-path cost (the hot path the ledger must not
/// move) and the per-round evaluation cost (the slow path where
/// capture legitimately spends its time).
struct ContendedCost {
  double RecordNanosPerInstance = 0.0;
  double EvalNanosPerRound = 0.0;
};

/// fig7's contended monitoring workload: worker threads hammer one
/// shared context with monitored create/add/contains/destroy cycles,
/// rotating evaluation rounds as they go. Each worker times its own op
/// loop and its own evaluate() calls separately — capture runs only on
/// the evaluation path, so the record-path number is reported with the
/// evaluation segments excluded (they get their own column instead of
/// silently inflating the fast-path cost).
ContendedCost contendedRecordCost(
    size_t Threads, size_t PerThread,
    const std::shared_ptr<const PerformanceModel> &M) {
  ContextOptions Options;
  Options.WindowSize = 64;
  Options.FinishedRatio = 0.5;
  Options.LogEvents = false;
  ListContext<int64_t> Ctx("explain:contended", ListVariant::ArrayList, M,
                           SelectionRule::impossibleRule(), Options);

  std::atomic<size_t> Ready{0};
  std::atomic<bool> Go{false};
  std::vector<uint64_t> OpNanos(Threads, 0), EvalNanos(Threads, 0),
      EvalRounds(Threads, 0);
  std::vector<std::thread> Workers;
  for (size_t T = 0; T != Threads; ++T) {
    Workers.emplace_back([&, T] {
      Ready.fetch_add(1);
      while (!Go.load(std::memory_order_acquire)) {
      }
      Timer ThreadClock;
      uint64_t Evals = 0, Rounds = 0;
      for (size_t I = 0; I != PerThread; ++I) {
        List<int64_t> L = Ctx.createList();
        L.add(static_cast<int64_t>(I));
        (void)L.contains(1);
        if (I % 256 == 255) {
          Timer EvalClock;
          Ctx.evaluate();
          Evals += EvalClock.elapsedNanos();
          ++Rounds;
        }
      }
      OpNanos[T] = ThreadClock.elapsedNanos() - Evals;
      EvalNanos[T] = Evals;
      EvalRounds[T] = Rounds;
    });
  }
  while (Ready.load() != Threads) {
  }
  Go.store(true, std::memory_order_release);
  for (std::thread &W : Workers)
    W.join();

  ContendedCost Cost;
  // The slowest worker's op-loop time is the contended record cost.
  uint64_t WorstOp = 0, TotalEval = 0, TotalRounds = 0;
  for (size_t T = 0; T != Threads; ++T) {
    WorstOp = std::max(WorstOp, OpNanos[T]);
    TotalEval += EvalNanos[T];
    TotalRounds += EvalRounds[T];
  }
  Cost.RecordNanosPerInstance =
      static_cast<double>(WorstOp) / static_cast<double>(PerThread);
  if (TotalRounds != 0)
    Cost.EvalNanosPerRound =
        static_cast<double>(TotalEval) / static_cast<double>(TotalRounds);
  return Cost;
}

/// Median-of-9 contended cost with capture set to \p Enabled (medians
/// taken per component).
ContendedCost medianContendedCost(
    bool Enabled, size_t Threads, size_t PerThread,
    const std::shared_ptr<const PerformanceModel> &M) {
  obs::ProvenanceRegistry::setEnabled(Enabled);
  std::vector<double> RecordReps, EvalReps;
  for (int R = 0; R != 9; ++R) {
    ContendedCost C = contendedRecordCost(Threads, PerThread, M);
    RecordReps.push_back(C.RecordNanosPerInstance);
    EvalReps.push_back(C.EvalNanosPerRound);
  }
  std::sort(RecordReps.begin(), RecordReps.end());
  std::sort(EvalReps.begin(), EvalReps.end());
  return {RecordReps[4], EvalReps[4]};
}

enum class Phase { Contains, Iteration, IndexOp };

/// One fig6-style iteration against \p Ctx: populate, then run the
/// phase's dominant operation.
void runPhaseIteration(Phase P, ListContext<int64_t> &Ctx, size_t Instances,
                       size_t Size, size_t Ops) {
  SplitMix64 Rng(13);
  for (size_t I = 0; I != Instances; ++I) {
    List<int64_t> L = Ctx.createList();
    L.reserve(Size);
    for (size_t K = 0; K != Size; ++K)
      L.add(static_cast<int64_t>(K));
    switch (P) {
    case Phase::Contains: {
      uint64_t Hits = 0;
      for (size_t Op = 0; Op != Ops; ++Op)
        Hits += L.contains(static_cast<int64_t>(Rng.nextBelow(Size * 2)));
      (void)Hits;
      break;
    }
    case Phase::Iteration: {
      uint64_t Sum = 0;
      for (size_t Op = 0, E = std::max<size_t>(Ops / 10, 1); Op != E; ++Op)
        L.forEach([&Sum](const int64_t &V) {
          Sum += static_cast<uint64_t>(V);
        });
      (void)Sum;
      break;
    }
    case Phase::IndexOp: {
      uint64_t Sum = 0;
      for (size_t Op = 0; Op != Ops; ++Op)
        Sum += static_cast<uint64_t>(L.get(Rng.nextBelow(Size)));
      (void)Sum;
      break;
    }
    }
  }
}

/// Renders the current global explain document.
std::string renderExplain() {
  return obs::renderExplainJson(
      obs::makeExplainHeader(SwitchEngine::global().telemetry()),
      obs::ProvenanceRegistry::global().snapshotSites(),
      obs::ProvenanceRegistry::enabled());
}

const char *jsonPath(int Argc, char **Argv) {
  if (hasFlag(Argc, Argv, "--no-json"))
    return nullptr;
  for (int I = 1; I + 1 < Argc; ++I)
    if (std::strcmp(Argv[I], "--json") == 0)
      return Argv[I + 1];
  return "BENCH_explain_overhead.json";
}

} // namespace

int main(int Argc, char **Argv) {
  bool Check = hasFlag(Argc, Argv, "--check");
  std::shared_ptr<const PerformanceModel> Model = loadModel();

  size_t Threads = std::max<size_t>(
      std::min<size_t>(std::thread::hardware_concurrency() / 2, 8), 2);
  size_t PerThread = static_cast<size_t>(
      std::max(intOption(Argc, Argv, "--instances", 100000), 64L) /
      static_cast<long>(Threads));

  // Order matters for guarantee 2: the capture-off phase runs before
  // any capture-on work, so the allocation counter must still be at
  // zero when it completes.
  std::printf("\nDecision ledger overhead: contended monitoring fast path "
              "(%zu threads)\n",
              Threads);
  ContendedCost Off = medianContendedCost(false, Threads, PerThread, Model);
  uint64_t AllocationsAfterOff =
      obs::ProvenanceRegistry::global().allocationCount();
  ContendedCost On = medianContendedCost(true, Threads, PerThread, Model);
  double OffNanos = Off.RecordNanosPerInstance;
  double OnNanos = On.RecordNanosPerInstance;
  double DeltaPct = OffNanos > 0.0
                        ? (OnNanos - OffNanos) / OffNanos * 100.0
                        : 0.0;
  std::printf("%12s  %12s  %12s  %14s  %14s\n", "off ns/inst", "on ns/inst",
              "delta", "off ns/round", "on ns/round");
  std::printf("%12.1f  %12.1f  %11.2f%%  %14.0f  %14.0f\n", OffNanos, OnNanos,
              DeltaPct, Off.EvalNanosPerRound, On.EvalNanosPerRound);
  std::printf("allocations after capture-off phase: %llu\n",
              static_cast<unsigned long long>(AllocationsAfterOff));

  // Multi-phase explainability: the dominant operation changes per
  // phase, so the time rule switches variants and the ledger retains
  // the full story.
  obs::ProvenanceRegistry::setEnabled(true);
  {
    ContextOptions Options;
    Options.WindowSize = 100;
    Options.FinishedRatio = 0.6;
    Options.LogEvents = false;
    ListContext<int64_t> Ctx("explain:multi-phase", ListVariant::ArrayList,
                             Model, SelectionRule::timeRule(), Options);
    for (Phase P : {Phase::Contains, Phase::Iteration, Phase::IndexOp,
                    Phase::Contains}) {
      for (int I = 0; I != 3; ++I) {
        runPhaseIteration(P, Ctx, /*Instances=*/120, /*Size=*/500,
                          /*Ops=*/800);
        Ctx.evaluate();
      }
    }
    std::printf("\nmulti-phase transitions: %llu\n",
                static_cast<unsigned long long>(Ctx.switchCount()));
  }

  std::string First = renderExplain();
  std::string Second = renderExplain();
  bool ByteStable = First == Second;

  obs::ExplainDocument Doc;
  std::string ParseError;
  bool Parsed = obs::parseExplainDocument(First, Doc, &ParseError);
  size_t SwitchedRecords = 0, ExplainedSwitches = 0;
  for (const obs::SiteLedgerSnapshot &Site : Doc.Sites) {
    for (const obs::DecisionRecord &R : Site.Records) {
      if (R.Outcome != obs::DecisionOutcome::Switched)
        continue;
      ++SwitchedRecords;
      // A switched record must explain itself: criteria with
      // thresholds, per-dimension breakdowns for the chosen candidate,
      // and a positive margin (it beat every criterion by something).
      bool HasBreakdown =
          R.ChosenVariant >= 0 &&
          static_cast<uint8_t>(R.ChosenVariant) < R.NumCandidates &&
          R.Candidates[static_cast<size_t>(R.ChosenVariant)].Total[0] > 0.0;
      if (R.NumCriteria != 0 && HasBreakdown && R.Margin > 0.0)
        ++ExplainedSwitches;
    }
  }
  std::printf("explain document: %zu bytes, %zu sites, %zu switched "
              "records (%zu fully explained), byte-stable: %s\n",
              First.size(), Doc.Sites.size(), SwitchedRecords,
              ExplainedSwitches, ByteStable ? "yes" : "NO");

  if (const char *Path = jsonPath(Argc, Argv)) {
    std::FILE *F = std::fopen(Path, "w");
    if (!F) {
      std::fprintf(stderr, "cannot write %s\n", Path);
      return 1;
    }
    std::fprintf(F, "{\n  \"bench\": \"explain_overhead\",\n");
    std::fprintf(F, "  \"threads\": %zu,\n", Threads);
    std::fprintf(F, "  \"record_ns_off\": %.1f,\n", OffNanos);
    std::fprintf(F, "  \"record_ns_on\": %.1f,\n", OnNanos);
    std::fprintf(F, "  \"delta_pct\": %.2f,\n", DeltaPct);
    std::fprintf(F, "  \"eval_round_ns_off\": %.0f,\n", Off.EvalNanosPerRound);
    std::fprintf(F, "  \"eval_round_ns_on\": %.0f,\n", On.EvalNanosPerRound);
    std::fprintf(F, "  \"allocations_disabled\": %llu,\n",
                 static_cast<unsigned long long>(AllocationsAfterOff));
    std::fprintf(F, "  \"switched_records\": %zu,\n", SwitchedRecords);
    std::fprintf(F, "  \"explained_switches\": %zu,\n", ExplainedSwitches);
    std::fprintf(F, "  \"byte_stable\": %s\n", ByteStable ? "true" : "false");
    std::fprintf(F, "}\n");
    std::fclose(F);
    std::printf("[wrote %s]\n", Path);
  }

  if (!Check)
    return 0;

  int Failures = 0;
  // Guarantee 1: capture on the evaluation path must not move the
  // contended record-path cost. 2% plus a 1 ns floor (sub-ns medians
  // are timer-noise territory).
  if (OnNanos > OffNanos + std::max(0.02 * OffNanos, 1.0)) {
    std::fprintf(stderr,
                 "FAIL: capture-on record path %.1f ns exceeds 2%% over "
                 "capture-off %.1f ns\n",
                 OnNanos, OffNanos);
    ++Failures;
  }
  // Guarantee 2: the disabled ledger allocates nothing.
  if (AllocationsAfterOff != 0) {
    std::fprintf(stderr,
                 "FAIL: disabled ledger performed %llu allocations\n",
                 static_cast<unsigned long long>(AllocationsAfterOff));
    ++Failures;
  }
  // Guarantee 3: decisions are explained, and snapshots without
  // intervening decisions are byte-identical.
  if (!Parsed) {
    std::fprintf(stderr, "FAIL: explain document does not parse: %s\n",
                 ParseError.c_str());
    ++Failures;
  }
  if (SwitchedRecords == 0) {
    std::fprintf(stderr,
                 "FAIL: multi-phase workload recorded no switched "
                 "decisions\n");
    ++Failures;
  } else if (ExplainedSwitches != SwitchedRecords) {
    std::fprintf(stderr,
                 "FAIL: %zu of %zu switched records lack breakdowns, "
                 "criteria or a positive margin\n",
                 SwitchedRecords - ExplainedSwitches, SwitchedRecords);
    ++Failures;
  }
  if (!ByteStable) {
    std::fprintf(stderr,
                 "FAIL: consecutive explain snapshots differ without "
                 "intervening decisions\n");
    ++Failures;
  }
  if (Failures == 0)
    std::printf("[check] all explain-ledger guarantees hold\n");
  return Failures == 0 ? 0 : 1;
}
