//===- BenchSupport.h - Shared helpers of the bench harnesses ---*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the table/figure harnesses: loading the measured
/// model produced by `model_builder` (falling back to the built-in
/// default), and simple argument parsing.
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_BENCH_BENCHSUPPORT_H
#define CSWITCH_BENCH_BENCHSUPPORT_H

#include "model/CostModel.h"
#include "model/DefaultModel.h"
#include "model/ModelBuilder.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace cswitch {
namespace bench {

/// True if \p Model covers every variant of the current candidate pool
/// (stale model files from older builds miss newer variants).
inline bool modelCoversAllVariants(const PerformanceModel &Model) {
  for (ListVariant V : AllListVariants)
    if (!Model.hasVariant(VariantId::of(V)))
      return false;
  for (SetVariant V : AllSetVariants)
    if (!Model.hasVariant(VariantId::of(V)))
      return false;
  for (MapVariant V : AllMapVariants)
    if (!Model.hasVariant(VariantId::of(V)))
      return false;
  return true;
}

/// Loads the measured model produced by the model_builder tool,
/// searching (in order): the `CSWITCH_MODEL` environment variable,
/// `cswitch_model.txt` in the working directory, and the checked-in
/// `data/cswitch_model.txt`. When none is present and complete, builds
/// a quick measured model for this machine — the paper's position
/// (§4.1) is that hardware-specific calibration is a prerequisite of
/// correct selection — and caches it for the sibling harnesses (at the
/// env-var path when set, else `cswitch_model.txt`).
inline std::shared_ptr<const PerformanceModel> loadModel() {
  const char *EnvPath = std::getenv("CSWITCH_MODEL");
  // An explicit `CSWITCH_MODEL` that does not load is a configuration
  // error, not a fallback case: silently continuing to
  // `data/cswitch_model.txt` would benchmark a different model than the
  // one the user pinned. Fail loudly with the resolved path.
  if (EnvPath && EnvPath[0]) {
    auto Pinned = std::make_shared<PerformanceModel>();
    std::string LoadError;
    if (!Pinned->loadFromFile(EnvPath, &LoadError)) {
      char Resolved[PATH_MAX];
      const char *Shown =
          ::realpath(EnvPath, Resolved) ? Resolved : EnvPath;
      std::fprintf(stderr,
                   "error: CSWITCH_MODEL points at '%s' (resolved: %s) "
                   "but it cannot be loaded: %s\n",
                   EnvPath, Shown, LoadError.c_str());
      std::exit(2);
    }
  }
  const char *Candidates[] = {EnvPath ? EnvPath : "", "cswitch_model.txt",
                              "data/cswitch_model.txt"};
  for (const char *Path : Candidates) {
    if (!Path[0])
      continue;
    auto Model = std::make_shared<PerformanceModel>();
    if (!Model->loadFromFile(Path))
      continue;
    // Model files predating the concurrent tier (or written by a
    // sequential-only calibration) lack the mutex/sharded rows and the
    // contention dimension; backfill them from the analytical defaults
    // so stale caches keep working instead of forcing a recalibration.
    augmentConcurrentCoverage(*Model);
    if (modelCoversAllVariants(*Model)) {
      std::printf("[using measured model %s]\n", Path);
      ModelStats Provenance;
      Provenance.Source = Path;
      ModelRegistry::global().recordInstall(Provenance);
      return Model;
    }
  }
  std::printf("[calibrating a quick measured model for this machine; run "
              "model_builder for the full plan]\n");
  ModelBuilder Builder(ModelBuildOptions::quick());
  auto Measured = std::make_shared<PerformanceModel>(Builder.build());
  const char *CachePath =
      EnvPath && EnvPath[0] ? EnvPath : "cswitch_model.txt";
  if (Measured->saveToFile(CachePath))
    std::printf("[cached as %s]\n", CachePath);
  // Calibration measures the sequential tier only; graft the concurrent
  // rows (and contention polynomials) from the analytical defaults.
  augmentConcurrentCoverage(*Measured);
  ModelStats Provenance;
  Provenance.Source = CachePath;
  ModelRegistry::global().recordInstall(Provenance);
  return Measured;
}

/// True if the flag is present in argv.
inline bool hasFlag(int Argc, char **Argv, const char *Flag) {
  for (int I = 1; I != Argc; ++I)
    if (std::strcmp(Argv[I], Flag) == 0)
      return true;
  return false;
}

/// Parses `--name value` (integer); returns Default when absent.
inline long intOption(int Argc, char **Argv, const char *Name,
                      long Default) {
  for (int I = 1; I + 1 < Argc; ++I)
    if (std::strcmp(Argv[I], Name) == 0)
      return std::atol(Argv[I + 1]);
  return Default;
}

/// Parses `--name value` (string); returns Default when absent.
inline const char *stringOption(int Argc, char **Argv, const char *Name,
                                const char *Default) {
  for (int I = 1; I + 1 < Argc; ++I)
    if (std::strcmp(Argv[I], Name) == 0)
      return Argv[I + 1];
  return Default;
}

/// The contended-sweep thread ladder: {1, 2, 4, 8, 16, 32, 64} clamped
/// to this machine. The ceiling is hardware_concurrency — but never
/// below 8, so small CI boxes still exercise the oversubscribed 4/8
/// points the seed measured — and `--max-threads N` overrides it
/// outright. When the ceiling falls between ladder rungs it is appended
/// so the sweep always ends exactly at the ceiling.
inline std::vector<size_t> threadSweep(int Argc, char **Argv) {
  size_t Hardware = std::thread::hardware_concurrency();
  if (Hardware == 0)
    Hardware = 1;
  size_t Ceiling = std::max<size_t>(Hardware, 8);
  long Override = intOption(Argc, Argv, "--max-threads", 0);
  if (Override > 0)
    Ceiling = static_cast<size_t>(Override);
  std::vector<size_t> Sweep;
  for (size_t Threads : {1u, 2u, 4u, 8u, 16u, 32u, 64u})
    if (Threads <= Ceiling)
      Sweep.push_back(Threads);
  if (Sweep.empty() || Sweep.back() != Ceiling)
    Sweep.push_back(Ceiling);
  return Sweep;
}

} // namespace bench
} // namespace cswitch

#endif // CSWITCH_BENCH_BENCHSUPPORT_H
