//===- fleet_convergence.cpp - Cold vs fleet-warm-start convergence -------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
//
// Quantifies what the fleet calibration service (src/fleet/, DESIGN.md
// §12) buys a brand-new replica: instead of paying the full observation
// ramp alone, it pulls the fleet's aggregated selection store over HTTP
// and warm-starts from decisions its peers already converged on.
//
// Per app, entirely through the real network path:
//  1. Two donor replicas run cold (distinct seeds) and persist their
//     stores — the fleet's existing knowledge.
//  2. An aggregator replica serves /store on an ephemeral loopback
//     port; both donor documents are POSTed at it (flock-merge with
//     decay) and the merged document is pulled back — exactly what
//     `cswitch_fleet aggregate` does.
//  3. The measured replica runs once against an empty store (cold
//     baseline) and once warm-started from the pulled fleet document,
//     counting pre-convergence window evaluations from the event log.
//
// The SessionServerSim concurrent scenario rides the same flow with its
// contention-selected contexts. Acceptance (ISSUE 8): the fleet-warmed
// replica converges in strictly fewer evaluation rounds than cold on at
// least 3 of the 5 DaCapo-substitute apps.
//
// Emits BENCH_fleet.json (schema cswitch-fleet-v1); `--check` exits
// non-zero when the acceptance bar is missed.
//
// Usage: fleet_convergence [--apps a,b] [--scale S] [--json <path>]
//                          [--check]
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"
#include "apps/Apps.h"
#include "apps/SessionServer.h"
#include "core/Switch.h"
#include "fleet/FleetSync.h"
#include "store/StoreFormat.h"
#include "support/EventLog.h"
#include "support/MetricsExport.h"
#include "support/Telemetry.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

using namespace cswitch;
using namespace cswitch::bench;

namespace {

/// Pre-convergence work of one run, reconstructed from the event log
/// (same accounting as warmstart_convergence: evaluations before a
/// context's last transition are "searching" work).
struct ConvergenceAccount {
  uint64_t PreconvEvaluations = 0;
  uint64_t Transitions = 0;
  uint64_t WarmStarts = 0;
};

ConvergenceAccount accountFor(const std::vector<Event> &Events) {
  struct PerContext {
    uint64_t Evaluations = 0;
    uint64_t EvalsAtLastTransition = 0;
  };
  std::map<std::string, PerContext> Contexts;
  ConvergenceAccount Account;
  for (const Event &E : Events) {
    if (E.Kind == EventKind::Evaluation) {
      ++Contexts[E.Context].Evaluations;
    } else if (E.Kind == EventKind::Transition) {
      PerContext &C = Contexts[E.Context];
      C.EvalsAtLastTransition = C.Evaluations;
      ++Account.Transitions;
    } else if (E.Kind == EventKind::WarmStart) {
      ++Account.WarmStarts;
    }
  }
  for (const auto &[Name, C] : Contexts)
    Account.PreconvEvaluations += C.EvalsAtLastTransition;
  return Account;
}

void wipe(const std::string &Path) {
  std::remove(Path.c_str());
  std::remove((Path + ".lock").c_str());
}

/// One donor replica: runs \p App cold against its own fresh store and
/// leaves the persisted document at \p StorePath.
void donorRun(AppKind App, const AppRunConfig &Base, uint64_t Seed,
              const std::string &StorePath) {
  wipe(StorePath);
  AppRunConfig Config = Base;
  Config.Seed = Seed;
  Switch::loadStore(StorePath);
  runApp(App, Config);
  Switch::persistStore();
  Switch::closeStore();
}

/// Aggregates donor documents into one fleet document over the real
/// HTTP path: an aggregator replica serves /store, every donor file is
/// pushed at it (merge with decay on the peer), the merged result is
/// pulled back. Returns false when any network leg failed.
bool aggregateOverHttp(const std::vector<std::string> &DonorPaths,
                       const std::string &AggregatorPath,
                       std::vector<StoreSite> &Merged) {
  wipe(AggregatorPath);
  Switch::configure(
      SwitchConfig{EngineOptions{}, ContextOptions{},
                   FleetOptions{}.serveStore(), std::string()});
  Switch::loadStore(AggregatorPath);
  uint16_t Port = Switch::serveMetrics(0);
  bool Ok = Port != 0;
  std::string Url = "http://127.0.0.1:" + std::to_string(Port) + "/store";
  std::string Error;
  for (const std::string &Donor : DonorPaths) {
    std::vector<StoreSite> Sites;
    if (!Ok)
      break;
    if (!readStoreFromFile(Donor, Sites, &Error) ||
        !fleet::pushStore(Url, Sites, {}, &Error)) {
      std::fprintf(stderr, "[fleet push of %s failed: %s]\n", Donor.c_str(),
                   Error.c_str());
      Ok = false;
    }
  }
  if (Ok && !fleet::pullStore(Url, Merged, {}, &Error)) {
    std::fprintf(stderr, "[fleet pull failed: %s]\n", Error.c_str());
    Ok = false;
  }
  Switch::stopMetricsServer();
  Switch::closeStore();
  Switch::configure(SwitchConfig{});
  wipe(AggregatorPath);
  return Ok;
}

/// One measured run with the event log freshly drained.
ConvergenceAccount measuredRun(AppKind App, const AppRunConfig &Config) {
  EventLog::global().drain();
  runApp(App, Config);
  return accountFor(EventLog::global().drain());
}

struct AppOutcome {
  const char *Name = nullptr;
  ConvergenceAccount Cold;
  ConvergenceAccount Warm;
  uint64_t FleetSites = 0; ///< Sites in the pulled fleet document.
  bool SyncOk = false;
  bool StrictlyFewer = false;
};

} // namespace

int main(int Argc, char **Argv) {
  double Scale = 0.35;
  if (const char *S = stringOption(Argc, Argv, "--scale", ""))
    if (S[0])
      Scale = std::atof(S);
  const char *JsonPath = stringOption(Argc, Argv, "--json", "BENCH_fleet.json");
  bool Check = hasFlag(Argc, Argv, "--check");

  std::vector<AppKind> Apps;
  {
    const char *Filter = stringOption(Argc, Argv, "--apps", "");
    for (AppKind App : AllAppKinds)
      if (!Filter[0] || std::strstr(Filter, appKindName(App)))
        Apps.push_back(App);
  }

  AppRunConfig Base;
  Base.Model = loadModel();
  Base.Seed = 17;
  Base.Scale = Scale;
  Base.Config = AppConfig::FullAdap;
  Base.Rule = SelectionRule::timeRule();
  Base.CtxOptions.WindowSize = 100;
  Base.CtxOptions.FinishedRatio = 0.6;
  Base.CtxOptions.LogEvents = true;
  Base.CtxOptions.WarmStart = true; // Cold runs simply miss every site.

  std::printf("\nFleet warm-start convergence (scale %.2f): two donor "
              "replicas -> HTTP aggregate -> fresh replica\n",
              Scale);
  std::printf("%-9s | %10s %6s | %10s %6s %6s | %5s | %s\n", "bench",
              "cold-evals", "cold-T", "fleet-evals", "warm-T", "warmed",
              "sites", "fewer?");

  std::vector<AppOutcome> Outcomes;
  size_t AppsStrictlyFewer = 0;
  for (AppKind App : Apps) {
    std::string Prefix = std::string("fleet_") + appKindName(App);
    std::string DonorA = Prefix + "_donor_a.cswitchstore";
    std::string DonorB = Prefix + "_donor_b.cswitchstore";
    std::string FleetPath = Prefix + "_fleet.cswitchstore";
    std::string ColdPath = Prefix + "_cold.cswitchstore";

    AppOutcome Outcome;
    Outcome.Name = appKindName(App);

    // The fleet's existing knowledge: two donor replicas, distinct
    // seeds, each paying its own cold ramp.
    donorRun(App, Base, 101, DonorA);
    donorRun(App, Base, 202, DonorB);

    // Aggregate the donors through the real /store endpoint.
    std::vector<StoreSite> Merged;
    Outcome.SyncOk = aggregateOverHttp({DonorA, DonorB}, Prefix + "_agg.cswitchstore",
                                       Merged);
    Outcome.FleetSites = Merged.size();
    wipe(FleetPath);
    if (Outcome.SyncOk)
      writeStoreToFile(FleetPath, Merged);

    // Cold baseline: the measured replica starts from nothing.
    wipe(ColdPath);
    Switch::loadStore(ColdPath);
    Outcome.Cold = measuredRun(App, Base);
    Switch::closeStore();

    // Fleet-warmed: same replica, same seed, store pulled from the
    // fleet.
    if (Outcome.SyncOk) {
      Switch::loadStore(FleetPath);
      Outcome.Warm = measuredRun(App, Base);
      Switch::closeStore();
    }

    Outcome.StrictlyFewer =
        Outcome.SyncOk &&
        Outcome.Warm.PreconvEvaluations < Outcome.Cold.PreconvEvaluations;
    if (Outcome.StrictlyFewer)
      ++AppsStrictlyFewer;

    std::printf("%-9s | %10llu %6llu | %11llu %6llu %6llu | %5llu | %s\n",
                Outcome.Name,
                (unsigned long long)Outcome.Cold.PreconvEvaluations,
                (unsigned long long)Outcome.Cold.Transitions,
                (unsigned long long)Outcome.Warm.PreconvEvaluations,
                (unsigned long long)Outcome.Warm.Transitions,
                (unsigned long long)Outcome.Warm.WarmStarts,
                (unsigned long long)Outcome.FleetSites,
                Outcome.StrictlyFewer ? "yes" : "NO");
    Outcomes.push_back(Outcome);

    wipe(DonorA);
    wipe(DonorB);
    wipe(FleetPath);
    wipe(ColdPath);
  }

  // The concurrent scenario rides the same fleet flow: donors seed the
  // contention-selected strategies, the warmed replica skips the search.
  ServerRunConfig ServerBase;
  ServerBase.Threads = 2;
  ServerBase.Epochs = 8;
  ServerBase.OpsPerThread = 8000;
  ServerBase.Seed = 17;
  ServerBase.CtxOptions.LogEvents = true;
  ServerBase.CtxOptions.WarmStart = true;
  ConvergenceAccount ServerCold, ServerWarm;
  bool ServerSyncOk = false;
  uint64_t ServerFleetSites = 0;
  {
    std::string DonorA = "fleet_server_donor_a.cswitchstore";
    std::string DonorB = "fleet_server_donor_b.cswitchstore";
    std::string FleetPath = "fleet_server_fleet.cswitchstore";
    std::string ColdPath = "fleet_server_cold.cswitchstore";
    auto ServerDonor = [&ServerBase](uint64_t Seed,
                                     const std::string &StorePath) {
      wipe(StorePath);
      ServerRunConfig Config = ServerBase;
      Config.Seed = Seed;
      Switch::loadStore(StorePath);
      EventLog::global().drain();
      runSessionServerSim(Config);
      Switch::persistStore();
      Switch::closeStore();
    };
    ServerDonor(101, DonorA);
    ServerDonor(202, DonorB);

    std::vector<StoreSite> Merged;
    ServerSyncOk = aggregateOverHttp({DonorA, DonorB},
                                     "fleet_server_agg.cswitchstore", Merged);
    ServerFleetSites = Merged.size();
    wipe(FleetPath);
    if (ServerSyncOk)
      writeStoreToFile(FleetPath, Merged);

    wipe(ColdPath);
    Switch::loadStore(ColdPath);
    EventLog::global().drain();
    runSessionServerSim(ServerBase);
    ServerCold = accountFor(EventLog::global().drain());
    Switch::closeStore();

    if (ServerSyncOk) {
      Switch::loadStore(FleetPath);
      EventLog::global().drain();
      runSessionServerSim(ServerBase);
      ServerWarm = accountFor(EventLog::global().drain());
      Switch::closeStore();
    }
    std::printf("%-9s | %10llu %6llu | %11llu %6llu %6llu | %5llu | %s\n",
                "sessionsv", (unsigned long long)ServerCold.PreconvEvaluations,
                (unsigned long long)ServerCold.Transitions,
                (unsigned long long)ServerWarm.PreconvEvaluations,
                (unsigned long long)ServerWarm.Transitions,
                (unsigned long long)ServerWarm.WarmStarts,
                (unsigned long long)ServerFleetSites,
                ServerWarm.PreconvEvaluations < ServerCold.PreconvEvaluations
                    ? "yes"
                    : "no");
    wipe(DonorA);
    wipe(DonorB);
    wipe(FleetPath);
    wipe(ColdPath);
  }

  FleetStats Fleet = FleetRegistry::global().stats();
  std::printf("\nfleet transport: %llu pushes, %llu pulls, %llu merges "
              "(%llu sites), %llu retries, %llu failures\n",
              (unsigned long long)Fleet.Pushes,
              (unsigned long long)Fleet.Pulls,
              (unsigned long long)Fleet.MergesApplied,
              (unsigned long long)Fleet.SitesMerged,
              (unsigned long long)Fleet.Retries,
              (unsigned long long)(Fleet.PushFailures + Fleet.PullFailures));

  // Machine-readable summary.
  std::string Json = "{\n  \"schema\": \"cswitch-fleet-v1\",\n";
  Json += "  \"scale\": " + std::to_string(Scale) + ",\n  \"apps\": [\n";
  for (size_t I = 0; I != Outcomes.size(); ++I) {
    const AppOutcome &O = Outcomes[I];
    char Buf[320];
    std::snprintf(
        Buf, sizeof(Buf),
        "    {\"app\": \"%s\", \"cold_preconv_evals\": %llu, "
        "\"fleet_preconv_evals\": %llu, \"cold_transitions\": %llu, "
        "\"fleet_transitions\": %llu, \"warm_started_contexts\": %llu, "
        "\"fleet_sites\": %llu, \"sync_ok\": %s, \"strictly_fewer\": %s}%s\n",
        O.Name, (unsigned long long)O.Cold.PreconvEvaluations,
        (unsigned long long)O.Warm.PreconvEvaluations,
        (unsigned long long)O.Cold.Transitions,
        (unsigned long long)O.Warm.Transitions,
        (unsigned long long)O.Warm.WarmStarts,
        (unsigned long long)O.FleetSites, O.SyncOk ? "true" : "false",
        O.StrictlyFewer ? "true" : "false",
        I + 1 == Outcomes.size() ? "" : ",");
    Json += Buf;
  }
  Json += "  ],\n";
  {
    char Buf[320];
    std::snprintf(
        Buf, sizeof(Buf),
        "  \"session_server\": {\"cold_preconv_evals\": %llu, "
        "\"fleet_preconv_evals\": %llu, \"warm_started_contexts\": %llu, "
        "\"fleet_sites\": %llu, \"sync_ok\": %s},\n",
        (unsigned long long)ServerCold.PreconvEvaluations,
        (unsigned long long)ServerWarm.PreconvEvaluations,
        (unsigned long long)ServerWarm.WarmStarts,
        (unsigned long long)ServerFleetSites,
        ServerSyncOk ? "true" : "false");
    Json += Buf;
  }
  Json += "  \"apps_strictly_fewer\": " + std::to_string(AppsStrictlyFewer) +
          ",\n";
  char FleetBuf[256];
  std::snprintf(FleetBuf, sizeof(FleetBuf),
                "  \"fleet_pushes\": %llu,\n  \"fleet_pulls\": %llu,\n"
                "  \"fleet_push_failures\": %llu,\n"
                "  \"fleet_pull_failures\": %llu\n}\n",
                (unsigned long long)Fleet.Pushes,
                (unsigned long long)Fleet.Pulls,
                (unsigned long long)Fleet.PushFailures,
                (unsigned long long)Fleet.PullFailures);
  Json += FleetBuf;
  if (writeTextFile(JsonPath, Json))
    std::printf("[wrote %s]\n", JsonPath);
  else
    std::fprintf(stderr, "[failed to write %s]\n", JsonPath);

  if (Check) {
    bool Pass = AppsStrictlyFewer >= 3;
    std::printf("[check %s: %zu/%zu apps strictly fewer evaluation rounds "
                "fleet-warm than cold]\n",
                Pass ? "passed" : "FAILED", AppsStrictlyFewer,
                Outcomes.size());
    return Pass ? 0 : 1;
  }
  return 0;
}
