//===- ablation_parameters.cpp - Framework parameter ablations ------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
//
// Ablation studies of the design choices DESIGN.md calls out (the paper
// fixes window size = 100, finished ratio = 0.6 and gates adaptive
// variants behind a wide-size-range test; here each knob is swept):
//
//  (a) window size — adaptation latency (instances until the first
//      correct switch) versus per-round analysis cost;
//  (b) finished ratio — decision latency versus decision stability
//      (switch-back count on a noisy workload);
//  (c) the adaptive-variant eligibility gate — decisions with the gate
//      on versus off on a narrow-size workload.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"
#include "core/Switch.h"
#include "support/Random.h"
#include "support/Timer.h"

#include <cstdio>

using namespace cswitch;
using namespace cswitch::bench;

namespace {

/// Runs lookup-heavy instances through the context until it switches or
/// \p MaxInstances were created; returns instances consumed (or
/// MaxInstances if it never switched).
size_t instancesUntilSwitch(ListContext<int64_t> &Ctx,
                            size_t MaxInstances) {
  for (size_t I = 0; I != MaxInstances; ++I) {
    {
      List<int64_t> L = Ctx.createList();
      for (int64_t V = 0; V != 300; ++V)
        L.add(V);
      for (int64_t V = 0; V != 3000; ++V)
        (void)L.contains(V);
    }
    if (I % 10 == 9) {
      Ctx.evaluate();
      if (Ctx.switchCount() > 0)
        return I + 1;
    }
  }
  return MaxInstances;
}

void windowSizeAblation(
    const std::shared_ptr<const PerformanceModel> &Model) {
  std::printf("\n(a) window size: adaptation latency vs analysis cost\n");
  std::printf("%8s %22s %20s\n", "window", "instances to switch",
              "eval cost (us)");
  for (size_t Window : {10u, 25u, 50u, 100u, 250u, 500u}) {
    ContextOptions Options;
    Options.WindowSize = Window;
    Options.FinishedRatio = 0.6;
    Options.LogEvents = false;
    ListContext<int64_t> Ctx("ablation:w", ListVariant::ArrayList, Model,
                             SelectionRule::timeRule(), Options);
    size_t Latency = instancesUntilSwitch(Ctx, 2000);

    // Analysis cost of one full window.
    ListContext<int64_t> CostCtx("ablation:wc", ListVariant::ArrayList,
                                 Model, SelectionRule::impossibleRule(),
                                 Options);
    for (size_t I = 0; I != Window; ++I) {
      List<int64_t> L = CostCtx.createList();
      L.add(1);
    }
    Timer Clock;
    CostCtx.evaluate();
    std::printf("%8zu %22zu %20.1f\n", Window, Latency,
                static_cast<double>(Clock.elapsedNanos()) / 1e3);
  }
}

void finishedRatioAblation(
    const std::shared_ptr<const PerformanceModel> &Model) {
  std::printf("\n(b) finished ratio: decision latency vs stability\n");
  std::printf("%8s %22s %14s\n", "ratio", "instances to switch",
              "switches");
  for (double Ratio : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    ContextOptions Options;
    Options.WindowSize = 100;
    Options.FinishedRatio = Ratio;
    Options.LogEvents = false;
    ListContext<int64_t> Ctx("ablation:r", ListVariant::ArrayList, Model,
                             SelectionRule::timeRule(), Options);
    size_t Latency = instancesUntilSwitch(Ctx, 2000);

    // Noisy alternating workload: low ratios decide on partial windows
    // and thrash more.
    ContextOptions Noisy = Options;
    ListContext<int64_t> NoisyCtx("ablation:rn", ListVariant::ArrayList,
                                  Model, SelectionRule::timeRule(), Noisy);
    SplitMix64 Rng(3);
    for (int Round = 0; Round != 40; ++Round) {
      // Phases alternate between a lookup-heavy mix (favors
      // HashArrayList) and a positional mix (favors ArrayList).
      bool LookupHeavy = Round % 2 == 0;
      for (int I = 0; I != 60; ++I) {
        List<int64_t> L = NoisyCtx.createList();
        for (int64_t V = 0; V != 300; ++V)
          L.add(V);
        if (LookupHeavy) {
          for (size_t V = 0; V != 3000; ++V)
            (void)L.contains(static_cast<int64_t>(Rng.nextBelow(600)));
        } else {
          for (size_t V = 0; V != 3000; ++V)
            (void)L.get(Rng.nextBelow(300));
        }
      }
      NoisyCtx.evaluate();
    }
    std::printf("%8.1f %22zu %14llu\n", Ratio, Latency,
                static_cast<unsigned long long>(NoisyCtx.switchCount()));
  }
}

void adaptiveGateAblation(
    const std::shared_ptr<const PerformanceModel> &Model) {
  std::printf("\n(c) adaptive-variant gate on a narrow-size set "
              "workload (all instances ~20 elements)\n");
  for (double Factor : {4.0, 1.0}) { // 1.0 effectively disables the gate
    ContextOptions Options;
    Options.WindowSize = 50;
    Options.FinishedRatio = 0.6;
    Options.LogEvents = false;
    Options.WideRangeFactor = Factor;
    SetContext<int64_t> Ctx("ablation:g", SetVariant::ChainedHashSet,
                            Model, SelectionRule::allocRule(), Options);
    for (int I = 0; I != 50; ++I) {
      Set<int64_t> S = Ctx.createSet();
      for (int64_t V = 0; V != 20; ++V)
        S.add(V);
      for (int64_t V = 0; V != 40; ++V)
        (void)S.contains(V);
    }
    Ctx.evaluate();
    std::printf("  gate %s -> selected %s\n",
                Factor > 1.0 ? "ON (factor 4)" : "OFF(factor 1)",
                Ctx.currentVariant().name().c_str());
  }
  std::printf("  (with the gate off, AdaptiveSet may be selected even "
              "though every instance\n   stays below its threshold — "
              "the paper's §3.2 rationale for the gate)\n");
}

} // namespace

int main() {
  std::shared_ptr<const PerformanceModel> Model = loadModel();
  std::printf("Ablation of framework parameters (paper defaults: window "
              "100, ratio 0.6, gate on)\n");
  windowSizeAblation(Model);
  finishedRatioAblation(Model);
  adaptiveGateAblation(Model);
  return 0;
}
