//===- ablation_parameters.cpp - Framework parameter ablations ------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
//
// Ablation studies of the design choices DESIGN.md calls out (the paper
// fixes window size = 100, finished ratio = 0.6 and gates adaptive
// variants behind a wide-size-range test; here each knob is swept):
//
//  (a) window size — adaptation latency (instances until the first
//      correct switch) versus per-round analysis cost;
//  (b) finished ratio — decision latency versus decision stability
//      (switch-back count on a noisy workload);
//  (c) the adaptive-variant eligibility gate — decisions with the gate
//      on versus off on a narrow-size workload.
//
// Tuning regression mode (DESIGN.md §13): the same binary doubles as
// the acceptance harness of the offline autotuner —
//
//   ablation_parameters --emit-traces <dir>   record the six scenario
//                                             traces (five DaCapo
//                                             simulants + the
//                                             sequential server shadow)
//   ablation_parameters --check               tune in-process (tiny
//                                             search) and gate: tuned
//                                             beats paper defaults on
//                                             >= 3 of 6 scenarios, no
//                                             scenario's time cost
//                                             regresses > 5%, and the
//                                             search is bit-
//                                             deterministic
//   ablation_parameters --check --tuning <artifact>   gate a
//                                             pre-built artifact
//   --traces <dir>     reuse traces emitted earlier (default: record
//                      in-process)
//   --json <file>      machine-readable report (BENCH_tuning.json)
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"
#include "apps/Apps.h"
#include "core/Switch.h"
#include "replay/TraceRecorder.h"
#include "support/MetricsExport.h"
#include "support/Random.h"
#include "support/Timer.h"
#include "tuner/Tuner.h"

#include <cstdio>
#include <sstream>
#include <string>
#include <sys/stat.h>
#include <vector>

using namespace cswitch;
using namespace cswitch::bench;

namespace {

/// Runs lookup-heavy instances through the context until it switches or
/// \p MaxInstances were created; returns instances consumed (or
/// MaxInstances if it never switched).
size_t instancesUntilSwitch(ListContext<int64_t> &Ctx,
                            size_t MaxInstances) {
  for (size_t I = 0; I != MaxInstances; ++I) {
    {
      List<int64_t> L = Ctx.createList();
      for (int64_t V = 0; V != 300; ++V)
        L.add(V);
      for (int64_t V = 0; V != 3000; ++V)
        (void)L.contains(V);
    }
    if (I % 10 == 9) {
      Ctx.evaluate();
      if (Ctx.switchCount() > 0)
        return I + 1;
    }
  }
  return MaxInstances;
}

void windowSizeAblation(
    const std::shared_ptr<const PerformanceModel> &Model) {
  std::printf("\n(a) window size: adaptation latency vs analysis cost\n");
  std::printf("%8s %22s %20s\n", "window", "instances to switch",
              "eval cost (us)");
  for (size_t Window : {10u, 25u, 50u, 100u, 250u, 500u}) {
    ContextOptions Options;
    Options.WindowSize = Window;
    Options.FinishedRatio = 0.6;
    Options.LogEvents = false;
    ListContext<int64_t> Ctx("ablation:w", ListVariant::ArrayList, Model,
                             SelectionRule::timeRule(), Options);
    size_t Latency = instancesUntilSwitch(Ctx, 2000);

    // Analysis cost of one full window.
    ListContext<int64_t> CostCtx("ablation:wc", ListVariant::ArrayList,
                                 Model, SelectionRule::impossibleRule(),
                                 Options);
    for (size_t I = 0; I != Window; ++I) {
      List<int64_t> L = CostCtx.createList();
      L.add(1);
    }
    Timer Clock;
    CostCtx.evaluate();
    std::printf("%8zu %22zu %20.1f\n", Window, Latency,
                static_cast<double>(Clock.elapsedNanos()) / 1e3);
  }
}

void finishedRatioAblation(
    const std::shared_ptr<const PerformanceModel> &Model) {
  std::printf("\n(b) finished ratio: decision latency vs stability\n");
  std::printf("%8s %22s %14s\n", "ratio", "instances to switch",
              "switches");
  for (double Ratio : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    ContextOptions Options;
    Options.WindowSize = 100;
    Options.FinishedRatio = Ratio;
    Options.LogEvents = false;
    ListContext<int64_t> Ctx("ablation:r", ListVariant::ArrayList, Model,
                             SelectionRule::timeRule(), Options);
    size_t Latency = instancesUntilSwitch(Ctx, 2000);

    // Noisy alternating workload: low ratios decide on partial windows
    // and thrash more.
    ContextOptions Noisy = Options;
    ListContext<int64_t> NoisyCtx("ablation:rn", ListVariant::ArrayList,
                                  Model, SelectionRule::timeRule(), Noisy);
    SplitMix64 Rng(3);
    for (int Round = 0; Round != 40; ++Round) {
      // Phases alternate between a lookup-heavy mix (favors
      // HashArrayList) and a positional mix (favors ArrayList).
      bool LookupHeavy = Round % 2 == 0;
      for (int I = 0; I != 60; ++I) {
        List<int64_t> L = NoisyCtx.createList();
        for (int64_t V = 0; V != 300; ++V)
          L.add(V);
        if (LookupHeavy) {
          for (size_t V = 0; V != 3000; ++V)
            (void)L.contains(static_cast<int64_t>(Rng.nextBelow(600)));
        } else {
          for (size_t V = 0; V != 3000; ++V)
            (void)L.get(Rng.nextBelow(300));
        }
      }
      NoisyCtx.evaluate();
    }
    std::printf("%8.1f %22zu %14llu\n", Ratio, Latency,
                static_cast<unsigned long long>(NoisyCtx.switchCount()));
  }
}

void adaptiveGateAblation(
    const std::shared_ptr<const PerformanceModel> &Model) {
  std::printf("\n(c) adaptive-variant gate on a narrow-size set "
              "workload (all instances ~20 elements)\n");
  for (double Factor : {4.0, 1.0}) { // 1.0 effectively disables the gate
    ContextOptions Options;
    Options.WindowSize = 50;
    Options.FinishedRatio = 0.6;
    Options.LogEvents = false;
    Options.WideRangeFactor = Factor;
    SetContext<int64_t> Ctx("ablation:g", SetVariant::ChainedHashSet,
                            Model, SelectionRule::allocRule(), Options);
    for (int I = 0; I != 50; ++I) {
      Set<int64_t> S = Ctx.createSet();
      for (int64_t V = 0; V != 20; ++V)
        S.add(V);
      for (int64_t V = 0; V != 40; ++V)
        (void)S.contains(V);
    }
    Ctx.evaluate();
    std::printf("  gate %s -> selected %s\n",
                Factor > 1.0 ? "ON (factor 4)" : "OFF(factor 1)",
                Ctx.currentVariant().name().c_str());
  }
  std::printf("  (with the gate off, AdaptiveSet may be selected even "
              "though every instance\n   stays below its threshold — "
              "the paper's §3.2 rationale for the gate)\n");
}

//===--------------------------------------------------------------------===//
// Tuning regression harness
//===--------------------------------------------------------------------===//

/// One replayable scenario of the acceptance gate.
struct Scenario {
  std::string Name;
  OpTrace Trace;
};

/// The sequential "server shadow": the session-server access pattern
/// (Zipf-skewed cache map, churning registry set, append-mostly feed
/// list) replayed single-threaded, so the tuner's corpus also exerts
/// pressure on map/set sites the DaCapo simulants under-use.
void runServerShadow(const std::shared_ptr<const PerformanceModel> &Model,
                     TraceRecorder *Recorder) {
  ContextOptions Options;
  Options.WindowSize = 32;
  Options.FinishedRatio = 0.6;
  Options.LogEvents = false;
  Options.Recorder = Recorder;
  MapContext<int64_t, int64_t> Cache("shadow:cache",
                                     MapVariant::ChainedHashMap, Model,
                                     SelectionRule::timeRule(), Options);
  SetContext<int64_t> Registry("shadow:registry",
                               SetVariant::ChainedHashSet, Model,
                               SelectionRule::timeRule(), Options);
  ListContext<int64_t> Feed("shadow:feed", ListVariant::LinkedList, Model,
                            SelectionRule::timeRule(), Options);
  SplitMix64 Rng(29);
  for (int Epoch = 0; Epoch != 24; ++Epoch) {
    Map<int64_t, int64_t> M = Cache.createMap();
    Set<int64_t> S = Registry.createSet();
    List<int64_t> L = Feed.createList();
    for (int I = 0; I != 600; ++I) {
      // ~90% lookups against a skewed hot set, 10% updates — the
      // session-cache mix.
      int64_t Key = static_cast<int64_t>(Rng.nextBelow(64)) *
                    static_cast<int64_t>(Rng.nextBelow(8) + 1);
      if (Rng.nextBelow(10) == 0)
        M.put(Key, I);
      else
        (void)M.get(Key);
      // Session churn: short-lived registrations.
      int64_t Session = static_cast<int64_t>(Rng.nextBelow(256));
      if (Rng.nextBelow(3) == 0)
        S.remove(Session);
      else
        S.add(Session);
      // Append-mostly event feed with rare scans.
      L.add(I);
      if (Rng.nextBelow(50) == 0)
        (void)L.contains(static_cast<int64_t>(Rng.nextBelow(600)));
    }
    if (Epoch % 4 == 3) {
      Cache.evaluate();
      Registry.evaluate();
      Feed.evaluate();
    }
  }
}

/// Records all six scenarios in-process: the five DaCapo simulants in
/// FullAdap Rtime mode (the table5_dacapo recording setup, scaled
/// down) plus the server shadow.
std::vector<Scenario>
recordScenarios(const std::shared_ptr<const PerformanceModel> &Model,
                double Scale) {
  std::vector<Scenario> Scenarios;
  for (AppKind App : AllAppKinds) {
    TraceRecorder Recorder(TraceRecorderOptions{}.capacity(1 << 22));
    AppRunConfig RC;
    RC.Config = AppConfig::FullAdap;
    RC.Rule = SelectionRule::timeRule();
    RC.Model = Model;
    RC.Seed = 17;
    RC.Scale = Scale;
    RC.CtxOptions.LogEvents = false;
    RC.CtxOptions.Recorder = &Recorder;
    runApp(App, RC);
    Scenarios.push_back({appKindName(App), Recorder.trace()});
  }
  {
    TraceRecorder Recorder(TraceRecorderOptions{}.capacity(1 << 22));
    runServerShadow(Model, &Recorder);
    Scenarios.push_back({"server_shadow", Recorder.trace()});
  }
  return Scenarios;
}

const char *const ScenarioNames[] = {"avrora", "bloat",    "fop",
                                     "h2",     "lusearch", "server_shadow"};

int emitTraces(const std::shared_ptr<const PerformanceModel> &Model,
               double Scale, const std::string &Dir) {
  ::mkdir(Dir.c_str(), 0755); // best-effort; the write below reports errors
  for (Scenario &S : recordScenarios(Model, Scale)) {
    std::string Path = Dir + "/" + S.Name + ".optrace";
    if (!writeTraceToFile(Path, S.Trace)) {
      std::fprintf(stderr, "error: cannot write %s\n", Path.c_str());
      return 1;
    }
    std::printf("[wrote %s: %zu sites, %zu ops]\n", Path.c_str(),
                S.Trace.Sites.size(), S.Trace.Ops.size());
  }
  return 0;
}

bool loadScenarios(const std::string &Dir, std::vector<Scenario> &Out) {
  for (const char *Name : ScenarioNames) {
    std::string Path = Dir + "/" + Name + std::string(".optrace");
    OpTrace Trace;
    std::string Error;
    if (!readTraceFromFile(Path, Trace, &Error)) {
      std::fprintf(stderr, "error: %s: %s\n", Path.c_str(), Error.c_str());
      return false;
    }
    Out.push_back({Name, std::move(Trace)});
  }
  return true;
}

/// Model-predicted trajectory cost of replaying one scenario under a
/// genome (the tuner's fitness signal, scenario-resolved).
struct ScenarioCost {
  double Time = 0.0;
  double Alloc = 0.0;
};

ScenarioCost replayCost(const Scenario &S, const tuner::Tuner &Search,
                        const tuner::ParameterSet &Params) {
  Replayer Replay(S.Trace, Search.replayOptionsFor(Params));
  ReplayResult Result = Replay.run();
  return {Result.TrajectoryTime, Result.TrajectoryAlloc};
}

int runCheck(const std::shared_ptr<const PerformanceModel> &Model,
             double Scale, const std::string &TracesDir,
             const std::string &ArtifactPath, const std::string &JsonPath,
             unsigned Population, unsigned Generations) {
  std::vector<Scenario> Scenarios;
  if (!TracesDir.empty()) {
    if (!loadScenarios(TracesDir, Scenarios))
      return 1;
  } else {
    std::printf("[recording %zu scenarios in-process, scale %.2f]\n",
                sizeof(ScenarioNames) / sizeof(ScenarioNames[0]), Scale);
    Scenarios = recordScenarios(Model, Scale);
  }

  tuner::TunerOptions Options;
  Options.Population = Population;
  Options.Generations = Generations;
  Options.Threads = 2;
  tuner::Tuner Search(Model, Options);
  for (const Scenario &S : Scenarios)
    Search.addTrace(S.Trace);

  tuner::ParameterSet Tuned;
  bool Deterministic = true;
  if (!ArtifactPath.empty()) {
    tuner::TuningArtifact Artifact;
    std::string Error;
    if (!tuner::readTuningArtifactFromFile(ArtifactPath, Artifact,
                                           &Error) ||
        !tuner::paramsFromArtifact(Artifact, Tuned, &Error)) {
      std::fprintf(stderr, "error: %s: %s\n", ArtifactPath.c_str(),
                   Error.c_str());
      return 1;
    }
    std::printf("[gating artifact %s (corpus %s)]\n", ArtifactPath.c_str(),
                Artifact.CorpusDigest.c_str());
  } else {
    // Bit-determinism is part of the acceptance gate: two independent
    // searches over the same corpus must produce byte-identical
    // artifacts.
    tuner::TunerResult Result = Search.run();
    tuner::Tuner Rerun(Model, Options);
    for (const Scenario &S : Scenarios)
      Rerun.addTrace(S.Trace);
    tuner::TunerResult Result2 = Rerun.run();
    std::string Bytes = encodeTuningArtifact(Search.makeArtifact(Result));
    std::string Bytes2 = encodeTuningArtifact(Rerun.makeArtifact(Result2));
    Deterministic = Bytes == Bytes2;
    // The artifact must survive its own codec.
    tuner::TuningArtifact Decoded;
    std::string Error;
    if (!tuner::decodeTuningArtifact(Bytes, Decoded, &Error) ||
        !tuner::paramsFromArtifact(Decoded, Tuned, &Error)) {
      std::fprintf(stderr, "error: artifact round-trip failed: %s\n",
                   Error.c_str());
      return 1;
    }
    std::printf("[search: %u generation(s), %llu evaluation(s), fitness "
                "%.4f -> %.4f, %s]\n",
                Result.GenerationsRun,
                static_cast<unsigned long long>(Result.Evaluations),
                Result.BaselineFitness, Result.BestFitness,
                Deterministic ? "bit-deterministic" : "NON-DETERMINISTIC");
  }

  // Per-scenario gate: scalarized tuned-vs-default trajectory-cost
  // ratio (the tuner's own objective, resolved per scenario).
  const double Wt = Options.TimeWeight, Wa = Options.AllocWeight;
  tuner::ParameterSet Defaults;
  size_t Wins = 0;
  double WorstTimeRatio = 0.0;
  std::ostringstream Rows;
  std::printf("\n%-14s %12s %12s %10s %10s\n", "scenario", "default",
              "tuned", "ratio", "time-ratio");
  for (size_t I = 0; I != Scenarios.size(); ++I) {
    const Scenario &S = Scenarios[I];
    ScenarioCost Before = replayCost(S, Search, Defaults);
    ScenarioCost After = replayCost(S, Search, Tuned);
    double TimeRatio = Before.Time > 0.0 ? After.Time / Before.Time : 1.0;
    double AllocRatio =
        Before.Alloc > 0.0 ? After.Alloc / Before.Alloc : 1.0;
    double Ratio = (Wt * TimeRatio + Wa * AllocRatio) / (Wt + Wa);
    if (Ratio < 0.999)
      ++Wins;
    if (TimeRatio > WorstTimeRatio)
      WorstTimeRatio = TimeRatio;
    std::printf("%-14s %12.4g %12.4g %10.4f %10.4f\n", S.Name.c_str(),
                Before.Time, After.Time, Ratio, TimeRatio);
    char Buf[256];
    std::snprintf(Buf, sizeof(Buf),
                  "    {\"scenario\": \"%s\", \"default_time\": %.6g, "
                  "\"tuned_time\": %.6g, \"default_alloc\": %.6g, "
                  "\"tuned_alloc\": %.6g, \"ratio\": %.6f, "
                  "\"time_ratio\": %.6f}%s\n",
                  S.Name.c_str(), Before.Time, After.Time, Before.Alloc,
                  After.Alloc, Ratio, TimeRatio,
                  I + 1 == Scenarios.size() ? "" : ",");
    Rows << Buf;
  }

  bool WinsOk = Wins >= 3;
  bool RegressionOk = WorstTimeRatio <= 1.05;
  bool Pass = WinsOk && RegressionOk && Deterministic;
  std::printf("\ngate: wins %zu/%zu (need >= 3) %s, worst time ratio "
              "%.4f (limit 1.05) %s, determinism %s -> %s\n",
              Wins, Scenarios.size(), WinsOk ? "ok" : "FAIL",
              WorstTimeRatio, RegressionOk ? "ok" : "FAIL",
              Deterministic ? "ok" : "FAIL", Pass ? "PASS" : "FAIL");

  if (!JsonPath.empty()) {
    std::ostringstream OS;
    OS << "{\n  \"schema\": \"cswitch-bench-tuning-v1\",\n"
       << "  \"wins\": " << Wins
       << ",\n  \"scenarios\": " << Scenarios.size()
       << ",\n  \"worst_time_ratio\": " << WorstTimeRatio
       << ",\n  \"deterministic\": " << (Deterministic ? "true" : "false")
       << ",\n  \"pass\": " << (Pass ? "true" : "false")
       << ",\n  \"rows\": [\n"
       << Rows.str() << "  ]\n}\n";
    if (!writeTextFile(JsonPath, OS.str())) {
      std::fprintf(stderr, "error: cannot write %s\n", JsonPath.c_str());
      return 1;
    }
    std::printf("[wrote %s]\n", JsonPath.c_str());
  }
  return Pass ? 0 : 1;
}

} // namespace

int main(int Argc, char **Argv) {
  std::shared_ptr<const PerformanceModel> Model = loadModel();
  double Scale =
      static_cast<double>(intOption(Argc, Argv, "--scale-pct", 30)) / 100.0;
  const char *EmitDir = stringOption(Argc, Argv, "--emit-traces", "");
  if (EmitDir[0])
    return emitTraces(Model, Scale, EmitDir);
  if (hasFlag(Argc, Argv, "--check"))
    return runCheck(
        Model, Scale, stringOption(Argc, Argv, "--traces", ""),
        stringOption(Argc, Argv, "--tuning", ""),
        stringOption(Argc, Argv, "--json", ""),
        static_cast<unsigned>(intOption(Argc, Argv, "--population", 10)),
        static_cast<unsigned>(intOption(Argc, Argv, "--generations", 6)));

  std::printf("Ablation of framework parameters (paper defaults: window "
              "100, ratio 0.6, gate on)\n");
  windowSizeAblation(Model);
  finishedRatioAblation(Model);
  adaptiveGateAblation(Model);
  return 0;
}
