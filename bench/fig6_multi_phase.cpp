//===- fig6_multi_phase.cpp - Reproduces Fig. 6 ---------------------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
//
// The multi-phase scenario (paper §5.1, Fig. 6): the dominant operation
// changes every five iterations — contains, iteration, index operation,
// search-and-remove, contains. CollectionSwitch is compared against the
// fixed variants ArrayList, HashArrayList and LinkedList; the expected
// outcome (like the paper's) is that CollectionSwitch tracks the best
// variant in every phase except search-and-remove, where the model gap
// keeps it on HashArrayList.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"
#include "core/Switch.h"
#include "support/Random.h"
#include "support/Timer.h"

#include <cstdio>
#include <algorithm>
#include <functional>
#include <vector>

using namespace cswitch;
using namespace cswitch::bench;

namespace {

enum class Phase { Contains, Iteration, IndexOp, SearchRemove };

const char *phaseName(Phase P) {
  switch (P) {
  case Phase::Contains:
    return "contains";
  case Phase::Iteration:
    return "iteration";
  case Phase::IndexOp:
    return "index";
  case Phase::SearchRemove:
    return "search+remove";
  }
  return "?";
}

/// Runs one iteration: create/populate Instances collections of Size
/// elements, then execute Ops operations of the phase per instance.
/// Returns milliseconds.
double runIteration(Phase P, size_t Instances, size_t Size, size_t Ops,
                    const std::function<List<int64_t>()> &MakeList) {
  SplitMix64 Rng(13);
  Timer Clock;
  for (size_t I = 0; I != Instances; ++I) {
    List<int64_t> L = MakeList();
    L.reserve(Size);
    for (size_t K = 0; K != Size; ++K)
      L.add(static_cast<int64_t>(K));
    switch (P) {
    case Phase::Contains: {
      uint64_t Hits = 0;
      for (size_t Op = 0; Op != Ops; ++Op)
        Hits += L.contains(
            static_cast<int64_t>(Rng.nextBelow(Size * 2)));
      (void)Hits;
      break;
    }
    case Phase::Iteration: {
      // Full traversals are Size times heavier than point operations;
      // scale their count down so the phase stays comparable.
      uint64_t Sum = 0;
      for (size_t Op = 0, E = std::max<size_t>(Ops / 10, 1); Op != E;
           ++Op)
        L.forEach([&Sum](const int64_t &V) {
          Sum += static_cast<uint64_t>(V);
        });
      (void)Sum;
      break;
    }
    case Phase::IndexOp: {
      uint64_t Sum = 0;
      for (size_t Op = 0; Op != Ops; ++Op)
        Sum += static_cast<uint64_t>(L.get(Rng.nextBelow(Size)));
      (void)Sum;
      break;
    }
    case Phase::SearchRemove: {
      for (size_t Op = 0; Op != Ops; ++Op) {
        int64_t V = static_cast<int64_t>(Rng.nextBelow(Size));
        if (L.remove(V))
          L.add(V);
      }
      break;
    }
    }
  }
  return Clock.elapsedSeconds() * 1e3;
}

} // namespace

int main(int Argc, char **Argv) {
  size_t Instances =
      static_cast<size_t>(intOption(Argc, Argv, "--instances", 300));
  size_t Size = static_cast<size_t>(intOption(Argc, Argv, "--size", 500));
  size_t Ops = static_cast<size_t>(intOption(Argc, Argv, "--ops", 1000));
  std::shared_ptr<const PerformanceModel> Model = loadModel();

  ContextOptions Options;
  Options.WindowSize = 100;
  Options.FinishedRatio = 0.6;
  Options.LogEvents = false;
  ListContext<int64_t> Ctx("fig6:list", ListVariant::ArrayList, Model,
                           SelectionRule::timeRule(), Options);

  std::vector<Phase> Phases = {Phase::Contains, Phase::Iteration,
                               Phase::IndexOp, Phase::SearchRemove,
                               Phase::Contains};
  constexpr int IterationsPerPhase = 5;

  std::printf("\nFigure 6: multi-phase scenario (%zu instances of size "
              "%zu per iteration, Rtime)\n",
              Instances, Size);
  std::printf("%4s  %-14s  %10s %12s %14s %12s  %s\n", "it", "phase",
              "Switch(ms)", "ArrayList", "HashArrayList", "LinkedList",
              "switch variant");

  int Iteration = 0;
  for (Phase P : Phases) {
    for (int I = 0; I != IterationsPerPhase; ++I, ++Iteration) {
      double SwitchMs = runIteration(P, Instances, Size, Ops, [&Ctx] {
        return Ctx.createList();
      });
      Ctx.evaluate();
      double ArrayMs = runIteration(P, Instances, Size, Ops, [] {
        return List<int64_t>(
            makeListImpl<int64_t>(ListVariant::ArrayList));
      });
      double HashMs = runIteration(P, Instances, Size, Ops, [] {
        return List<int64_t>(
            makeListImpl<int64_t>(ListVariant::HashArrayList));
      });
      double LinkedMs = runIteration(P, Instances, Size, Ops, [] {
        return List<int64_t>(
            makeListImpl<int64_t>(ListVariant::LinkedList));
      });
      std::printf("%4d  %-14s  %10.2f %12.2f %14.2f %12.2f  %s\n",
                  Iteration, phaseName(P), SwitchMs, ArrayMs, HashMs,
                  LinkedMs, Ctx.currentVariant().name().c_str());
    }
  }
  std::printf("\ntransitions performed: %llu\n",
              static_cast<unsigned long long>(Ctx.switchCount()));
  return 0;
}
