//===- model_builder.cpp - Builds the machine-specific model (Table 3) ----===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
//
// The performance-model builder tool (paper §4.1): runs the factorial
// plan of Table 3 on this machine, fits the cubic cost polynomials, and
// persists the model (loaded by the other harnesses, so every figure
// uses machine-true costs). The output path is `--out` when given, else
// the `CSWITCH_MODEL` environment variable, else `cswitch_model.txt` in
// the working directory; the harnesses search the same chain plus the
// checked-in `data/cswitch_model.txt` fallback.
//
// Usage: model_builder [--quick] [--out <path>]
//
//===----------------------------------------------------------------------===//

#include "model/ModelBuilder.h"
#include "model/ThresholdAnalyzer.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace cswitch;

int main(int Argc, char **Argv) {
  bool Quick = false;
  const char *EnvPath = std::getenv("CSWITCH_MODEL");
  std::string OutPath =
      EnvPath && EnvPath[0] ? EnvPath : "cswitch_model.txt";
  for (int I = 1; I != Argc; ++I) {
    if (std::strcmp(Argv[I], "--quick") == 0)
      Quick = true;
    else if (std::strcmp(Argv[I], "--out") == 0 && I + 1 != Argc)
      OutPath = Argv[++I];
  }

  ModelBuildOptions Options =
      Quick ? ModelBuildOptions::quick() : ModelBuildOptions();
  if (!Quick) {
    Options.Sizes = ModelBuildOptions::paperSizes();
    Options.WarmupIterations = 2;
    Options.MeasuredIterations = 6;
  }

  std::printf("Table 3: Factors and levels of the factorial plan\n");
  std::printf("  Collection Size   [");
  for (size_t I = 0; I != Options.Sizes.size(); ++I)
    std::printf("%s%zu", I ? "," : "", Options.Sizes[I]);
  std::printf("]\n");
  std::printf("  Scenarios         populate, contains, iterate, index, "
              "middle, remove\n");
  std::printf("  Data Type         int64 (Integer)\n");
  std::printf("  Data Distribution uniform\n");
  std::printf("  Iterations        %zu warm-up + %zu measured per point\n\n",
              Options.WarmupIterations, Options.MeasuredIterations);

  ModelBuilder Builder(Options);
  Builder.setProgressCallback([](const std::string &Line) {
    std::printf("  fit %s\n", Line.c_str());
  });
  std::printf("benchmarking all variants (this is the slow part)...\n");
  PerformanceModel Model = Builder.build();

  if (!Model.saveToFile(OutPath)) {
    std::fprintf(stderr, "error: cannot write %s\n", OutPath.c_str());
    return 1;
  }
  std::printf("\nmodel written to %s\n", OutPath.c_str());

  ThresholdAnalyzer Analyzer(Model);
  AdaptiveThresholds T = Analyzer.computeAll();
  std::printf("derived adaptive thresholds on this machine: list=%zu "
              "set=%zu map=%zu (paper Table 1: 80/40/50)\n",
              T.List, T.Set, T.Map);
  return 0;
}
