//===- micro_collections.cpp - google-benchmark microbenchmarks -----------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
//
// Spot-check microbenchmarks over the variant library using
// google-benchmark: populate and contains for every variant at small and
// large sizes. These are the raw measurements behind the performance
// model's shape — handy for verifying that the orderings the model (and
// the paper) rely on hold on this machine:
//
//   bm_set_contains: Open < Compact < Chained at n=256,
//                    Array cheapest at n=16;
//   bm_list_contains: HashArrayList flat, ArrayList linear.
//
//===----------------------------------------------------------------------===//

#include "collections/Factory.h"
#include "support/Random.h"

#include <benchmark/benchmark.h>

using namespace cswitch;

namespace {

std::vector<int64_t> keysFor(size_t N) {
  SplitMix64 Rng(5);
  return distinctIntegers(Rng, N, static_cast<int64_t>(N) * 8 + 64);
}

void bmListPopulate(benchmark::State &State) {
  auto Variant = static_cast<ListVariant>(State.range(0));
  size_t N = static_cast<size_t>(State.range(1));
  std::vector<int64_t> Keys = keysFor(N);
  for (auto _ : State) {
    auto L = makeListImpl<int64_t>(Variant);
    for (int64_t K : Keys)
      L->push_back(K);
    benchmark::DoNotOptimize(L->size());
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(N));
  State.SetLabel(listVariantName(Variant));
}

void bmListContains(benchmark::State &State) {
  auto Variant = static_cast<ListVariant>(State.range(0));
  size_t N = static_cast<size_t>(State.range(1));
  std::vector<int64_t> Keys = keysFor(N);
  auto L = makeListImpl<int64_t>(Variant);
  for (int64_t K : Keys)
    L->push_back(K);
  size_t I = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(L->contains(Keys[I++ % N]));
  }
  State.SetLabel(listVariantName(Variant));
}

void bmSetPopulate(benchmark::State &State) {
  auto Variant = static_cast<SetVariant>(State.range(0));
  size_t N = static_cast<size_t>(State.range(1));
  std::vector<int64_t> Keys = keysFor(N);
  for (auto _ : State) {
    auto S = makeSetImpl<int64_t>(Variant);
    for (int64_t K : Keys)
      S->add(K);
    benchmark::DoNotOptimize(S->size());
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(N));
  State.SetLabel(setVariantName(Variant));
}

void bmSetContains(benchmark::State &State) {
  auto Variant = static_cast<SetVariant>(State.range(0));
  size_t N = static_cast<size_t>(State.range(1));
  std::vector<int64_t> Keys = keysFor(N);
  auto S = makeSetImpl<int64_t>(Variant);
  for (int64_t K : Keys)
    S->add(K);
  size_t I = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(S->contains(Keys[I++ % N]));
  }
  State.SetLabel(setVariantName(Variant));
}

void bmMapGet(benchmark::State &State) {
  auto Variant = static_cast<MapVariant>(State.range(0));
  size_t N = static_cast<size_t>(State.range(1));
  std::vector<int64_t> Keys = keysFor(N);
  auto M = makeMapImpl<int64_t, int64_t>(Variant);
  for (int64_t K : Keys)
    M->put(K, K);
  size_t I = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(M->get(Keys[I++ % N]));
  }
  State.SetLabel(mapVariantName(Variant));
}

void registerAll() {
  for (ListVariant V : AllListVariants) {
    for (int64_t N : {16, 256}) {
      benchmark::RegisterBenchmark("bm_list_populate", bmListPopulate)
          ->Args({static_cast<int64_t>(V), N})->MinTime(0.02);
      benchmark::RegisterBenchmark("bm_list_contains", bmListContains)
          ->Args({static_cast<int64_t>(V), N})->MinTime(0.02);
    }
  }
  for (SetVariant V : AllSetVariants) {
    for (int64_t N : {16, 256}) {
      benchmark::RegisterBenchmark("bm_set_populate", bmSetPopulate)
          ->Args({static_cast<int64_t>(V), N})->MinTime(0.02);
      benchmark::RegisterBenchmark("bm_set_contains", bmSetContains)
          ->Args({static_cast<int64_t>(V), N})->MinTime(0.02);
    }
  }
  for (MapVariant V : AllMapVariants) {
    for (int64_t N : {16, 256}) {
      benchmark::RegisterBenchmark("bm_map_get", bmMapGet)
          ->Args({static_cast<int64_t>(V), N})->MinTime(0.02);
    }
  }
}

} // namespace

int main(int Argc, char **Argv) {
  registerAll();
  benchmark::Initialize(&Argc, Argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
