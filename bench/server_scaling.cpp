//===- server_scaling.cpp - Session-server contention sweep --------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
//
// Scaling study of the concurrent collection tier (DESIGN.md §11) on
// the multi-tenant session-server scenario (src/apps/SessionServer.h).
// For every point of the thread ladder it runs the scenario three ways:
//
//   mutex    the hot collections pinned to the mutex-serialized tier,
//   sharded  pinned to the lock-striped/copy-on-write tier,
//   auto     the engine free to pick — it starts mutex-serialized and
//            must discover the striping from the observed contention.
//
// The acceptance bar (`--check`): the auto run switches the hot cache
// map from MutexHashMap to ShardedHashMap at every multi-threaded
// point, and the sharded pin beats the mutex pin by >= 2x throughput
// at 8+ threads.
//
// Emits BENCH_server.json (schema cswitch-server-v1).
//
// Usage: server_scaling [--ops N] [--epochs N] [--tenants N]
//                       [--max-threads N] [--json <path>] [--check]
//                       [--check-switch]
//
// --check-switch gates only the strategy-switch half (for CI smoke on
// small runners, where the throughput ratio is scheduling noise).
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"
#include "apps/SessionServer.h"
#include "core/Switch.h"
#include "support/MetricsExport.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace cswitch;
using namespace cswitch::bench;

namespace {

/// One (thread-count, mode) measurement.
struct Point {
  size_t Threads = 0;
  Concurrency Mode = Concurrency::Auto;
  ServerRunResult Result;
};

std::string trailJson(const std::vector<std::string> &Trail) {
  std::string Out = "[";
  for (size_t I = 0; I != Trail.size(); ++I) {
    Out += '"';
    Out += Trail[I];
    Out += '"';
    if (I + 1 != Trail.size())
      Out += ", ";
  }
  Out += ']';
  return Out;
}

} // namespace

int main(int Argc, char **Argv) {
  const char *JsonPath = stringOption(Argc, Argv, "--json",
                                      "BENCH_server.json");
  bool Check = hasFlag(Argc, Argv, "--check");

  ServerRunConfig Base;
  Base.OpsPerThread =
      static_cast<size_t>(intOption(Argc, Argv, "--ops", 20000));
  Base.Epochs = static_cast<size_t>(intOption(Argc, Argv, "--epochs", 8));
  Base.Tenants = static_cast<size_t>(intOption(Argc, Argv, "--tenants", 4));
  Base.Seed = static_cast<uint64_t>(intOption(Argc, Argv, "--seed", 17));

  Switch::setModel(loadModel());
  std::vector<size_t> Sweep = threadSweep(Argc, Argv);

  std::printf("\nSession-server scaling: %zu tenants, %zu ops/thread x %zu "
              "epochs, Zipf %.2f\n",
              Base.Tenants, Base.OpsPerThread, Base.Epochs, Base.ZipfSkew);
  std::printf("%7s | %12s %12s %7s | %12s %-14s %3s %8s\n", "threads",
              "mutex op/s", "sharded op/s", "ratio", "auto op/s",
              "auto variant", "sw", "est.thr");

  const Concurrency Modes[] = {Concurrency::Mutex, Concurrency::Sharded,
                               Concurrency::Auto};
  std::vector<Point> Points;
  for (size_t Threads : Sweep) {
    double Ops[3] = {0, 0, 0};
    const ServerRunResult *Auto = nullptr;
    for (size_t M = 0; M != 3; ++M) {
      ServerRunConfig Config = Base;
      Config.Threads = Threads;
      Config.Mode = Modes[M];
      Point P;
      P.Threads = Threads;
      P.Mode = Modes[M];
      P.Result = runSessionServerSim(Config);
      Ops[M] = P.Result.OpsPerSecond;
      Points.push_back(std::move(P));
      if (Modes[M] == Concurrency::Auto)
        Auto = &Points.back().Result;
      if (hasFlag(Argc, Argv, "--verbose")) {
        const EngineStats &S = Points.back().Result.Stats;
        std::printf("  [%s t=%zu: created %llu monitored %llu published "
                    "%llu discarded %llu evals %llu switches %llu]\n",
                    concurrencyName(Modes[M]), Threads,
                    (unsigned long long)S.InstancesCreated,
                    (unsigned long long)S.InstancesMonitored,
                    (unsigned long long)S.ProfilesPublished,
                    (unsigned long long)S.ProfilesDiscarded,
                    (unsigned long long)S.Evaluations,
                    (unsigned long long)S.Switches);
      }
    }
    std::printf("%7zu | %12.0f %12.0f %6.2fx | %12.0f %-14s %3zu %8.1f\n",
                Threads, Ops[0], Ops[1], Ops[0] > 0 ? Ops[1] / Ops[0] : 0.0,
                Ops[2], Auto->CacheVariant.c_str(), Auto->CacheSwitches,
                Auto->ContendedThreads);
  }

  // Acceptance: the auto run discovers the striping wherever threads
  // actually contend, and the striping is worth >= 2x at 8+ threads.
  bool AutoSwitches = true;
  bool ShardedWins = true;
  size_t MultiThreadPoints = 0;
  size_t HighContentionPoints = 0;
  for (size_t I = 0; I + 2 < Points.size(); I += 3) {
    const ServerRunResult &Mutex = Points[I].Result;
    const ServerRunResult &Sharded = Points[I + 1].Result;
    const ServerRunResult &Auto = Points[I + 2].Result;
    size_t Threads = Points[I].Threads;
    if (Threads >= 2) {
      ++MultiThreadPoints;
      if (Auto.CacheSwitches < 1 || Auto.CacheVariant != "ShardedHashMap")
        AutoSwitches = false;
    }
    if (Threads >= 8) {
      ++HighContentionPoints;
      if (Sharded.OpsPerSecond < 2.0 * Mutex.OpsPerSecond)
        ShardedWins = false;
    }
  }

  // The throughput half of the acceptance bar needs hardware that can
  // actually run 2+ threads in parallel: on a single-CPU box every mode
  // serializes on the one core (and an uncontended lock handoff is
  // cheap), so pinned-mutex and pinned-sharded throughput converge no
  // matter how good the striping is. The switch half is hardware-
  // independent — the contention estimate and the cost model drive it.
  size_t HardwareThreads = std::thread::hardware_concurrency();
  bool ParallelHardware = HardwareThreads >= 2;

  std::string Json = "{\n  \"schema\": \"cswitch-server-v1\",\n";
  Json += "  \"hardware_threads\": " + std::to_string(HardwareThreads) +
          ",\n";
  Json += "  \"tenants\": " + std::to_string(Base.Tenants) + ",\n";
  Json += "  \"ops_per_thread\": " + std::to_string(Base.OpsPerThread) +
          ",\n";
  Json += "  \"epochs\": " + std::to_string(Base.Epochs) + ",\n";
  Json += "  \"points\": [\n";
  for (size_t I = 0; I + 2 < Points.size(); I += 3) {
    const ServerRunResult &Mutex = Points[I].Result;
    const ServerRunResult &Sharded = Points[I + 1].Result;
    const ServerRunResult &Auto = Points[I + 2].Result;
    char Buf[512];
    std::snprintf(
        Buf, sizeof(Buf),
        "    {\"threads\": %zu, \"mutex_ops_per_sec\": %.0f, "
        "\"sharded_ops_per_sec\": %.0f, \"sharded_speedup\": %.2f, "
        "\"auto_ops_per_sec\": %.0f, \"auto_final_variant\": \"%s\", "
        "\"auto_switches\": %zu, \"auto_contended_threads\": %.2f, "
        "\"auto_variant_trail\": ",
        Points[I].Threads, Mutex.OpsPerSecond, Sharded.OpsPerSecond,
        Mutex.OpsPerSecond > 0
            ? Sharded.OpsPerSecond / Mutex.OpsPerSecond
            : 0.0,
        Auto.OpsPerSecond, Auto.CacheVariant.c_str(), Auto.CacheSwitches,
        Auto.ContendedThreads);
    Json += Buf;
    Json += trailJson(Auto.CacheVariantTrail);
    Json += I + 3 >= Points.size() ? "}\n" : "},\n";
  }
  Json += "  ],\n";
  Json += std::string("  \"auto_switches_to_sharded\": ") +
          (AutoSwitches && MultiThreadPoints > 0 ? "true" : "false") + ",\n";
  Json += std::string("  \"sharded_2x_at_8_threads\": ") +
          (ShardedWins && HighContentionPoints > 0 ? "true" : "false") +
          "\n}\n";
  if (writeTextFile(JsonPath, Json))
    std::printf("[wrote %s]\n", JsonPath);
  else
    std::fprintf(stderr, "[failed to write %s]\n", JsonPath);

  bool CheckSwitch = hasFlag(Argc, Argv, "--check-switch");
  if (Check || CheckSwitch) {
    bool SwitchPass = AutoSwitches && MultiThreadPoints > 0;
    if (CheckSwitch && !Check) {
      std::printf("[check-switch %s: auto switch %s over %zu multi-thread "
                  "points]\n",
                  SwitchPass ? "passed" : "FAILED",
                  AutoSwitches ? "ok" : "MISSED", MultiThreadPoints);
      return SwitchPass ? 0 : 1;
    }
    bool ThroughputPass =
        !ParallelHardware || (ShardedWins && HighContentionPoints > 0);
    bool Pass = SwitchPass && ThroughputPass;
    std::printf("[check %s: auto switch %s over %zu multi-thread points, "
                "sharded >=2x %s over %zu 8+-thread points%s]\n",
                Pass ? "passed" : "FAILED", AutoSwitches ? "ok" : "MISSED",
                MultiThreadPoints, ShardedWins ? "ok" : "MISSED",
                HighContentionPoints,
                ParallelHardware
                    ? ""
                    : " (single-CPU box: throughput bar not applicable)");
    return Pass ? 0 : 1;
  }
  return 0;
}
