
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/IntegrationTest.cpp" "tests/CMakeFiles/cswitch_tests.dir/IntegrationTest.cpp.o" "gcc" "tests/CMakeFiles/cswitch_tests.dir/IntegrationTest.cpp.o.d"
  "/root/repo/tests/SmokeTest.cpp" "tests/CMakeFiles/cswitch_tests.dir/SmokeTest.cpp.o" "gcc" "tests/CMakeFiles/cswitch_tests.dir/SmokeTest.cpp.o.d"
  "/root/repo/tests/apps/AppsTest.cpp" "tests/CMakeFiles/cswitch_tests.dir/apps/AppsTest.cpp.o" "gcc" "tests/CMakeFiles/cswitch_tests.dir/apps/AppsTest.cpp.o.d"
  "/root/repo/tests/collections/AdaptiveCollectionsTest.cpp" "tests/CMakeFiles/cswitch_tests.dir/collections/AdaptiveCollectionsTest.cpp.o" "gcc" "tests/CMakeFiles/cswitch_tests.dir/collections/AdaptiveCollectionsTest.cpp.o.d"
  "/root/repo/tests/collections/FacadeMonitoringTest.cpp" "tests/CMakeFiles/cswitch_tests.dir/collections/FacadeMonitoringTest.cpp.o" "gcc" "tests/CMakeFiles/cswitch_tests.dir/collections/FacadeMonitoringTest.cpp.o.d"
  "/root/repo/tests/collections/HashBagTest.cpp" "tests/CMakeFiles/cswitch_tests.dir/collections/HashBagTest.cpp.o" "gcc" "tests/CMakeFiles/cswitch_tests.dir/collections/HashBagTest.cpp.o.d"
  "/root/repo/tests/collections/ListVariantsTest.cpp" "tests/CMakeFiles/cswitch_tests.dir/collections/ListVariantsTest.cpp.o" "gcc" "tests/CMakeFiles/cswitch_tests.dir/collections/ListVariantsTest.cpp.o.d"
  "/root/repo/tests/collections/MapVariantsTest.cpp" "tests/CMakeFiles/cswitch_tests.dir/collections/MapVariantsTest.cpp.o" "gcc" "tests/CMakeFiles/cswitch_tests.dir/collections/MapVariantsTest.cpp.o.d"
  "/root/repo/tests/collections/PropertySweepTest.cpp" "tests/CMakeFiles/cswitch_tests.dir/collections/PropertySweepTest.cpp.o" "gcc" "tests/CMakeFiles/cswitch_tests.dir/collections/PropertySweepTest.cpp.o.d"
  "/root/repo/tests/collections/SetVariantsTest.cpp" "tests/CMakeFiles/cswitch_tests.dir/collections/SetVariantsTest.cpp.o" "gcc" "tests/CMakeFiles/cswitch_tests.dir/collections/SetVariantsTest.cpp.o.d"
  "/root/repo/tests/collections/SortedVariantsTest.cpp" "tests/CMakeFiles/cswitch_tests.dir/collections/SortedVariantsTest.cpp.o" "gcc" "tests/CMakeFiles/cswitch_tests.dir/collections/SortedVariantsTest.cpp.o.d"
  "/root/repo/tests/collections/StringElementsTest.cpp" "tests/CMakeFiles/cswitch_tests.dir/collections/StringElementsTest.cpp.o" "gcc" "tests/CMakeFiles/cswitch_tests.dir/collections/StringElementsTest.cpp.o.d"
  "/root/repo/tests/collections/SynchronizedTest.cpp" "tests/CMakeFiles/cswitch_tests.dir/collections/SynchronizedTest.cpp.o" "gcc" "tests/CMakeFiles/cswitch_tests.dir/collections/SynchronizedTest.cpp.o.d"
  "/root/repo/tests/collections/VariantsTest.cpp" "tests/CMakeFiles/cswitch_tests.dir/collections/VariantsTest.cpp.o" "gcc" "tests/CMakeFiles/cswitch_tests.dir/collections/VariantsTest.cpp.o.d"
  "/root/repo/tests/core/AllocationContextTest.cpp" "tests/CMakeFiles/cswitch_tests.dir/core/AllocationContextTest.cpp.o" "gcc" "tests/CMakeFiles/cswitch_tests.dir/core/AllocationContextTest.cpp.o.d"
  "/root/repo/tests/core/ConcurrentMonitoringTest.cpp" "tests/CMakeFiles/cswitch_tests.dir/core/ConcurrentMonitoringTest.cpp.o" "gcc" "tests/CMakeFiles/cswitch_tests.dir/core/ConcurrentMonitoringTest.cpp.o.d"
  "/root/repo/tests/core/ContextEdgeCasesTest.cpp" "tests/CMakeFiles/cswitch_tests.dir/core/ContextEdgeCasesTest.cpp.o" "gcc" "tests/CMakeFiles/cswitch_tests.dir/core/ContextEdgeCasesTest.cpp.o.d"
  "/root/repo/tests/core/OfflineAdvisorTest.cpp" "tests/CMakeFiles/cswitch_tests.dir/core/OfflineAdvisorTest.cpp.o" "gcc" "tests/CMakeFiles/cswitch_tests.dir/core/OfflineAdvisorTest.cpp.o.d"
  "/root/repo/tests/core/ProfileTraceTest.cpp" "tests/CMakeFiles/cswitch_tests.dir/core/ProfileTraceTest.cpp.o" "gcc" "tests/CMakeFiles/cswitch_tests.dir/core/ProfileTraceTest.cpp.o.d"
  "/root/repo/tests/core/SiteMacrosTest.cpp" "tests/CMakeFiles/cswitch_tests.dir/core/SiteMacrosTest.cpp.o" "gcc" "tests/CMakeFiles/cswitch_tests.dir/core/SiteMacrosTest.cpp.o.d"
  "/root/repo/tests/core/SwitchApiTest.cpp" "tests/CMakeFiles/cswitch_tests.dir/core/SwitchApiTest.cpp.o" "gcc" "tests/CMakeFiles/cswitch_tests.dir/core/SwitchApiTest.cpp.o.d"
  "/root/repo/tests/core/SwitchEngineTest.cpp" "tests/CMakeFiles/cswitch_tests.dir/core/SwitchEngineTest.cpp.o" "gcc" "tests/CMakeFiles/cswitch_tests.dir/core/SwitchEngineTest.cpp.o.d"
  "/root/repo/tests/core/VariantSelectionTest.cpp" "tests/CMakeFiles/cswitch_tests.dir/core/VariantSelectionTest.cpp.o" "gcc" "tests/CMakeFiles/cswitch_tests.dir/core/VariantSelectionTest.cpp.o.d"
  "/root/repo/tests/model/CostModelTest.cpp" "tests/CMakeFiles/cswitch_tests.dir/model/CostModelTest.cpp.o" "gcc" "tests/CMakeFiles/cswitch_tests.dir/model/CostModelTest.cpp.o.d"
  "/root/repo/tests/model/DefaultModelTest.cpp" "tests/CMakeFiles/cswitch_tests.dir/model/DefaultModelTest.cpp.o" "gcc" "tests/CMakeFiles/cswitch_tests.dir/model/DefaultModelTest.cpp.o.d"
  "/root/repo/tests/model/EnergyModelTest.cpp" "tests/CMakeFiles/cswitch_tests.dir/model/EnergyModelTest.cpp.o" "gcc" "tests/CMakeFiles/cswitch_tests.dir/model/EnergyModelTest.cpp.o.d"
  "/root/repo/tests/model/ModelBuilderTest.cpp" "tests/CMakeFiles/cswitch_tests.dir/model/ModelBuilderTest.cpp.o" "gcc" "tests/CMakeFiles/cswitch_tests.dir/model/ModelBuilderTest.cpp.o.d"
  "/root/repo/tests/model/ModelSerializationFuzzTest.cpp" "tests/CMakeFiles/cswitch_tests.dir/model/ModelSerializationFuzzTest.cpp.o" "gcc" "tests/CMakeFiles/cswitch_tests.dir/model/ModelSerializationFuzzTest.cpp.o.d"
  "/root/repo/tests/model/ThresholdAnalyzerTest.cpp" "tests/CMakeFiles/cswitch_tests.dir/model/ThresholdAnalyzerTest.cpp.o" "gcc" "tests/CMakeFiles/cswitch_tests.dir/model/ThresholdAnalyzerTest.cpp.o.d"
  "/root/repo/tests/profile/WorkloadProfileTest.cpp" "tests/CMakeFiles/cswitch_tests.dir/profile/WorkloadProfileTest.cpp.o" "gcc" "tests/CMakeFiles/cswitch_tests.dir/profile/WorkloadProfileTest.cpp.o.d"
  "/root/repo/tests/rewriter/RewriterTest.cpp" "tests/CMakeFiles/cswitch_tests.dir/rewriter/RewriterTest.cpp.o" "gcc" "tests/CMakeFiles/cswitch_tests.dir/rewriter/RewriterTest.cpp.o.d"
  "/root/repo/tests/support/BenchmarkRunnerTest.cpp" "tests/CMakeFiles/cswitch_tests.dir/support/BenchmarkRunnerTest.cpp.o" "gcc" "tests/CMakeFiles/cswitch_tests.dir/support/BenchmarkRunnerTest.cpp.o.d"
  "/root/repo/tests/support/EventLogTest.cpp" "tests/CMakeFiles/cswitch_tests.dir/support/EventLogTest.cpp.o" "gcc" "tests/CMakeFiles/cswitch_tests.dir/support/EventLogTest.cpp.o.d"
  "/root/repo/tests/support/FunctionRefTest.cpp" "tests/CMakeFiles/cswitch_tests.dir/support/FunctionRefTest.cpp.o" "gcc" "tests/CMakeFiles/cswitch_tests.dir/support/FunctionRefTest.cpp.o.d"
  "/root/repo/tests/support/HashingTest.cpp" "tests/CMakeFiles/cswitch_tests.dir/support/HashingTest.cpp.o" "gcc" "tests/CMakeFiles/cswitch_tests.dir/support/HashingTest.cpp.o.d"
  "/root/repo/tests/support/LeastSquaresTest.cpp" "tests/CMakeFiles/cswitch_tests.dir/support/LeastSquaresTest.cpp.o" "gcc" "tests/CMakeFiles/cswitch_tests.dir/support/LeastSquaresTest.cpp.o.d"
  "/root/repo/tests/support/MemoryTrackerTest.cpp" "tests/CMakeFiles/cswitch_tests.dir/support/MemoryTrackerTest.cpp.o" "gcc" "tests/CMakeFiles/cswitch_tests.dir/support/MemoryTrackerTest.cpp.o.d"
  "/root/repo/tests/support/PolynomialTest.cpp" "tests/CMakeFiles/cswitch_tests.dir/support/PolynomialTest.cpp.o" "gcc" "tests/CMakeFiles/cswitch_tests.dir/support/PolynomialTest.cpp.o.d"
  "/root/repo/tests/support/RandomTest.cpp" "tests/CMakeFiles/cswitch_tests.dir/support/RandomTest.cpp.o" "gcc" "tests/CMakeFiles/cswitch_tests.dir/support/RandomTest.cpp.o.d"
  "/root/repo/tests/support/StatisticsTest.cpp" "tests/CMakeFiles/cswitch_tests.dir/support/StatisticsTest.cpp.o" "gcc" "tests/CMakeFiles/cswitch_tests.dir/support/StatisticsTest.cpp.o.d"
  "/root/repo/tests/support/TelemetryTest.cpp" "tests/CMakeFiles/cswitch_tests.dir/support/TelemetryTest.cpp.o" "gcc" "tests/CMakeFiles/cswitch_tests.dir/support/TelemetryTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/rewriter/CMakeFiles/cswitch_rewriter_lib.dir/DependInfo.cmake"
  "/root/repo/build-review/src/apps/CMakeFiles/cswitch_apps.dir/DependInfo.cmake"
  "/root/repo/build-review/src/core/CMakeFiles/cswitch_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/model/CMakeFiles/cswitch_model.dir/DependInfo.cmake"
  "/root/repo/build-review/src/collections/CMakeFiles/cswitch_collections.dir/DependInfo.cmake"
  "/root/repo/build-review/src/profile/CMakeFiles/cswitch_profile.dir/DependInfo.cmake"
  "/root/repo/build-review/src/support/CMakeFiles/cswitch_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
