# Empty compiler generated dependencies file for cswitch_tests.
# This may be replaced when dependencies are built.
