file(REMOVE_RECURSE
  "libcswitch_core.a"
)
