
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/AllocationContext.cpp" "src/core/CMakeFiles/cswitch_core.dir/AllocationContext.cpp.o" "gcc" "src/core/CMakeFiles/cswitch_core.dir/AllocationContext.cpp.o.d"
  "/root/repo/src/core/OfflineAdvisor.cpp" "src/core/CMakeFiles/cswitch_core.dir/OfflineAdvisor.cpp.o" "gcc" "src/core/CMakeFiles/cswitch_core.dir/OfflineAdvisor.cpp.o.d"
  "/root/repo/src/core/ProfileTrace.cpp" "src/core/CMakeFiles/cswitch_core.dir/ProfileTrace.cpp.o" "gcc" "src/core/CMakeFiles/cswitch_core.dir/ProfileTrace.cpp.o.d"
  "/root/repo/src/core/SelectionRule.cpp" "src/core/CMakeFiles/cswitch_core.dir/SelectionRule.cpp.o" "gcc" "src/core/CMakeFiles/cswitch_core.dir/SelectionRule.cpp.o.d"
  "/root/repo/src/core/Switch.cpp" "src/core/CMakeFiles/cswitch_core.dir/Switch.cpp.o" "gcc" "src/core/CMakeFiles/cswitch_core.dir/Switch.cpp.o.d"
  "/root/repo/src/core/SwitchEngine.cpp" "src/core/CMakeFiles/cswitch_core.dir/SwitchEngine.cpp.o" "gcc" "src/core/CMakeFiles/cswitch_core.dir/SwitchEngine.cpp.o.d"
  "/root/repo/src/core/VariantSelection.cpp" "src/core/CMakeFiles/cswitch_core.dir/VariantSelection.cpp.o" "gcc" "src/core/CMakeFiles/cswitch_core.dir/VariantSelection.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/model/CMakeFiles/cswitch_model.dir/DependInfo.cmake"
  "/root/repo/build-review/src/collections/CMakeFiles/cswitch_collections.dir/DependInfo.cmake"
  "/root/repo/build-review/src/profile/CMakeFiles/cswitch_profile.dir/DependInfo.cmake"
  "/root/repo/build-review/src/support/CMakeFiles/cswitch_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
