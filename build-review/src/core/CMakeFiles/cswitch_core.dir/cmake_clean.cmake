file(REMOVE_RECURSE
  "CMakeFiles/cswitch_core.dir/AllocationContext.cpp.o"
  "CMakeFiles/cswitch_core.dir/AllocationContext.cpp.o.d"
  "CMakeFiles/cswitch_core.dir/OfflineAdvisor.cpp.o"
  "CMakeFiles/cswitch_core.dir/OfflineAdvisor.cpp.o.d"
  "CMakeFiles/cswitch_core.dir/ProfileTrace.cpp.o"
  "CMakeFiles/cswitch_core.dir/ProfileTrace.cpp.o.d"
  "CMakeFiles/cswitch_core.dir/SelectionRule.cpp.o"
  "CMakeFiles/cswitch_core.dir/SelectionRule.cpp.o.d"
  "CMakeFiles/cswitch_core.dir/Switch.cpp.o"
  "CMakeFiles/cswitch_core.dir/Switch.cpp.o.d"
  "CMakeFiles/cswitch_core.dir/SwitchEngine.cpp.o"
  "CMakeFiles/cswitch_core.dir/SwitchEngine.cpp.o.d"
  "CMakeFiles/cswitch_core.dir/VariantSelection.cpp.o"
  "CMakeFiles/cswitch_core.dir/VariantSelection.cpp.o.d"
  "libcswitch_core.a"
  "libcswitch_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cswitch_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
