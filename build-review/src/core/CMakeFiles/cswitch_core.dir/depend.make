# Empty dependencies file for cswitch_core.
# This may be replaced when dependencies are built.
