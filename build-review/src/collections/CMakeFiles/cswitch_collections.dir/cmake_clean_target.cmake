file(REMOVE_RECURSE
  "libcswitch_collections.a"
)
