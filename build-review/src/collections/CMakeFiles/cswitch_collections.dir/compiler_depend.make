# Empty compiler generated dependencies file for cswitch_collections.
# This may be replaced when dependencies are built.
