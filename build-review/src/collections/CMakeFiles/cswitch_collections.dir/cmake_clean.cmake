file(REMOVE_RECURSE
  "CMakeFiles/cswitch_collections.dir/AdaptiveConfig.cpp.o"
  "CMakeFiles/cswitch_collections.dir/AdaptiveConfig.cpp.o.d"
  "CMakeFiles/cswitch_collections.dir/Variants.cpp.o"
  "CMakeFiles/cswitch_collections.dir/Variants.cpp.o.d"
  "libcswitch_collections.a"
  "libcswitch_collections.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cswitch_collections.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
