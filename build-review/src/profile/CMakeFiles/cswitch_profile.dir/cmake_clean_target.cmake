file(REMOVE_RECURSE
  "libcswitch_profile.a"
)
