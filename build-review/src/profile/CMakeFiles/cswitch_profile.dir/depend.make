# Empty dependencies file for cswitch_profile.
# This may be replaced when dependencies are built.
