file(REMOVE_RECURSE
  "CMakeFiles/cswitch_profile.dir/OperationKind.cpp.o"
  "CMakeFiles/cswitch_profile.dir/OperationKind.cpp.o.d"
  "CMakeFiles/cswitch_profile.dir/WorkloadProfile.cpp.o"
  "CMakeFiles/cswitch_profile.dir/WorkloadProfile.cpp.o.d"
  "libcswitch_profile.a"
  "libcswitch_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cswitch_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
