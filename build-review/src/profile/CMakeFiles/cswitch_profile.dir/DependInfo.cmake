
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/profile/OperationKind.cpp" "src/profile/CMakeFiles/cswitch_profile.dir/OperationKind.cpp.o" "gcc" "src/profile/CMakeFiles/cswitch_profile.dir/OperationKind.cpp.o.d"
  "/root/repo/src/profile/WorkloadProfile.cpp" "src/profile/CMakeFiles/cswitch_profile.dir/WorkloadProfile.cpp.o" "gcc" "src/profile/CMakeFiles/cswitch_profile.dir/WorkloadProfile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/support/CMakeFiles/cswitch_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
