# Empty dependencies file for cswitch_rewriter_lib.
# This may be replaced when dependencies are built.
