file(REMOVE_RECURSE
  "CMakeFiles/cswitch_rewriter_lib.dir/Rewriter.cpp.o"
  "CMakeFiles/cswitch_rewriter_lib.dir/Rewriter.cpp.o.d"
  "libcswitch_rewriter_lib.a"
  "libcswitch_rewriter_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cswitch_rewriter_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
