file(REMOVE_RECURSE
  "libcswitch_rewriter_lib.a"
)
