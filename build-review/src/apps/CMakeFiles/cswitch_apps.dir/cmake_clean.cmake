file(REMOVE_RECURSE
  "CMakeFiles/cswitch_apps.dir/AppHarness.cpp.o"
  "CMakeFiles/cswitch_apps.dir/AppHarness.cpp.o.d"
  "CMakeFiles/cswitch_apps.dir/Apps.cpp.o"
  "CMakeFiles/cswitch_apps.dir/Apps.cpp.o.d"
  "CMakeFiles/cswitch_apps.dir/AvroraSim.cpp.o"
  "CMakeFiles/cswitch_apps.dir/AvroraSim.cpp.o.d"
  "CMakeFiles/cswitch_apps.dir/BloatSim.cpp.o"
  "CMakeFiles/cswitch_apps.dir/BloatSim.cpp.o.d"
  "CMakeFiles/cswitch_apps.dir/FopSim.cpp.o"
  "CMakeFiles/cswitch_apps.dir/FopSim.cpp.o.d"
  "CMakeFiles/cswitch_apps.dir/H2Sim.cpp.o"
  "CMakeFiles/cswitch_apps.dir/H2Sim.cpp.o.d"
  "CMakeFiles/cswitch_apps.dir/LusearchSim.cpp.o"
  "CMakeFiles/cswitch_apps.dir/LusearchSim.cpp.o.d"
  "libcswitch_apps.a"
  "libcswitch_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cswitch_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
