# Empty compiler generated dependencies file for cswitch_apps.
# This may be replaced when dependencies are built.
