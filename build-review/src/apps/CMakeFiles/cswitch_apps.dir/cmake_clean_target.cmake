file(REMOVE_RECURSE
  "libcswitch_apps.a"
)
