
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/AppHarness.cpp" "src/apps/CMakeFiles/cswitch_apps.dir/AppHarness.cpp.o" "gcc" "src/apps/CMakeFiles/cswitch_apps.dir/AppHarness.cpp.o.d"
  "/root/repo/src/apps/Apps.cpp" "src/apps/CMakeFiles/cswitch_apps.dir/Apps.cpp.o" "gcc" "src/apps/CMakeFiles/cswitch_apps.dir/Apps.cpp.o.d"
  "/root/repo/src/apps/AvroraSim.cpp" "src/apps/CMakeFiles/cswitch_apps.dir/AvroraSim.cpp.o" "gcc" "src/apps/CMakeFiles/cswitch_apps.dir/AvroraSim.cpp.o.d"
  "/root/repo/src/apps/BloatSim.cpp" "src/apps/CMakeFiles/cswitch_apps.dir/BloatSim.cpp.o" "gcc" "src/apps/CMakeFiles/cswitch_apps.dir/BloatSim.cpp.o.d"
  "/root/repo/src/apps/FopSim.cpp" "src/apps/CMakeFiles/cswitch_apps.dir/FopSim.cpp.o" "gcc" "src/apps/CMakeFiles/cswitch_apps.dir/FopSim.cpp.o.d"
  "/root/repo/src/apps/H2Sim.cpp" "src/apps/CMakeFiles/cswitch_apps.dir/H2Sim.cpp.o" "gcc" "src/apps/CMakeFiles/cswitch_apps.dir/H2Sim.cpp.o.d"
  "/root/repo/src/apps/LusearchSim.cpp" "src/apps/CMakeFiles/cswitch_apps.dir/LusearchSim.cpp.o" "gcc" "src/apps/CMakeFiles/cswitch_apps.dir/LusearchSim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/core/CMakeFiles/cswitch_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/model/CMakeFiles/cswitch_model.dir/DependInfo.cmake"
  "/root/repo/build-review/src/collections/CMakeFiles/cswitch_collections.dir/DependInfo.cmake"
  "/root/repo/build-review/src/profile/CMakeFiles/cswitch_profile.dir/DependInfo.cmake"
  "/root/repo/build-review/src/support/CMakeFiles/cswitch_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
