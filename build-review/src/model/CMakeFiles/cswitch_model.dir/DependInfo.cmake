
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/CostModel.cpp" "src/model/CMakeFiles/cswitch_model.dir/CostModel.cpp.o" "gcc" "src/model/CMakeFiles/cswitch_model.dir/CostModel.cpp.o.d"
  "/root/repo/src/model/DefaultModel.cpp" "src/model/CMakeFiles/cswitch_model.dir/DefaultModel.cpp.o" "gcc" "src/model/CMakeFiles/cswitch_model.dir/DefaultModel.cpp.o.d"
  "/root/repo/src/model/EnergyModel.cpp" "src/model/CMakeFiles/cswitch_model.dir/EnergyModel.cpp.o" "gcc" "src/model/CMakeFiles/cswitch_model.dir/EnergyModel.cpp.o.d"
  "/root/repo/src/model/ModelBuilder.cpp" "src/model/CMakeFiles/cswitch_model.dir/ModelBuilder.cpp.o" "gcc" "src/model/CMakeFiles/cswitch_model.dir/ModelBuilder.cpp.o.d"
  "/root/repo/src/model/ThresholdAnalyzer.cpp" "src/model/CMakeFiles/cswitch_model.dir/ThresholdAnalyzer.cpp.o" "gcc" "src/model/CMakeFiles/cswitch_model.dir/ThresholdAnalyzer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/collections/CMakeFiles/cswitch_collections.dir/DependInfo.cmake"
  "/root/repo/build-review/src/profile/CMakeFiles/cswitch_profile.dir/DependInfo.cmake"
  "/root/repo/build-review/src/support/CMakeFiles/cswitch_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
