file(REMOVE_RECURSE
  "CMakeFiles/cswitch_model.dir/CostModel.cpp.o"
  "CMakeFiles/cswitch_model.dir/CostModel.cpp.o.d"
  "CMakeFiles/cswitch_model.dir/DefaultModel.cpp.o"
  "CMakeFiles/cswitch_model.dir/DefaultModel.cpp.o.d"
  "CMakeFiles/cswitch_model.dir/EnergyModel.cpp.o"
  "CMakeFiles/cswitch_model.dir/EnergyModel.cpp.o.d"
  "CMakeFiles/cswitch_model.dir/ModelBuilder.cpp.o"
  "CMakeFiles/cswitch_model.dir/ModelBuilder.cpp.o.d"
  "CMakeFiles/cswitch_model.dir/ThresholdAnalyzer.cpp.o"
  "CMakeFiles/cswitch_model.dir/ThresholdAnalyzer.cpp.o.d"
  "libcswitch_model.a"
  "libcswitch_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cswitch_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
