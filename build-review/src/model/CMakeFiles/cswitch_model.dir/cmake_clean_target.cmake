file(REMOVE_RECURSE
  "libcswitch_model.a"
)
