# Empty dependencies file for cswitch_model.
# This may be replaced when dependencies are built.
