file(REMOVE_RECURSE
  "CMakeFiles/cswitch_support.dir/BenchmarkRunner.cpp.o"
  "CMakeFiles/cswitch_support.dir/BenchmarkRunner.cpp.o.d"
  "CMakeFiles/cswitch_support.dir/EventLog.cpp.o"
  "CMakeFiles/cswitch_support.dir/EventLog.cpp.o.d"
  "CMakeFiles/cswitch_support.dir/LeastSquares.cpp.o"
  "CMakeFiles/cswitch_support.dir/LeastSquares.cpp.o.d"
  "CMakeFiles/cswitch_support.dir/MemoryTracker.cpp.o"
  "CMakeFiles/cswitch_support.dir/MemoryTracker.cpp.o.d"
  "CMakeFiles/cswitch_support.dir/MetricsExport.cpp.o"
  "CMakeFiles/cswitch_support.dir/MetricsExport.cpp.o.d"
  "CMakeFiles/cswitch_support.dir/Polynomial.cpp.o"
  "CMakeFiles/cswitch_support.dir/Polynomial.cpp.o.d"
  "CMakeFiles/cswitch_support.dir/Random.cpp.o"
  "CMakeFiles/cswitch_support.dir/Random.cpp.o.d"
  "CMakeFiles/cswitch_support.dir/Statistics.cpp.o"
  "CMakeFiles/cswitch_support.dir/Statistics.cpp.o.d"
  "CMakeFiles/cswitch_support.dir/Telemetry.cpp.o"
  "CMakeFiles/cswitch_support.dir/Telemetry.cpp.o.d"
  "libcswitch_support.a"
  "libcswitch_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cswitch_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
