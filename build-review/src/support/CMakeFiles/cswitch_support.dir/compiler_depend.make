# Empty compiler generated dependencies file for cswitch_support.
# This may be replaced when dependencies are built.
