file(REMOVE_RECURSE
  "libcswitch_support.a"
)
