
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/support/BenchmarkRunner.cpp" "src/support/CMakeFiles/cswitch_support.dir/BenchmarkRunner.cpp.o" "gcc" "src/support/CMakeFiles/cswitch_support.dir/BenchmarkRunner.cpp.o.d"
  "/root/repo/src/support/EventLog.cpp" "src/support/CMakeFiles/cswitch_support.dir/EventLog.cpp.o" "gcc" "src/support/CMakeFiles/cswitch_support.dir/EventLog.cpp.o.d"
  "/root/repo/src/support/LeastSquares.cpp" "src/support/CMakeFiles/cswitch_support.dir/LeastSquares.cpp.o" "gcc" "src/support/CMakeFiles/cswitch_support.dir/LeastSquares.cpp.o.d"
  "/root/repo/src/support/MemoryTracker.cpp" "src/support/CMakeFiles/cswitch_support.dir/MemoryTracker.cpp.o" "gcc" "src/support/CMakeFiles/cswitch_support.dir/MemoryTracker.cpp.o.d"
  "/root/repo/src/support/MetricsExport.cpp" "src/support/CMakeFiles/cswitch_support.dir/MetricsExport.cpp.o" "gcc" "src/support/CMakeFiles/cswitch_support.dir/MetricsExport.cpp.o.d"
  "/root/repo/src/support/Polynomial.cpp" "src/support/CMakeFiles/cswitch_support.dir/Polynomial.cpp.o" "gcc" "src/support/CMakeFiles/cswitch_support.dir/Polynomial.cpp.o.d"
  "/root/repo/src/support/Random.cpp" "src/support/CMakeFiles/cswitch_support.dir/Random.cpp.o" "gcc" "src/support/CMakeFiles/cswitch_support.dir/Random.cpp.o.d"
  "/root/repo/src/support/Statistics.cpp" "src/support/CMakeFiles/cswitch_support.dir/Statistics.cpp.o" "gcc" "src/support/CMakeFiles/cswitch_support.dir/Statistics.cpp.o.d"
  "/root/repo/src/support/Telemetry.cpp" "src/support/CMakeFiles/cswitch_support.dir/Telemetry.cpp.o" "gcc" "src/support/CMakeFiles/cswitch_support.dir/Telemetry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
