file(REMOVE_RECURSE
  "CMakeFiles/adaptive_tour.dir/adaptive_tour.cpp.o"
  "CMakeFiles/adaptive_tour.dir/adaptive_tour.cpp.o.d"
  "adaptive_tour"
  "adaptive_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
