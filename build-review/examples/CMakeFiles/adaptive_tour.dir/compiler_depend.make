# Empty compiler generated dependencies file for adaptive_tour.
# This may be replaced when dependencies are built.
