file(REMOVE_RECURSE
  "CMakeFiles/text_search.dir/text_search.cpp.o"
  "CMakeFiles/text_search.dir/text_search.cpp.o.d"
  "text_search"
  "text_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
