# Empty dependencies file for text_search.
# This may be replaced when dependencies are built.
