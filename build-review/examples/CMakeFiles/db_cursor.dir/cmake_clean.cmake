file(REMOVE_RECURSE
  "CMakeFiles/db_cursor.dir/db_cursor.cpp.o"
  "CMakeFiles/db_cursor.dir/db_cursor.cpp.o.d"
  "db_cursor"
  "db_cursor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_cursor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
