# Empty dependencies file for db_cursor.
# This may be replaced when dependencies are built.
