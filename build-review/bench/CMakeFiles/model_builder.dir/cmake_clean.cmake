file(REMOVE_RECURSE
  "CMakeFiles/model_builder.dir/model_builder.cpp.o"
  "CMakeFiles/model_builder.dir/model_builder.cpp.o.d"
  "model_builder"
  "model_builder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_builder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
