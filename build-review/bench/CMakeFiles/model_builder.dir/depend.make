# Empty dependencies file for model_builder.
# This may be replaced when dependencies are built.
