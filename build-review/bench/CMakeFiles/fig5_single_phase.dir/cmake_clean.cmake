file(REMOVE_RECURSE
  "CMakeFiles/fig5_single_phase.dir/fig5_single_phase.cpp.o"
  "CMakeFiles/fig5_single_phase.dir/fig5_single_phase.cpp.o.d"
  "fig5_single_phase"
  "fig5_single_phase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_single_phase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
