# Empty compiler generated dependencies file for fig5_single_phase.
# This may be replaced when dependencies are built.
