# Empty compiler generated dependencies file for ablation_parameters.
# This may be replaced when dependencies are built.
