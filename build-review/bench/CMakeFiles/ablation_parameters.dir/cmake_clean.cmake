file(REMOVE_RECURSE
  "CMakeFiles/ablation_parameters.dir/ablation_parameters.cpp.o"
  "CMakeFiles/ablation_parameters.dir/ablation_parameters.cpp.o.d"
  "ablation_parameters"
  "ablation_parameters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_parameters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
