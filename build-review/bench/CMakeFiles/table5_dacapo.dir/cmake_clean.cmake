file(REMOVE_RECURSE
  "CMakeFiles/table5_dacapo.dir/table5_dacapo.cpp.o"
  "CMakeFiles/table5_dacapo.dir/table5_dacapo.cpp.o.d"
  "table5_dacapo"
  "table5_dacapo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_dacapo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
