# Empty dependencies file for table5_dacapo.
# This may be replaced when dependencies are built.
