# Empty compiler generated dependencies file for fig6_multi_phase.
# This may be replaced when dependencies are built.
