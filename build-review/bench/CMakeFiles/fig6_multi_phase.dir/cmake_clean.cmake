file(REMOVE_RECURSE
  "CMakeFiles/fig6_multi_phase.dir/fig6_multi_phase.cpp.o"
  "CMakeFiles/fig6_multi_phase.dir/fig6_multi_phase.cpp.o.d"
  "fig6_multi_phase"
  "fig6_multi_phase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_multi_phase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
