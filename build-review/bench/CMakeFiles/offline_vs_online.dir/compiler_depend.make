# Empty compiler generated dependencies file for offline_vs_online.
# This may be replaced when dependencies are built.
