file(REMOVE_RECURSE
  "CMakeFiles/offline_vs_online.dir/offline_vs_online.cpp.o"
  "CMakeFiles/offline_vs_online.dir/offline_vs_online.cpp.o.d"
  "offline_vs_online"
  "offline_vs_online.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offline_vs_online.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
