
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table6_transitions.cpp" "bench/CMakeFiles/table6_transitions.dir/table6_transitions.cpp.o" "gcc" "bench/CMakeFiles/table6_transitions.dir/table6_transitions.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/rewriter/CMakeFiles/cswitch_rewriter_lib.dir/DependInfo.cmake"
  "/root/repo/build-review/src/apps/CMakeFiles/cswitch_apps.dir/DependInfo.cmake"
  "/root/repo/build-review/src/core/CMakeFiles/cswitch_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/model/CMakeFiles/cswitch_model.dir/DependInfo.cmake"
  "/root/repo/build-review/src/collections/CMakeFiles/cswitch_collections.dir/DependInfo.cmake"
  "/root/repo/build-review/src/profile/CMakeFiles/cswitch_profile.dir/DependInfo.cmake"
  "/root/repo/build-review/src/support/CMakeFiles/cswitch_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
