file(REMOVE_RECURSE
  "CMakeFiles/table6_transitions.dir/table6_transitions.cpp.o"
  "CMakeFiles/table6_transitions.dir/table6_transitions.cpp.o.d"
  "table6_transitions"
  "table6_transitions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_transitions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
