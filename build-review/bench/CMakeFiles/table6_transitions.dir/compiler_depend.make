# Empty compiler generated dependencies file for table6_transitions.
# This may be replaced when dependencies are built.
