file(REMOVE_RECURSE
  "CMakeFiles/table4_rules.dir/table4_rules.cpp.o"
  "CMakeFiles/table4_rules.dir/table4_rules.cpp.o.d"
  "table4_rules"
  "table4_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
