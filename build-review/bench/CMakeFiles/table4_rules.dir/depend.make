# Empty dependencies file for table4_rules.
# This may be replaced when dependencies are built.
