# Empty dependencies file for overhead_impossible_rule.
# This may be replaced when dependencies are built.
