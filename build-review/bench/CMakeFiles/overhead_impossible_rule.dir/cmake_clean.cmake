file(REMOVE_RECURSE
  "CMakeFiles/overhead_impossible_rule.dir/overhead_impossible_rule.cpp.o"
  "CMakeFiles/overhead_impossible_rule.dir/overhead_impossible_rule.cpp.o.d"
  "overhead_impossible_rule"
  "overhead_impossible_rule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overhead_impossible_rule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
