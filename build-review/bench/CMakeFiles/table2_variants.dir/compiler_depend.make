# Empty compiler generated dependencies file for table2_variants.
# This may be replaced when dependencies are built.
