file(REMOVE_RECURSE
  "CMakeFiles/table2_variants.dir/table2_variants.cpp.o"
  "CMakeFiles/table2_variants.dir/table2_variants.cpp.o.d"
  "table2_variants"
  "table2_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
