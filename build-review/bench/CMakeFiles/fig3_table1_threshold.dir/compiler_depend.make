# Empty compiler generated dependencies file for fig3_table1_threshold.
# This may be replaced when dependencies are built.
