file(REMOVE_RECURSE
  "CMakeFiles/fig3_table1_threshold.dir/fig3_table1_threshold.cpp.o"
  "CMakeFiles/fig3_table1_threshold.dir/fig3_table1_threshold.cpp.o.d"
  "fig3_table1_threshold"
  "fig3_table1_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_table1_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
