file(REMOVE_RECURSE
  "CMakeFiles/renergy_extension.dir/renergy_extension.cpp.o"
  "CMakeFiles/renergy_extension.dir/renergy_extension.cpp.o.d"
  "renergy_extension"
  "renergy_extension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/renergy_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
