# Empty dependencies file for renergy_extension.
# This may be replaced when dependencies are built.
