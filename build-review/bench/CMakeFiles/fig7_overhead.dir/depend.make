# Empty dependencies file for fig7_overhead.
# This may be replaced when dependencies are built.
