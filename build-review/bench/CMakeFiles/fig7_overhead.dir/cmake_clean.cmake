file(REMOVE_RECURSE
  "CMakeFiles/fig7_overhead.dir/fig7_overhead.cpp.o"
  "CMakeFiles/fig7_overhead.dir/fig7_overhead.cpp.o.d"
  "fig7_overhead"
  "fig7_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
