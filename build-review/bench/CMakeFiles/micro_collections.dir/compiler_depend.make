# Empty compiler generated dependencies file for micro_collections.
# This may be replaced when dependencies are built.
