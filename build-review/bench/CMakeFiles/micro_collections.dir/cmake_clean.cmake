file(REMOVE_RECURSE
  "CMakeFiles/micro_collections.dir/micro_collections.cpp.o"
  "CMakeFiles/micro_collections.dir/micro_collections.cpp.o.d"
  "micro_collections"
  "micro_collections.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_collections.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
