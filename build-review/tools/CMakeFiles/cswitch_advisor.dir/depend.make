# Empty dependencies file for cswitch_advisor.
# This may be replaced when dependencies are built.
