file(REMOVE_RECURSE
  "CMakeFiles/cswitch_advisor.dir/cswitch_advisor.cpp.o"
  "CMakeFiles/cswitch_advisor.dir/cswitch_advisor.cpp.o.d"
  "cswitch_advisor"
  "cswitch_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cswitch_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
