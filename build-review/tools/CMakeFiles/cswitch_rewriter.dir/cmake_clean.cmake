file(REMOVE_RECURSE
  "CMakeFiles/cswitch_rewriter.dir/cswitch_rewriter.cpp.o"
  "CMakeFiles/cswitch_rewriter.dir/cswitch_rewriter.cpp.o.d"
  "cswitch_rewriter"
  "cswitch_rewriter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cswitch_rewriter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
