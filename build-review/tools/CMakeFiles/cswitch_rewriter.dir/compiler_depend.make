# Empty compiler generated dependencies file for cswitch_rewriter.
# This may be replaced when dependencies are built.
