//===- IntegrationTest.cpp - Cross-module integration tests -----------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end flows spanning all modules: measured model -> threshold
/// installation -> context adaptation; the multi-phase workload of
/// Fig. 6; and the event-log trail Table 6 is built from.
///
//===----------------------------------------------------------------------===//

#include "apps/Apps.h"
#include "core/Switch.h"
#include "model/DefaultModel.h"
#include "model/ModelBuilder.h"
#include "model/ThresholdAnalyzer.h"
#include "support/EventLog.h"

#include <gtest/gtest.h>

using namespace cswitch;

namespace {

TEST(Integration, MeasuredModelDrivesSelectionLikeDefaultModel) {
  // Build a (tiny) measured model on this machine, then verify a
  // lookup-heavy list site still converges to a hash-backed variant —
  // the machine-independent shape the paper relies on.
  ModelBuildOptions Options;
  Options.Sizes = {16, 128, 512};
  Options.WarmupIterations = 0;
  Options.MeasuredIterations = 1;
  Options.MinSampleNanos = 5000;
  Options.PolynomialDegree = 2;
  ModelBuilder Builder(Options);
  PerformanceModel Measured;
  Builder.buildListModels(Measured);
  auto Model = std::make_shared<const PerformanceModel>(std::move(Measured));

  ContextOptions CtxOptions;
  CtxOptions.WindowSize = 10;
  CtxOptions.LogEvents = false;
  ListContext<int64_t> Ctx("int:measured", ListVariant::ArrayList, Model,
                           SelectionRule::timeRule(), CtxOptions);
  for (int I = 0; I != 10; ++I) {
    List<int64_t> L = Ctx.createList();
    for (int64_t V = 0; V != 500; ++V)
      L.add(V);
    for (int64_t V = 0; V != 5000; ++V)
      (void)L.contains(V);
  }
  ASSERT_TRUE(Ctx.evaluate());
  std::string Name = Ctx.currentVariant().name();
  EXPECT_TRUE(Name == "HashArrayList" || Name == "AdaptiveList") << Name;
}

TEST(Integration, ThresholdAnalyzerFeedsAdaptiveConfig) {
  PerformanceModel Model = defaultPerformanceModel();
  ThresholdAnalyzer Analyzer(Model);
  AdaptiveThresholds Old = AdaptiveConfig::global().thresholds();
  AdaptiveThresholds Computed = Analyzer.computeAll();
  AdaptiveConfig::global().setThresholds(Computed);
  AdaptiveSetImpl<int64_t> S;
  EXPECT_EQ(S.threshold(), Computed.Set);
  AdaptiveConfig::global().setThresholds(Old);
}

TEST(Integration, MultiPhaseWorkloadTracksPhases) {
  // The Fig. 6 scenario in miniature: contains -> iterate -> index ->
  // search&remove -> contains; the context should adapt per phase.
  auto Model =
      std::make_shared<const PerformanceModel>(defaultPerformanceModel());
  ContextOptions CtxOptions;
  CtxOptions.WindowSize = 10;
  CtxOptions.LogEvents = false;
  ListContext<int64_t> Ctx("int:phases", ListVariant::LinkedList, Model,
                           SelectionRule::timeRule(), CtxOptions);

  auto RunPhase = [&Ctx](auto &&Workload) {
    for (int I = 0; I != 10; ++I) {
      List<int64_t> L = Ctx.createList();
      for (int64_t V = 0; V != 300; ++V)
        L.add(V);
      Workload(L);
    }
    Ctx.evaluate();
  };

  // Phase 1: contains-heavy -> hash-backed list expected.
  RunPhase([](List<int64_t> &L) {
    for (int64_t V = 0; V != 2000; ++V)
      (void)L.contains(V);
  });
  EXPECT_EQ(Ctx.currentVariant().name(), "HashArrayList");

  // Phase 2: index-access heavy -> ArrayList-family expected.
  RunPhase([](List<int64_t> &L) {
    for (size_t I = 0; I != 2000; ++I)
      (void)L.get(I % 300);
  });
  EXPECT_NE(Ctx.currentVariant().name(), "LinkedList");

  // Phase 3: search-and-remove -> ArrayList (HashArrayList removal is
  // modelled as expensive).
  RunPhase([](List<int64_t> &L) {
    for (int64_t V = 0; V != 300; ++V)
      (void)L.remove(V);
  });
  EXPECT_EQ(Ctx.currentVariant().name(), "ArrayList");
  EXPECT_GE(Ctx.switchCount(), 2u);
}

TEST(Integration, TransitionsAreLoggedForTable6) {
  EventLog::global().clear();
  auto Model =
      std::make_shared<const PerformanceModel>(defaultPerformanceModel());
  ContextOptions CtxOptions;
  CtxOptions.WindowSize = 10;
  CtxOptions.LogEvents = true;
  ListContext<int64_t> Ctx("int:logged", ListVariant::ArrayList, Model,
                           SelectionRule::timeRule(), CtxOptions);
  for (int I = 0; I != 10; ++I) {
    List<int64_t> L = Ctx.createList();
    for (int64_t V = 0; V != 400; ++V)
      L.add(V);
    for (int64_t V = 0; V != 3000; ++V)
      (void)L.contains(V);
  }
  ASSERT_TRUE(Ctx.evaluate());
  std::vector<Event> Transitions =
      EventLog::global().snapshotOfKind(EventKind::Transition);
  ASSERT_EQ(Transitions.size(), 1u);
  EXPECT_EQ(Transitions[0].Context, "int:logged");
  EXPECT_EQ(Transitions[0].Detail, "ArrayList -> HashArrayList");
  std::vector<Event> Created =
      EventLog::global().snapshotOfKind(EventKind::ContextCreated);
  ASSERT_GE(Created.size(), 1u);
  EventLog::global().clear();
}

TEST(Integration, AppRunUnderBackgroundEngine) {
  // The production configuration: contexts evaluated by the engine's
  // periodic thread while the app runs.
  AppRunConfig RC;
  RC.Config = AppConfig::FullAdap;
  RC.Rule = SelectionRule::timeRule();
  RC.Model =
      std::make_shared<const PerformanceModel>(defaultPerformanceModel());
  RC.Seed = 3;
  RC.Scale = 0.1;
  RC.CtxOptions.WindowSize = 50;
  RC.CtxOptions.LogEvents = false;
  AppResult R = runApp(AppKind::Lusearch, RC);
  EXPECT_GT(R.InstancesCreated, 100u);
  EXPECT_NE(R.Checksum, 0u);
}

} // namespace
