//===- MetricsHttpTest.cpp - Pull-endpoint end-to-end tests ---------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
//
// The introspection endpoint over a real loopback socket: ephemeral
// port binding, route dispatch with fresh render calls per request,
// content types, 404 for unknown paths, 405 for non-GET methods, and
// clean stop/restart.
//
//===----------------------------------------------------------------------===//

#include "obs/MetricsHttp.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <string>

using namespace cswitch;
using namespace cswitch::obs;

namespace {

/// Sends one raw HTTP request to 127.0.0.1:\p Port and returns the full
/// response ("" on connection failure).
std::string rawRequest(uint16_t Port, const std::string &Request) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return "";
  sockaddr_in Addr = {};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    ::close(Fd);
    return "";
  }
  size_t Sent = 0;
  while (Sent < Request.size()) {
    ssize_t N = ::send(Fd, Request.data() + Sent, Request.size() - Sent, 0);
    if (N <= 0)
      break;
    Sent += static_cast<size_t>(N);
  }
  std::string Response;
  char Buf[4096];
  ssize_t N;
  while ((N = ::recv(Fd, Buf, sizeof(Buf), 0)) > 0)
    Response.append(Buf, static_cast<size_t>(N));
  ::close(Fd);
  return Response;
}

std::string get(uint16_t Port, const std::string &Path) {
  return rawRequest(Port, "GET " + Path + " HTTP/1.0\r\n\r\n");
}

TEST(MetricsHttp, ServesRegisteredRoutesOnEphemeralPort) {
  MetricsServer Server;
  std::atomic<int> Calls{0};
  Server.handle("/metrics", "application/openmetrics-text", [&Calls] {
    return "calls " + std::to_string(++Calls) + "\n# EOF\n";
  });
  Server.handle("/snapshot.json", "application/json",
                [] { return std::string("{\"ok\":true}"); });
  ASSERT_TRUE(Server.start(0));
  ASSERT_NE(Server.port(), 0u) << "port 0 must resolve to a real port";
  EXPECT_TRUE(Server.running());

  std::string R1 = get(Server.port(), "/metrics");
  EXPECT_NE(R1.find("HTTP/1.0 200 OK"), std::string::npos) << R1;
  EXPECT_NE(R1.find("Content-Type: application/openmetrics-text"),
            std::string::npos);
  EXPECT_NE(R1.find("calls 1\n# EOF\n"), std::string::npos);
  // Each request invokes the render callback fresh.
  std::string R2 = get(Server.port(), "/metrics");
  EXPECT_NE(R2.find("calls 2\n"), std::string::npos);
  // The second route serves its own document and content type.
  std::string R3 = get(Server.port(), "/snapshot.json");
  EXPECT_NE(R3.find("Content-Type: application/json"), std::string::npos);
  EXPECT_NE(R3.find("{\"ok\":true}"), std::string::npos);
  // Query strings are ignored for routing (how Prometheus scrapes).
  std::string R4 = get(Server.port(), "/metrics?x=1");
  EXPECT_NE(R4.find("HTTP/1.0 200 OK"), std::string::npos);

  Server.stop();
  EXPECT_FALSE(Server.running());
  EXPECT_EQ(Server.port(), 0u);
}

TEST(MetricsHttp, UnknownPathsAndMethodsAreRejected) {
  MetricsServer Server;
  Server.handle("/metrics", "text/plain", [] { return std::string("ok"); });
  ASSERT_TRUE(Server.start(0));
  std::string NotFound = get(Server.port(), "/nope");
  EXPECT_NE(NotFound.find("404"), std::string::npos) << NotFound;
  std::string Post =
      rawRequest(Server.port(), "POST /metrics HTTP/1.0\r\n\r\n");
  EXPECT_NE(Post.find("405"), std::string::npos) << Post;
  Server.stop();
}

TEST(MetricsHttp, HeadReturnsHeadersWithoutBody) {
  MetricsServer Server;
  Server.handle("/metrics", "text/plain",
                [] { return std::string("twelve bytes"); });
  ASSERT_TRUE(Server.start(0));

  std::string Head =
      rawRequest(Server.port(), "HEAD /metrics HTTP/1.0\r\n\r\n");
  EXPECT_NE(Head.find("HTTP/1.0 200 OK"), std::string::npos) << Head;
  EXPECT_NE(Head.find("Content-Type: text/plain"), std::string::npos);
  // The Content-Length names what GET would return...
  EXPECT_NE(Head.find("Content-Length: 12"), std::string::npos) << Head;
  // ...but no body bytes follow the header block.
  size_t HeaderEnd = Head.find("\r\n\r\n");
  ASSERT_NE(HeaderEnd, std::string::npos);
  EXPECT_EQ(Head.substr(HeaderEnd + 4), "");

  // HEAD of an unknown path is a body-less 404.
  std::string Missing =
      rawRequest(Server.port(), "HEAD /nope HTTP/1.0\r\n\r\n");
  EXPECT_NE(Missing.find("404"), std::string::npos) << Missing;
  HeaderEnd = Missing.find("\r\n\r\n");
  ASSERT_NE(HeaderEnd, std::string::npos);
  EXPECT_EQ(Missing.substr(HeaderEnd + 4), "");
  Server.stop();
}

TEST(MetricsHttp, UnsupportedMethodsGet405OnKnownPathsOnly) {
  MetricsServer Server;
  Server.handle("/metrics", "text/plain", [] { return std::string("ok"); });
  Server.handlePost("/push", 64, [](std::string_view) {
    return MetricsServer::PostResult{200, "ok\n"};
  });
  ASSERT_TRUE(Server.start(0));

  // Unsupported method on a GET path: 405 naming what the path answers.
  std::string Del =
      rawRequest(Server.port(), "DELETE /metrics HTTP/1.0\r\n\r\n");
  EXPECT_NE(Del.find("405"), std::string::npos) << Del;
  EXPECT_NE(Del.find("Allow: GET, HEAD"), std::string::npos) << Del;

  // Unsupported method on a POST-only path: 405 with Allow: POST.
  std::string Put = rawRequest(Server.port(), "PUT /push HTTP/1.0\r\n\r\n");
  EXPECT_NE(Put.find("405"), std::string::npos) << Put;
  EXPECT_NE(Put.find("Allow: POST"), std::string::npos) << Put;

  // GET/HEAD of a POST-only path: 405, not 404 (the path exists).
  std::string Get = get(Server.port(), "/push");
  EXPECT_NE(Get.find("405"), std::string::npos) << Get;
  EXPECT_NE(Get.find("Allow: POST"), std::string::npos) << Get;

  // Unsupported method on an unknown path: a path problem, so 404 —
  // the old blanket 405 fall-through is the regression this pins.
  std::string Unknown =
      rawRequest(Server.port(), "DELETE /nope HTTP/1.0\r\n\r\n");
  EXPECT_NE(Unknown.find("404"), std::string::npos) << Unknown;
  EXPECT_EQ(Unknown.find("405"), std::string::npos) << Unknown;
  // POST to an unknown path is 404 as well.
  std::string Post = rawRequest(
      Server.port(), "POST /nope HTTP/1.0\r\nContent-Length: 0\r\n\r\n");
  EXPECT_NE(Post.find("404"), std::string::npos) << Post;
  Server.stop();
}

TEST(MetricsHttp, StopsAndRestartsCleanly) {
  MetricsServer Server;
  Server.handle("/", "text/plain", [] { return std::string("alive"); });
  ASSERT_TRUE(Server.start(0));
  uint16_t FirstPort = Server.port();
  EXPECT_NE(get(FirstPort, "/").find("alive"), std::string::npos);
  Server.stop();
  // A connection to the stopped port no longer answers.
  EXPECT_EQ(get(FirstPort, "/").find("alive"), std::string::npos);
  // The same server object can come back up.
  ASSERT_TRUE(Server.start(0));
  EXPECT_NE(get(Server.port(), "/").find("alive"), std::string::npos);
  Server.stop();
}

TEST(MetricsHttp, StopWithoutStartIsANoOp) {
  MetricsServer Server;
  Server.stop();
  EXPECT_FALSE(Server.running());
  // Destructor on a never-started server must be harmless too (scope
  // exit covers it).
}

} // namespace
