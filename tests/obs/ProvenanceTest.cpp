//===- ProvenanceTest.cpp - Decision provenance ledger tests --------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests of the decision provenance ledger (DESIGN.md §14): the seqlock
/// ring's record/snapshot protocol and wrap behavior, reader-vs-writer
/// races, registry interning and the disabled-by-default guarantee, the
/// end-to-end capture path through a real allocation context, and the
/// cswitch-explain-v1 render/parse round trip with byte-stability.
///
//===----------------------------------------------------------------------===//

#include "obs/Provenance.h"

#include "core/AllocationContext.h"
#include "model/DefaultModel.h"
#include "support/Telemetry.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace cswitch;
using namespace cswitch::obs;

namespace {

std::shared_ptr<const PerformanceModel> defaultModel() {
  static auto Model =
      std::make_shared<const PerformanceModel>(defaultPerformanceModel());
  return Model;
}

ContextOptions quietOptions(size_t Window = 10, double Ratio = 0.6) {
  ContextOptions Options;
  Options.WindowSize = Window;
  Options.FinishedRatio = Ratio;
  Options.LogEvents = false;
  return Options;
}

/// RAII guard: forces the capture state for one test and restores
/// "disabled" (the shipping default) afterwards, clearing the registry.
struct CaptureGuard {
  explicit CaptureGuard(bool Enabled) {
    ProvenanceRegistry::global().clearForTest();
    ProvenanceRegistry::setEnabled(Enabled);
  }
  ~CaptureGuard() {
    ProvenanceRegistry::setEnabled(false);
    ProvenanceRegistry::global().clearForTest();
  }
};

DecisionRecord sampleRecord(uint32_t Round) {
  DecisionRecord R;
  R.TimestampNanos = 1000 + Round;
  R.Round = Round;
  R.Outcome = DecisionOutcome::Kept;
  R.CurrentVariant = 0;
  R.ChosenVariant = -1;
  R.NumCandidates = 2;
  R.NumCriteria = 1;
  R.Criteria[0].Dimension = 0;
  R.Criteria[0].Threshold = 0.8;
  R.ContendedThreads = 1.0;
  R.Margin = 0.25;
  R.Candidates[0].Covered = true;
  R.Candidates[0].Eligible = true;
  R.Candidates[0].Total = {100.0, 10.0, 1.0, 0.0};
  R.Candidates[1].Covered = true;
  R.Candidates[1].Eligible = true;
  R.Candidates[1].Total = {90.0, 12.0, 1.5, 0.0};
  R.Candidates[1].Ratio[0] = 0.9;
  return R;
}

} // namespace

//===----------------------------------------------------------------------===//
// Names
//===----------------------------------------------------------------------===//

TEST(Provenance, OutcomeNamesRoundTrip) {
  const DecisionOutcome All[] = {
      DecisionOutcome::Kept, DecisionOutcome::Switched,
      DecisionOutcome::Converged, DecisionOutcome::WarmStartSkipped};
  for (DecisionOutcome O : All) {
    const char *Name = decisionOutcomeName(O);
    ASSERT_NE(Name, nullptr);
    EXPECT_STRNE(Name, "");
    DecisionOutcome Parsed;
    ASSERT_TRUE(parseDecisionOutcome(Name, Parsed)) << Name;
    EXPECT_EQ(Parsed, O);
  }
  // Every name is distinct.
  for (DecisionOutcome A : All)
    for (DecisionOutcome B : All)
      if (A != B) {
        EXPECT_STRNE(decisionOutcomeName(A), decisionOutcomeName(B));
      }
  DecisionOutcome Unused;
  EXPECT_FALSE(parseDecisionOutcome("unknown-outcome", Unused));
  EXPECT_FALSE(parseDecisionOutcome("", Unused));
}

TEST(Provenance, DimensionNames) {
  EXPECT_STREQ(explainDimensionName(0), "time");
  EXPECT_STREQ(explainDimensionName(1), "alloc");
  EXPECT_STREQ(explainDimensionName(2), "energy");
  EXPECT_STREQ(explainDimensionName(3), "contention");
  EXPECT_STREQ(explainDimensionName(4), "unknown");
  EXPECT_STREQ(explainDimensionName(999), "unknown");
}

//===----------------------------------------------------------------------===//
// SiteLedger ring protocol
//===----------------------------------------------------------------------===//

TEST(Provenance, LedgerStampsSequencesAndRetainsInOrder) {
  SiteLedger Ledger("t:ring", "list", "Rtime", {"ArrayList", "LinkedList"});
  EXPECT_EQ(Ledger.decisionCount(), 0u);
  EXPECT_TRUE(Ledger.snapshot().empty());

  for (uint32_t I = 0; I != 3; ++I)
    Ledger.record(sampleRecord(I));
  EXPECT_EQ(Ledger.decisionCount(), 3u);

  std::vector<DecisionRecord> Records = Ledger.snapshot();
  ASSERT_EQ(Records.size(), 3u);
  for (size_t I = 0; I != Records.size(); ++I) {
    EXPECT_EQ(Records[I].Sequence, I + 1); // 1-based, stamped by record()
    EXPECT_EQ(Records[I].Round, I);
    EXPECT_DOUBLE_EQ(Records[I].Margin, 0.25);
    EXPECT_DOUBLE_EQ(Records[I].Candidates[1].Ratio[0], 0.9);
  }
}

TEST(Provenance, LedgerWrapsKeepingNewest) {
  SiteLedger Ledger("t:wrap", "list", "Rtime", {"ArrayList"});
  const uint32_t Total = static_cast<uint32_t>(ExplainLedgerCapacity) + 5;
  for (uint32_t I = 0; I != Total; ++I)
    Ledger.record(sampleRecord(I));
  EXPECT_EQ(Ledger.decisionCount(), Total);

  std::vector<DecisionRecord> Records = Ledger.snapshot();
  ASSERT_EQ(Records.size(), ExplainLedgerCapacity);
  // Oldest retained decision is Total - capacity + 1; strictly
  // ascending from there.
  for (size_t I = 0; I != Records.size(); ++I)
    EXPECT_EQ(Records[I].Sequence, Total - ExplainLedgerCapacity + 1 + I);
}

TEST(Provenance, LedgerSnapshotSiteCarriesMetadata) {
  SiteLedger Ledger("t:meta", "map", "Rtime+alloc",
                    {"HashMap", "TreeMap", "ArrayMap"});
  Ledger.record(sampleRecord(7));
  SiteLedgerSnapshot Snap = Ledger.snapshotSite();
  EXPECT_EQ(Snap.Name, "t:meta");
  EXPECT_EQ(Snap.Abstraction, "map");
  EXPECT_EQ(Snap.Rule, "Rtime+alloc");
  ASSERT_EQ(Snap.Variants.size(), 3u);
  EXPECT_EQ(Snap.Variants[1], "TreeMap");
  EXPECT_EQ(Snap.Decisions, 1u);
  ASSERT_EQ(Snap.Records.size(), 1u);
  EXPECT_EQ(Snap.Records[0].Round, 7u);
}

TEST(Provenance, ConcurrentReadersNeverSeeTornRecords) {
  SiteLedger Ledger("t:race", "list", "Rtime", {"ArrayList"});
  std::atomic<bool> Stop{false};

  // The writer tags every field it publishes with the round number;
  // readers verify each snapshot record is internally consistent — a
  // torn read would mix two rounds.
  std::thread Writer([&Ledger, &Stop] {
    uint32_t Round = 0;
    while (!Stop.load(std::memory_order_relaxed)) {
      DecisionRecord R = sampleRecord(Round);
      R.ContendedThreads = static_cast<double>(Round);
      R.Margin = static_cast<double>(Round) * 0.5;
      Ledger.record(R);
      ++Round;
    }
  });

  for (int Iter = 0; Iter != 2000; ++Iter) {
    std::vector<DecisionRecord> Records = Ledger.snapshot();
    uint64_t PrevSeq = 0;
    for (const DecisionRecord &R : Records) {
      EXPECT_GT(R.Sequence, PrevSeq); // strictly ascending, no laps
      PrevSeq = R.Sequence;
      EXPECT_EQ(R.Round + 1, R.Sequence); // round stamped by writer
      EXPECT_DOUBLE_EQ(R.ContendedThreads, static_cast<double>(R.Round));
      EXPECT_DOUBLE_EQ(R.Margin, static_cast<double>(R.Round) * 0.5);
    }
  }
  Stop.store(true, std::memory_order_relaxed);
  Writer.join();
}

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

TEST(Provenance, RegistryInternsSitesByName) {
  CaptureGuard Guard(true);
  ProvenanceRegistry &Registry = ProvenanceRegistry::global();
  SiteLedger *A = Registry.site("t:intern", "list", "Rtime", {"ArrayList"});
  SiteLedger *B = Registry.site("t:intern", "set", "other", {"ignored"});
  EXPECT_EQ(A, B); // metadata consumed on creation only
  EXPECT_EQ(A->abstraction(), "list");
  EXPECT_EQ(Registry.siteCount(), 1u);
  Registry.site("t:intern2", "map", "Rtime", {});
  EXPECT_EQ(Registry.siteCount(), 2u);

  std::vector<SiteLedgerSnapshot> Sites = Registry.snapshotSites();
  ASSERT_EQ(Sites.size(), 2u);
  EXPECT_EQ(Sites[0].Name, "t:intern"); // sorted by name
  EXPECT_EQ(Sites[1].Name, "t:intern2");
}

TEST(Provenance, DisabledByDefaultAndAllocationFree) {
  CaptureGuard Guard(false);
  EXPECT_FALSE(ProvenanceRegistry::enabled());
  uint64_t Before = ProvenanceRegistry::global().allocationCount();

  // A full monitoring cycle with capture off must not touch the ledger.
  ListContext<int64_t> Ctx("t:prov-disabled", ListVariant::ArrayList,
                           defaultModel(), SelectionRule::timeRule(),
                           quietOptions());
  for (int I = 0; I != 10; ++I) {
    List<int64_t> L = Ctx.createList();
    for (int64_t V = 0; V != 300; ++V)
      L.add(V);
    for (int64_t V = 0; V != 1500; ++V)
      (void)L.contains(V);
  }
  Ctx.evaluate();
  EXPECT_EQ(ProvenanceRegistry::global().allocationCount(), Before);
  EXPECT_EQ(ProvenanceRegistry::global().siteCount(), 0u);
}

//===----------------------------------------------------------------------===//
// End-to-end capture through a real context
//===----------------------------------------------------------------------===//

TEST(Provenance, CapturesSwitchedDecisionWithBreakdowns) {
  CaptureGuard Guard(true);
  ListContext<int64_t> Ctx("t:prov-switch", ListVariant::ArrayList,
                           defaultModel(), SelectionRule::timeRule(),
                           quietOptions());
  // Lookup-heavy on sizable lists: the default model switches the site
  // to HashArrayList (same workload as the AllocationContext tests).
  for (int I = 0; I != 10; ++I) {
    List<int64_t> L = Ctx.createList();
    for (int64_t V = 0; V != 400; ++V)
      L.add(V);
    for (int64_t V = 0; V != 2000; ++V)
      (void)L.contains(V);
  }
  ASSERT_TRUE(Ctx.evaluate());

  std::vector<SiteLedgerSnapshot> Sites =
      ProvenanceRegistry::global().snapshotSites();
  ASSERT_EQ(Sites.size(), 1u);
  const SiteLedgerSnapshot &Site = Sites[0];
  EXPECT_EQ(Site.Name, "t:prov-switch");
  EXPECT_EQ(Site.Abstraction, "list");
  EXPECT_FALSE(Site.Rule.empty());
  EXPECT_FALSE(Site.Variants.empty());
  ASSERT_EQ(Site.Records.size(), 1u);

  const DecisionRecord &R = Site.Records[0];
  EXPECT_EQ(R.Outcome, DecisionOutcome::Switched);
  EXPECT_EQ(R.Round, 0u); // the first monitoring round
  EXPECT_GT(R.TimestampNanos, 0u);
  EXPECT_EQ(R.CurrentVariant, 0); // started as ArrayList
  ASSERT_GE(R.ChosenVariant, 0);
  ASSERT_LT(static_cast<size_t>(R.ChosenVariant), Site.Variants.size());
  EXPECT_EQ(Site.Variants[static_cast<size_t>(R.ChosenVariant)],
            "HashArrayList");
  EXPECT_GT(R.NumCandidates, 0u);
  ASSERT_GT(R.NumCriteria, 0u);
  EXPECT_GT(R.Margin, 0.0); // a switch beat every criterion

  // The chosen candidate has a full per-dimension breakdown and a
  // qualifying ratio on the first criterion.
  const CandidateExplanation &Chosen =
      R.Candidates[static_cast<size_t>(R.ChosenVariant)];
  EXPECT_TRUE(Chosen.Covered);
  EXPECT_TRUE(Chosen.Eligible);
  EXPECT_TRUE(Chosen.Qualified);
  EXPECT_GT(Chosen.Total[0], 0.0);   // time
  EXPECT_GT(Chosen.PreFold[0], 0.0); // unfolded time component
  EXPECT_GE(Chosen.Ratio[0], 0.0);
  EXPECT_LT(Chosen.Ratio[0], R.Criteria[0].Threshold);

  // The current variant is recorded too, as the baseline.
  const CandidateExplanation &Current =
      R.Candidates[static_cast<size_t>(R.CurrentVariant)];
  EXPECT_TRUE(Current.Covered);
  EXPECT_GT(Current.Total[0], Chosen.Total[0]);
}

TEST(Provenance, KeepStreakReachesConvergence) {
  CaptureGuard Guard(true);
  ListContext<int64_t> Ctx("t:prov-keep", ListVariant::ArrayList,
                           defaultModel(), SelectionRule::timeRule(),
                           quietOptions());
  // Append+iterate favors ArrayList, so every round keeps.
  auto RunRound = [&Ctx] {
    for (int I = 0; I != 10; ++I) {
      List<int64_t> L = Ctx.createList();
      for (int64_t V = 0; V != 200; ++V)
        L.add(V);
      uint64_t Sum = 0;
      L.forEach([&Sum](const int64_t &V) {
        Sum += static_cast<uint64_t>(V);
      });
      (void)Sum;
    }
    EXPECT_FALSE(Ctx.evaluate());
  };
  for (int Round = 0; Round != 4; ++Round)
    RunRound();

  std::vector<SiteLedgerSnapshot> Sites =
      ProvenanceRegistry::global().snapshotSites();
  ASSERT_EQ(Sites.size(), 1u);
  const std::vector<DecisionRecord> &Records = Sites[0].Records;
  ASSERT_EQ(Records.size(), 4u);
  EXPECT_EQ(Records[0].Outcome, DecisionOutcome::Kept);
  EXPECT_EQ(Records[0].ConsecutiveKeeps, 1u);
  EXPECT_EQ(Records[1].Outcome, DecisionOutcome::Kept);
  // The third consecutive keep crosses ConvergedKeepStreak.
  EXPECT_EQ(Records[2].Outcome, DecisionOutcome::Converged);
  EXPECT_EQ(Records[3].Outcome, DecisionOutcome::Converged);
  EXPECT_EQ(Records[3].ConsecutiveKeeps, 4u);
}

//===----------------------------------------------------------------------===//
// Render / parse round trip
//===----------------------------------------------------------------------===//

namespace {

ExplainProvenance sampleProvenance() {
  ExplainProvenance P;
  P.ModelSource = "cswitch-model-v2:host42";
  P.ModelFingerprint = "fp-abc123";
  P.ModelFitTimestamp = 1754600000;
  P.ModelHoldoutResidual = 0.042;
  P.ModelInstalls = 2;
  P.TuningSource = "tuned.cstune";
  P.TuningFingerprint = "fp-tune";
  P.TuningCorpusDigest = "digest-7";
  P.TuningLoads = 1;
  P.StorePath = "/var/lib/cswitch/store";
  P.StoreLoads = 3;
  P.StoreWarmStarts = 5;
  return P;
}

SiteLedgerSnapshot sampleSite(const std::string &Name) {
  SiteLedgerSnapshot Site;
  Site.Name = Name;
  Site.Abstraction = "list";
  Site.Rule = "Rtime";
  Site.Variants = {"ArrayList", "LinkedList"};
  Site.Decisions = 12;
  DecisionRecord R = sampleRecord(3);
  R.Sequence = 12;
  R.Outcome = DecisionOutcome::Switched;
  R.ChosenVariant = 1;
  R.ContentionFolded = true;
  R.AdaptiveStraddles = true;
  R.AdaptiveIndex = 1;
  R.AdaptiveThreshold = 1000.0;
  R.WideRangeFactor = 16.0;
  R.MinMaxSize = 10.0;
  R.MaxMaxSize = 4096.0;
  R.Candidates[1].PreFold = {80.0, 12.0, 1.5, 10.0};
  R.Candidates[1].Qualified = true;
  Site.Records.push_back(R);
  return Site;
}

} // namespace

TEST(Provenance, RenderParseRoundTrip) {
  std::string Json =
      renderExplainJson(sampleProvenance(), {sampleSite("t:roundtrip")},
                        /*Enabled=*/true);
  EXPECT_NE(Json.find("\"schema\":\"cswitch-explain-v1\""),
            std::string::npos);

  ExplainDocument Doc;
  std::string Error;
  ASSERT_TRUE(parseExplainDocument(Json, Doc, &Error)) << Error;
  EXPECT_EQ(Doc.Schema, "cswitch-explain-v1");
  EXPECT_TRUE(Doc.Enabled);
  EXPECT_EQ(Doc.Provenance.ModelSource, "cswitch-model-v2:host42");
  EXPECT_EQ(Doc.Provenance.ModelFitTimestamp, 1754600000u);
  EXPECT_DOUBLE_EQ(Doc.Provenance.ModelHoldoutResidual, 0.042);
  EXPECT_EQ(Doc.Provenance.TuningCorpusDigest, "digest-7");
  EXPECT_EQ(Doc.Provenance.StoreWarmStarts, 5u);

  ASSERT_EQ(Doc.Sites.size(), 1u);
  const SiteLedgerSnapshot &Site = Doc.Sites[0];
  EXPECT_EQ(Site.Name, "t:roundtrip");
  EXPECT_EQ(Site.Decisions, 12u);
  ASSERT_EQ(Site.Variants.size(), 2u);
  ASSERT_EQ(Site.Records.size(), 1u);
  const DecisionRecord &R = Site.Records[0];
  EXPECT_EQ(R.Sequence, 12u);
  EXPECT_EQ(R.Outcome, DecisionOutcome::Switched);
  EXPECT_EQ(R.ChosenVariant, 1);
  EXPECT_TRUE(R.ContentionFolded);
  EXPECT_TRUE(R.AdaptiveStraddles);
  EXPECT_FALSE(R.AdaptiveWide);
  EXPECT_DOUBLE_EQ(R.AdaptiveThreshold, 1000.0);
  EXPECT_DOUBLE_EQ(R.MaxMaxSize, 4096.0);
  ASSERT_EQ(R.NumCandidates, 2u);
  EXPECT_DOUBLE_EQ(R.Candidates[1].Total[0], 90.0);
  EXPECT_DOUBLE_EQ(R.Candidates[1].PreFold[3], 10.0);
  EXPECT_DOUBLE_EQ(R.Candidates[1].Ratio[0], 0.9);
  EXPECT_TRUE(R.Candidates[1].Qualified);
  ASSERT_EQ(R.NumCriteria, 1u);
  EXPECT_EQ(R.Criteria[0].Dimension, 0u);
  EXPECT_DOUBLE_EQ(R.Criteria[0].Threshold, 0.8);
}

TEST(Provenance, RenderIsByteStable) {
  ExplainProvenance P = sampleProvenance();
  std::vector<SiteLedgerSnapshot> Sites = {sampleSite("t:stable-a"),
                                           sampleSite("t:stable-b")};
  std::string First = renderExplainJson(P, Sites, true);
  std::string Second = renderExplainJson(P, Sites, true);
  EXPECT_EQ(First, Second);
  EXPECT_EQ(First.substr(First.size() - 3), "]}\n");
}

TEST(Provenance, HostileSiteNamesSurviveRoundTrip) {
  SiteLedgerSnapshot Site = sampleSite("t:\"quoted\"\\\n\x01\xE2\x82\xAC");
  Site.Variants = {"Array\"List\"", "Tab\there"};
  std::string Json =
      renderExplainJson(sampleProvenance(), {Site}, /*Enabled=*/true);
  ExplainDocument Doc;
  std::string Error;
  ASSERT_TRUE(parseExplainDocument(Json, Doc, &Error)) << Error;
  ASSERT_EQ(Doc.Sites.size(), 1u);
  EXPECT_EQ(Doc.Sites[0].Name, Site.Name);
  ASSERT_EQ(Doc.Sites[0].Variants.size(), 2u);
  EXPECT_EQ(Doc.Sites[0].Variants[0], "Array\"List\"");
  EXPECT_EQ(Doc.Sites[0].Variants[1], "Tab\there");
}

TEST(Provenance, ParserRejectsWrongSchemaAndGarbage) {
  ExplainDocument Doc;
  std::string Error;
  EXPECT_FALSE(parseExplainDocument("", Doc, &Error));
  EXPECT_FALSE(parseExplainDocument("not json", Doc, &Error));
  EXPECT_FALSE(parseExplainDocument("{\"schema\":\"wrong-v9\"}", Doc,
                                    &Error));
  EXPECT_FALSE(Error.empty());
  // A valid empty document parses.
  std::string Empty = renderExplainJson(ExplainProvenance{}, {}, false);
  ASSERT_TRUE(parseExplainDocument(Empty, Doc, &Error)) << Error;
  EXPECT_FALSE(Doc.Enabled);
  EXPECT_TRUE(Doc.Sites.empty());
}

TEST(Provenance, ExplainHeaderDistillsTelemetry) {
  TelemetrySnapshot Snapshot;
  Snapshot.Model.Installs = 3;
  Snapshot.Model.Source = "data/cswitch_model.txt";
  Snapshot.Model.Fingerprint = "host-fp";
  Snapshot.Model.FitTimestamp = 1754000000;
  Snapshot.Model.HoldoutResidual = 0.17;
  Snapshot.Tuning.Loads = 2;
  Snapshot.Tuning.Source = "tuned.cstune";
  Snapshot.Tuning.Fingerprint = "tune-fp";
  Snapshot.Tuning.CorpusDigest = "corpus-9";
  Snapshot.Store.Path = "/tmp/store";
  Snapshot.Store.Loads = 4;
  Snapshot.Store.WarmStarts = 9;

  ExplainProvenance P = makeExplainHeader(Snapshot);
  EXPECT_EQ(P.ModelInstalls, 3u);
  EXPECT_EQ(P.ModelSource, "data/cswitch_model.txt");
  EXPECT_EQ(P.ModelFingerprint, "host-fp");
  EXPECT_EQ(P.ModelFitTimestamp, 1754000000u);
  EXPECT_DOUBLE_EQ(P.ModelHoldoutResidual, 0.17);
  EXPECT_EQ(P.TuningLoads, 2u);
  EXPECT_EQ(P.TuningSource, "tuned.cstune");
  EXPECT_EQ(P.TuningFingerprint, "tune-fp");
  EXPECT_EQ(P.TuningCorpusDigest, "corpus-9");
  EXPECT_EQ(P.StorePath, "/tmp/store");
  EXPECT_EQ(P.StoreLoads, 4u);
  EXPECT_EQ(P.StoreWarmStarts, 9u);
}
