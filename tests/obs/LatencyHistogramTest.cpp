//===- LatencyHistogramTest.cpp - Log-bucketed histogram unit tests -------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
//
// Correctness of the continuous-profiling histograms (DESIGN.md §9):
// bucket geometry at the octave boundaries, saturation above the max
// trackable value, weighted records, the one-bucket-width quantile
// error bound against a sorted reference, snapshot merging, and
// concurrent record-vs-snapshot (the case TSan watches).
//
//===----------------------------------------------------------------------===//

#include "obs/LatencyHistogram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <random>
#include <thread>
#include <vector>

using namespace cswitch;
using namespace cswitch::obs;

namespace {

TEST(LatencyHistogram, LayoutGeometryIsConsistent) {
  // Every bucket tiles the value line: lower bounds are strictly
  // increasing and each bucket starts right after its predecessor ends.
  for (size_t I = 1; I != HistogramLayout::NumBuckets; ++I)
    EXPECT_EQ(HistogramLayout::bucketLowerBound(I),
              HistogramLayout::bucketUpperBound(I - 1) + 1)
        << "gap/overlap at bucket " << I;
  // Both edges of every bucket map back to that bucket.
  for (size_t I = 0; I != HistogramLayout::NumBuckets - 1; ++I) {
    EXPECT_EQ(HistogramLayout::bucketIndex(
                  HistogramLayout::bucketLowerBound(I)),
              I);
    EXPECT_EQ(HistogramLayout::bucketIndex(
                  HistogramLayout::bucketUpperBound(I)),
              I);
  }
}

TEST(LatencyHistogram, BoundaryValuesLandInExpectedBuckets) {
  // The linear region gives exact one-nanosecond buckets for 0..15.
  for (uint64_t V = 0; V != 16; ++V) {
    EXPECT_EQ(HistogramLayout::bucketIndex(V), V);
    EXPECT_EQ(HistogramLayout::bucketWidth(V), 1u);
  }
  // 16 opens the first split octave; 31 closes its first half-step of
  // sub-buckets; 32 opens the next octave.
  EXPECT_EQ(HistogramLayout::bucketIndex(15), 15u);
  EXPECT_EQ(HistogramLayout::bucketIndex(16), 16u);
  EXPECT_EQ(HistogramLayout::bucketIndex(31), 31u);
  EXPECT_EQ(HistogramLayout::bucketIndex(32), 32u);
  // Octave [16, 32) still has width-1 buckets; [32, 64) width 2.
  EXPECT_EQ(HistogramLayout::bucketWidth(16), 1u);
  EXPECT_EQ(HistogramLayout::bucketWidth(32), 2u);
  // The largest trackable value occupies the final bucket.
  EXPECT_EQ(HistogramLayout::bucketIndex(HistogramLayout::MaxTrackableNanos),
            HistogramLayout::NumBuckets - 1);
  // Relative bucket width is bounded by 1/SubBuckets everywhere.
  for (size_t I = 0; I != HistogramLayout::NumBuckets; ++I) {
    uint64_t Lower = HistogramLayout::bucketLowerBound(I);
    uint64_t Width = HistogramLayout::bucketWidth(I);
    if (Lower >= HistogramLayout::SubBuckets) {
      EXPECT_LE(static_cast<double>(Width) / static_cast<double>(Lower),
                1.0 / HistogramLayout::SubBuckets + 1e-12)
          << "bucket " << I;
    }
  }
}

TEST(LatencyHistogram, SaturatesAboveMaxTrackable) {
  LatencyHistogram H;
  H.record(HistogramLayout::MaxTrackableNanos);
  H.record(HistogramLayout::MaxTrackableNanos + 1);
  H.record(UINT64_MAX);
  HistogramSnapshot S = H.snapshot();
  EXPECT_EQ(S.Count, 3u);
  EXPECT_EQ(S.Saturated, 2u);
  // All three land in the final bucket; the max remembers the real value.
  EXPECT_EQ(S.Buckets[HistogramLayout::NumBuckets - 1], 3u);
  EXPECT_EQ(S.MaxNanos, UINT64_MAX);
  EXPECT_EQ(S.MinNanos, HistogramLayout::MaxTrackableNanos);
}

TEST(LatencyHistogram, WeightedRecordCountsAsManySamples) {
  LatencyHistogram H;
  H.record(100, 64);
  H.record(200);
  HistogramSnapshot S = H.snapshot();
  EXPECT_EQ(S.Count, 65u);
  EXPECT_EQ(S.SumNanos, 64u * 100 + 200);
  EXPECT_EQ(S.MinNanos, 100u);
  EXPECT_EQ(S.MaxNanos, 200u);
  EXPECT_EQ(S.Buckets[HistogramLayout::bucketIndex(100)], 64u);
  // The weighted value dominates every quantile up to 64/65.
  EXPECT_LE(S.quantile(0.5), HistogramLayout::bucketUpperBound(
                                 HistogramLayout::bucketIndex(100)));
}

TEST(LatencyHistogram, EmptySnapshotIsAllZero) {
  LatencyHistogram H;
  EXPECT_TRUE(H.empty());
  HistogramSnapshot S = H.snapshot();
  EXPECT_EQ(S.Count, 0u);
  EXPECT_EQ(S.MinNanos, 0u);
  EXPECT_EQ(S.quantile(0.99), 0.0);
  LatencyStats Stats = S.stats();
  EXPECT_EQ(Stats.Count, 0u);
  EXPECT_EQ(Stats.P99, 0.0);
}

TEST(LatencyHistogram, QuantileErrorIsBoundedByOneBucketWidth) {
  // Log-normal-ish latencies spanning several octaves, quantiles
  // checked against the exact sorted reference.
  std::mt19937_64 Rng(42);
  std::lognormal_distribution<double> Dist(6.0, 1.5);
  LatencyHistogram H;
  std::vector<uint64_t> Reference;
  for (int I = 0; I != 20000; ++I) {
    uint64_t V = static_cast<uint64_t>(Dist(Rng));
    Reference.push_back(V);
    H.record(V);
  }
  std::sort(Reference.begin(), Reference.end());
  HistogramSnapshot S = H.snapshot();
  for (double Q : {0.5, 0.9, 0.99, 0.999}) {
    size_t Rank = static_cast<size_t>(
        std::ceil(Q * static_cast<double>(Reference.size())));
    Rank = std::min(std::max<size_t>(Rank, 1), Reference.size());
    uint64_t Exact = Reference[Rank - 1];
    double Estimate = S.quantile(Q);
    size_t Bucket = HistogramLayout::bucketIndex(Exact);
    double Width = static_cast<double>(HistogramLayout::bucketWidth(Bucket));
    EXPECT_GE(Estimate, static_cast<double>(Exact) - Width)
        << "q" << Q << " exact " << Exact;
    EXPECT_LE(Estimate, static_cast<double>(Exact) + Width)
        << "q" << Q << " exact " << Exact;
  }
}

TEST(LatencyHistogram, SnapshotsMergeBucketwise) {
  LatencyHistogram A, B;
  A.record(10);
  A.record(1000);
  B.record(5);
  B.record(100000);
  HistogramSnapshot SA = A.snapshot();
  SA += B.snapshot();
  EXPECT_EQ(SA.Count, 4u);
  EXPECT_EQ(SA.MinNanos, 5u);
  EXPECT_EQ(SA.MaxNanos, 100000u);
  EXPECT_EQ(SA.SumNanos, 10u + 1000 + 5 + 100000);
  EXPECT_EQ(SA.Buckets[HistogramLayout::bucketIndex(5)], 1u);
  EXPECT_EQ(SA.Buckets[HistogramLayout::bucketIndex(100000)], 1u);
  // Merging an empty snapshot changes nothing (the empty side's
  // zero-Min must not clobber the real minimum).
  HistogramSnapshot Before = SA;
  SA += HistogramSnapshot{};
  EXPECT_EQ(SA.Count, Before.Count);
  EXPECT_EQ(SA.MinNanos, Before.MinNanos);
  // And merging into an empty snapshot adopts the other side.
  HistogramSnapshot Empty;
  Empty += Before;
  EXPECT_EQ(Empty.MinNanos, Before.MinNanos);
  EXPECT_EQ(Empty.Count, Before.Count);
}

TEST(LatencyHistogram, StatsDistillHeadlineQuantiles) {
  LatencyHistogram H;
  for (uint64_t V = 1; V <= 1000; ++V)
    H.record(V);
  LatencyStats S = H.snapshot().stats();
  EXPECT_EQ(S.Count, 1000u);
  EXPECT_EQ(S.MinNanos, 1u);
  EXPECT_EQ(S.MaxNanos, 1000u);
  EXPECT_EQ(S.SumNanos, 500500u);
  // 6.25% relative bucket error bound on each headline quantile.
  EXPECT_NEAR(S.P50, 500.0, 500.0 / 16 + 1);
  EXPECT_NEAR(S.P90, 900.0, 900.0 / 16 + 1);
  EXPECT_NEAR(S.P99, 990.0, 990.0 / 16 + 1);
  EXPECT_NEAR(S.P999, 999.0, 999.0 / 16 + 1);
}

TEST(LatencyHistogram, ConcurrentRecordAndSnapshotIsRaceFree) {
  // Writers hammer the histogram while a reader keeps snapshotting;
  // TSan validates the atomics, the final snapshot validates totals.
  LatencyHistogram H;
  constexpr int Writers = 4;
  constexpr uint64_t PerWriter = 20000;
  std::atomic<bool> Stop{false};
  std::thread Reader([&H, &Stop] {
    while (!Stop.load(std::memory_order_relaxed)) {
      HistogramSnapshot S = H.snapshot();
      // Monotone sanity on a racing snapshot: never more saturation
      // than samples, and extrema bracket any non-empty view.
      EXPECT_LE(S.Saturated, S.Count);
      if (S.Count != 0) {
        EXPECT_LE(S.MinNanos, S.MaxNanos);
      }
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> Threads;
  for (int W = 0; W != Writers; ++W)
    Threads.emplace_back([&H, W] {
      for (uint64_t I = 0; I != PerWriter; ++I)
        H.record((I % 4096) + static_cast<uint64_t>(W));
    });
  for (std::thread &T : Threads)
    T.join();
  Stop.store(true, std::memory_order_relaxed);
  Reader.join();
  HistogramSnapshot S = H.snapshot();
  EXPECT_EQ(S.Count, static_cast<uint64_t>(Writers) * PerWriter);
  uint64_t BucketSum = 0;
  for (uint64_t B : S.Buckets)
    BucketSum += B;
  EXPECT_EQ(BucketSum, S.Count);
}

//===----------------------------------------------------------------------===//
// StripedHistogram (DESIGN.md §10): per-node stripes must merge to
// exactly what one histogram fed the same samples would hold.
//===----------------------------------------------------------------------===//

TEST(StripedHistogram, MergedSnapshotMatchesUnstripedExactly) {
  StripedHistogram Striped(4);
  LatencyHistogram Reference;
  ASSERT_EQ(Striped.stripes(), 4u);
  std::mt19937_64 Rng(7);
  for (int I = 0; I != 5000; ++I) {
    uint64_t Nanos = Rng() % 2000000;
    Striped.recordOnStripe(static_cast<unsigned>(Rng() % 4), Nanos);
    Reference.record(Nanos);
  }
  HistogramSnapshot A = Striped.snapshot();
  HistogramSnapshot B = Reference.snapshot();
  EXPECT_EQ(A.Count, B.Count);
  EXPECT_EQ(A.Saturated, B.Saturated);
  EXPECT_EQ(A.SumNanos, B.SumNanos);
  EXPECT_EQ(A.MinNanos, B.MinNanos);
  EXPECT_EQ(A.MaxNanos, B.MaxNanos);
  EXPECT_EQ(A.Buckets, B.Buckets); // bit-identical, not merely close
  EXPECT_EQ(A.stats().P99, B.stats().P99);
}

TEST(StripedHistogram, EmptyUntilAnyStripeRecords) {
  StripedHistogram H(3);
  EXPECT_TRUE(H.empty());
  H.recordOnStripe(2, 42);
  EXPECT_FALSE(H.empty());
  EXPECT_EQ(H.snapshot().Count, 1u);
}

TEST(StripedHistogram, DefaultStripeCountFollowsTopologyAndRecords) {
  StripedHistogram H; // one stripe per node of the running machine
  EXPECT_GE(H.stripes(), 1u);
  H.record(100);
  H.record(200, 3);
  HistogramSnapshot S = H.snapshot();
  EXPECT_EQ(S.Count, 4u);
  EXPECT_EQ(S.SumNanos, 100u + 3 * 200u);
}

TEST(StripedHistogram, ConcurrentStripedWritersMergeAllSamples) {
  constexpr int Writers = 4;
  constexpr uint64_t PerWriter = 20000;
  StripedHistogram H(4);
  std::vector<std::thread> Threads;
  for (int W = 0; W != Writers; ++W)
    Threads.emplace_back([&H, W] {
      for (uint64_t I = 0; I != PerWriter; ++I)
        H.recordOnStripe(static_cast<unsigned>(W), I % 1024);
    });
  for (std::thread &T : Threads)
    T.join();
  HistogramSnapshot S = H.snapshot();
  EXPECT_EQ(S.Count, static_cast<uint64_t>(Writers) * PerWriter);
  uint64_t BucketSum = 0;
  for (uint64_t B : S.Buckets)
    BucketSum += B;
  EXPECT_EQ(BucketSum, S.Count);
}

} // namespace
