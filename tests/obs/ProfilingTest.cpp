//===- ProfilingTest.cpp - Continuous-profiling registry unit tests -------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
//
// The site-profile registry: interning semantics, the sorted sweep the
// exporters consume, the engine-wide merge, the sampling gate, and the
// global enable switch. The registry is process-wide and never forgets
// a site, so every test uses its own site names.
//
//===----------------------------------------------------------------------===//

#include "obs/Profiling.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace cswitch;
using namespace cswitch::obs;

namespace {

TEST(Profiling, ProfilesAreInternedByName) {
  ProfilingRegistry &R = ProfilingRegistry::global();
  SiteProfile *A = R.profile("proftest:intern");
  SiteProfile *B = R.profile("proftest:intern");
  ASSERT_NE(A, nullptr);
  EXPECT_EQ(A, B) << "same name must resolve to the same profile";
  EXPECT_EQ(A->Name, "proftest:intern");
  EXPECT_NE(R.profile("proftest:intern-other"), A);
}

TEST(Profiling, SweepIsSortedAndCarriesRecordedData) {
  ProfilingRegistry &R = ProfilingRegistry::global();
  R.profile("proftest:sweep-b")->Record.record(200);
  R.profile("proftest:sweep-a")->Record.record(100);
  R.profile("proftest:sweep-a")->Evaluate.record(50);

  std::vector<SiteHistogramSnapshot> Sites = R.snapshotSites();
  ASSERT_GE(Sites.size(), 2u);
  for (size_t I = 1; I != Sites.size(); ++I)
    EXPECT_LT(Sites[I - 1].Name, Sites[I].Name) << "sweep must be sorted";

  const SiteHistogramSnapshot *A = nullptr, *B = nullptr;
  for (const auto &S : Sites) {
    if (S.Name == "proftest:sweep-a")
      A = &S;
    if (S.Name == "proftest:sweep-b")
      B = &S;
  }
  ASSERT_NE(A, nullptr);
  ASSERT_NE(B, nullptr);
  EXPECT_EQ(A->Record.Count, 1u);
  EXPECT_EQ(A->Record.MaxNanos, 100u);
  EXPECT_EQ(A->Evaluate.Count, 1u);
  EXPECT_EQ(B->Record.Count, 1u);
  EXPECT_EQ(B->Record.MaxNanos, 200u);
}

TEST(Profiling, EngineLatenciesMergeAcrossSites) {
  ProfilingRegistry &R = ProfilingRegistry::global();
  uint64_t PersistBefore = R.persistHistogram().snapshot().Count;
  EngineLatencies Before = R.engineLatencies();
  R.profile("proftest:merge-1")->Record.record(10);
  R.profile("proftest:merge-2")->Record.record(1000000);
  R.profile("proftest:merge-2")->Switch.record(77);
  R.persistHistogram().record(12345);

  EngineLatencies L = R.engineLatencies();
  EXPECT_EQ(L.Record.Count, Before.Record.Count + 2);
  EXPECT_EQ(L.Switch.Count, Before.Switch.Count + 1);
  // Extrema widen across sites in the merged view.
  EXPECT_LE(L.Record.MinNanos, 10u);
  EXPECT_GE(L.Record.MaxNanos, 1000000u);
  EXPECT_EQ(R.persistHistogram().snapshot().Count, PersistBefore + 1);
  EXPECT_EQ(L.Persist.Count, PersistBefore + 1);
}

TEST(Profiling, DisableStopsTheSamplingGate) {
  ASSERT_TRUE(ProfilingRegistry::enabled()) << "expected default-enabled";
  // The gate opens once per RecordSampleEvery calls per thread...
  int Sampled = 0;
  for (uint64_t I = 0; I != 4 * RecordSampleEvery; ++I)
    Sampled += shouldSampleRecord() ? 1 : 0;
  EXPECT_EQ(Sampled, 4);
  // ...and never while profiling is disabled, regardless of phase.
  ProfilingRegistry::setEnabled(false);
  Sampled = 0;
  for (uint64_t I = 0; I != 4 * RecordSampleEvery; ++I)
    Sampled += shouldSampleRecord() ? 1 : 0;
  EXPECT_EQ(Sampled, 0);
  ProfilingRegistry::setEnabled(true);
  // Re-enabled: the per-thread countdown keeps rolling.
  Sampled = 0;
  for (uint64_t I = 0; I != 4 * RecordSampleEvery; ++I)
    Sampled += shouldSampleRecord() ? 1 : 0;
  EXPECT_EQ(Sampled, 4);
}

} // namespace
