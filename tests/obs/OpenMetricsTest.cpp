//===- OpenMetricsTest.cpp - OpenMetrics rendering unit tests -------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
//
// Shape of the /metrics exposition: family headers, `_total` counter
// samples, quantile-labelled summaries, label-value escaping, and the
// `# EOF` terminator — pinned here so the endpoint stays scrapeable by
// real OpenMetrics parsers.
//
//===----------------------------------------------------------------------===//

#include "obs/OpenMetrics.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>

using namespace cswitch;
using namespace cswitch::obs;

namespace {

TelemetrySnapshot sampleSnapshot() {
  TelemetrySnapshot S;
  ContextSnapshot C;
  C.Name = "bench\"quoted\"";
  C.Abstraction = "list";
  C.Variant = "ArrayList";
  C.Stats.InstancesCreated = 100;
  C.Stats.InstancesMonitored = 64;
  C.Stats.ProfilesPublished = 60;
  C.Stats.Evaluations = 3;
  C.Stats.Switches = 1;
  C.FootprintBytes = 2048;
  S.Contexts.push_back(C);
  S.Engine += C.Stats;
  S.Events.Recorded = 42;
  S.Store.WarmStarts = 2;
  S.Latency.Record.Count = 640;
  S.Latency.Record.SumNanos = 64000;
  S.Latency.Record.P50 = 80.0;
  S.Latency.Record.P99 = 250.0;
  S.Latency.Record.P999 = 400.0;
  return S;
}

std::vector<SiteHistogramSnapshot> sampleSites() {
  SiteHistogramSnapshot Site;
  Site.Name = "bench\"quoted\"";
  Site.Record.Count = 640;
  Site.Record.SumNanos = 64000;
  Site.Record.MaxNanos = 400;
  Site.Record.Buckets[10] = 640;
  return {Site};
}

TEST(OpenMetrics, EscapeHandlesLabelSpecials) {
  EXPECT_EQ(openMetricsEscape("plain"), "plain");
  EXPECT_EQ(openMetricsEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(openMetricsEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(openMetricsEscape("a\nb"), "a\\nb");
}

TEST(OpenMetrics, CountersCarryTypeHeaderAndTotalSuffix) {
  std::string Text = renderOpenMetrics(sampleSnapshot(), sampleSites());
  EXPECT_NE(Text.find("# TYPE cswitch_engine_instances_created counter\n"),
            std::string::npos);
  EXPECT_NE(Text.find("# HELP cswitch_engine_instances_created "),
            std::string::npos);
  EXPECT_NE(Text.find("cswitch_engine_instances_created_total 100\n"),
            std::string::npos);
  EXPECT_NE(Text.find("cswitch_events_recorded_total 42\n"),
            std::string::npos);
  EXPECT_NE(Text.find("cswitch_store_warm_starts_total 2\n"),
            std::string::npos);
  // The context gauge has no _total suffix.
  EXPECT_NE(Text.find("# TYPE cswitch_contexts gauge\n"), std::string::npos);
  EXPECT_NE(Text.find("cswitch_contexts 1\n"), std::string::npos);
}

TEST(OpenMetrics, PerSiteSeriesEscapeTheSiteLabel) {
  std::string Text = renderOpenMetrics(sampleSnapshot(), sampleSites());
  EXPECT_NE(
      Text.find(
          "cswitch_instances_created_total{site=\"bench\\\"quoted\\\"\"} 100\n"),
      std::string::npos);
  EXPECT_NE(Text.find("cswitch_context_footprint_bytes{site=\"bench\\\""
                      "quoted\\\"\"} 2048\n"),
            std::string::npos);
  EXPECT_NE(Text.find("cswitch_context_variant_info{site=\"bench\\\""
                      "quoted\\\"\",abstraction=\"list\",variant=\""
                      "ArrayList\"} 1\n"),
            std::string::npos);
}

TEST(OpenMetrics, SummariesExposeQuantilesCountAndSum) {
  std::string Text = renderOpenMetrics(sampleSnapshot(), sampleSites());
  EXPECT_NE(Text.find("# TYPE cswitch_record_latency_nanos summary\n"),
            std::string::npos);
  EXPECT_NE(Text.find("cswitch_record_latency_nanos{quantile=\"0.5\"} 80\n"),
            std::string::npos);
  EXPECT_NE(Text.find("cswitch_record_latency_nanos{quantile=\"0.99\"} 250\n"),
            std::string::npos);
  EXPECT_NE(Text.find("cswitch_record_latency_nanos{quantile=\"0.999\"} "
                      "400\n"),
            std::string::npos);
  EXPECT_NE(Text.find("cswitch_record_latency_nanos_count 640\n"),
            std::string::npos);
  EXPECT_NE(Text.find("cswitch_record_latency_nanos_sum 64000\n"),
            std::string::npos);
  // Per-site summaries: the site label composes with the quantile label.
  EXPECT_NE(Text.find("cswitch_site_record_latency_nanos{site=\"bench\\\""
                      "quoted\\\"\",quantile=\"0.99\"} "),
            std::string::npos);
  EXPECT_NE(Text.find("cswitch_site_record_latency_nanos_count{site=\""
                      "bench\\\"quoted\\\"\"} 640\n"),
            std::string::npos);
}

TEST(OpenMetrics, DocumentIsTerminatedByEof) {
  std::string Text = renderOpenMetrics(sampleSnapshot(), sampleSites());
  ASSERT_GE(Text.size(), 6u);
  EXPECT_EQ(Text.substr(Text.size() - 6), "# EOF\n");
  // Exactly one EOF marker, at the very end.
  EXPECT_EQ(Text.find("# EOF\n"), Text.size() - 6);
}

TEST(OpenMetrics, EveryLineIsWellFormed) {
  // Cheap structural lint: every non-comment line is `name{labels} value`
  // or `name value`, with no empty lines before the terminator.
  std::string Text = renderOpenMetrics(sampleSnapshot(), sampleSites());
  std::istringstream Lines(Text);
  std::string Line;
  while (std::getline(Lines, Line)) {
    ASSERT_FALSE(Line.empty());
    if (Line[0] == '#')
      continue;
    size_t Space = Line.rfind(' ');
    ASSERT_NE(Space, std::string::npos) << Line;
    ASSERT_LT(Space + 1, Line.size()) << Line;
    // The value parses as a number.
    char *End = nullptr;
    std::string Value = Line.substr(Space + 1);
    std::strtod(Value.c_str(), &End);
    EXPECT_EQ(*End, '\0') << Line;
  }
}

} // namespace
