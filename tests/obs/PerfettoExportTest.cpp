//===- PerfettoExportTest.cpp - Decision-timeline export unit tests -------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
//
// Shape of the Chrome/Perfetto trace_event document: the traceEvents
// wrapper, per-site thread_name metadata, instant events on the right
// tracks with microsecond timestamps, zero-timestamp pinning at the
// timeline origin, p99 counter tracks, and escaping of hostile site
// names.
//
//===----------------------------------------------------------------------===//

#include "obs/PerfettoExport.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace cswitch;
using namespace cswitch::obs;

namespace {

Event makeEvent(EventKind Kind, std::string Context, std::string Detail,
                uint64_t Seq, uint64_t Ts) {
  Event E;
  E.Kind = Kind;
  E.Context = std::move(Context);
  E.Detail = std::move(Detail);
  E.SequenceNumber = Seq;
  E.TimestampNanos = Ts;
  return E;
}

TEST(PerfettoExport, WrapsEventsInTraceEventDocument) {
  std::vector<Event> Events = {
      makeEvent(EventKind::Transition, "site-a",
                "ArrayList -> LinkedList", 1, 5000500),
      makeEvent(EventKind::Evaluation, "site-a", "", 2, 6000000),
  };
  std::string Json = renderPerfettoTrace(Events, {});
  EXPECT_EQ(Json.rfind("{\"displayTimeUnit\":\"ms\",\"otherData\":{"
                       "\"schema\":\"cswitch-perfetto-v1\"},"
                       "\"traceEvents\":[",
                       0),
            0u);
  EXPECT_EQ(Json.substr(Json.size() - 3), "]}\n");
  // Engine process + track metadata, then the site's track.
  EXPECT_NE(Json.find("{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":"
                      "\"process_name\",\"args\":{\"name\":\"cswitch\"}}"),
            std::string::npos);
  EXPECT_NE(Json.find("\"name\":\"thread_name\",\"args\":{\"name\":"
                      "\"site-a\"}}"),
            std::string::npos);
  // Instant events: nanosecond timestamps become microseconds with
  // three decimals, on the site's track, with cat "decision".
  EXPECT_NE(Json.find("\"ph\":\"i\",\"s\":\"t\",\"cat\":\"decision\","
                      "\"pid\":1,\"tid\":1,\"ts\":5000.500,\"name\":"
                      "\"transition\",\"args\":{\"detail\":"
                      "\"ArrayList -> LinkedList\",\"seq\":1}"),
            std::string::npos);
  EXPECT_NE(Json.find("\"ts\":6000.000,\"name\":\"evaluation\""),
            std::string::npos);
}

TEST(PerfettoExport, ZeroTimestampsArePinnedAtTheOrigin) {
  std::vector<Event> Events = {
      makeEvent(EventKind::ContextCreated, "site-a", "", 1, 0),
      makeEvent(EventKind::Evaluation, "site-a", "", 2, 9000000),
  };
  std::string Json = renderPerfettoTrace(Events, {});
  // The Ts==0 event sits at the earliest real timestamp, not at 0.
  EXPECT_NE(Json.find("\"ts\":9000.000,\"name\":\"context-created\""),
            std::string::npos)
      << Json;
  EXPECT_EQ(Json.find("\"ts\":0.000"), std::string::npos);
}

TEST(PerfettoExport, EventsWithoutSiteLandOnTheEngineTrack) {
  std::vector<Event> Events = {
      makeEvent(EventKind::Store, "", "load failed", 1, 1000),
  };
  std::string Json = renderPerfettoTrace(Events, {});
  EXPECT_NE(Json.find("\"tid\":0,\"ts\":1.000,\"name\":\"store\""),
            std::string::npos);
}

TEST(PerfettoExport, SiteSweepAddsCounterTracksWithP99s) {
  SiteHistogramSnapshot Site;
  Site.Name = "site \"x\"";
  for (int I = 0; I != 100; ++I)
    Site.Record.Buckets[HistogramLayout::bucketIndex(64)] += 1;
  Site.Record.Count = 100;
  Site.Record.MaxNanos = 64;
  std::string Json = renderPerfettoTrace({}, {Site});
  // Hostile name escaped in both the metadata and the counter name.
  EXPECT_NE(Json.find("\"args\":{\"name\":\"site \\\"x\\\"\"}"),
            std::string::npos);
  EXPECT_NE(Json.find("{\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":0.000,"
                      "\"name\":\"p99 ns site \\\"x\\\"\",\"args\":{"
                      "\"record\":64,\"evaluate\":0,\"switch\":0}}"),
            std::string::npos)
      << Json;
}

TEST(PerfettoExport, EmptyInputStillYieldsAValidDocument) {
  std::string Json = renderPerfettoTrace({}, {});
  EXPECT_NE(Json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_EQ(Json.substr(Json.size() - 3), "]}\n");
  // Metadata for the engine track is always present.
  EXPECT_NE(Json.find("\"process_name\""), std::string::npos);
}

} // namespace
