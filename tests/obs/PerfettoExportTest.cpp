//===- PerfettoExportTest.cpp - Decision-timeline export unit tests -------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
//
// Shape of the Chrome/Perfetto trace_event document: the traceEvents
// wrapper, per-site thread_name metadata, instant events on the right
// tracks with microsecond timestamps, zero-timestamp pinning at the
// timeline origin, p99 counter tracks, and escaping of hostile site
// names.
//
//===----------------------------------------------------------------------===//

#include "obs/PerfettoExport.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

using namespace cswitch;
using namespace cswitch::obs;

namespace {

Event makeEvent(EventKind Kind, std::string Context, std::string Detail,
                uint64_t Seq, uint64_t Ts) {
  Event E;
  E.Kind = Kind;
  E.Context = std::move(Context);
  E.Detail = std::move(Detail);
  E.SequenceNumber = Seq;
  E.TimestampNanos = Ts;
  return E;
}

TEST(PerfettoExport, WrapsEventsInTraceEventDocument) {
  std::vector<Event> Events = {
      makeEvent(EventKind::Transition, "site-a",
                "ArrayList -> LinkedList", 1, 5000500),
      makeEvent(EventKind::Evaluation, "site-a", "", 2, 6000000),
  };
  std::string Json = renderPerfettoTrace(Events, {});
  EXPECT_EQ(Json.rfind("{\"displayTimeUnit\":\"ms\",\"otherData\":{"
                       "\"schema\":\"cswitch-perfetto-v1\"},"
                       "\"traceEvents\":[",
                       0),
            0u);
  EXPECT_EQ(Json.substr(Json.size() - 3), "]}\n");
  // Engine process + track metadata, then the site's track.
  EXPECT_NE(Json.find("{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":"
                      "\"process_name\",\"args\":{\"name\":\"cswitch\"}}"),
            std::string::npos);
  EXPECT_NE(Json.find("\"name\":\"thread_name\",\"args\":{\"name\":"
                      "\"site-a\"}}"),
            std::string::npos);
  // Instant events: nanosecond timestamps become microseconds with
  // three decimals, on the site's track, with cat "decision".
  EXPECT_NE(Json.find("\"ph\":\"i\",\"s\":\"t\",\"cat\":\"decision\","
                      "\"pid\":1,\"tid\":1,\"ts\":5000.500,\"name\":"
                      "\"transition\",\"args\":{\"detail\":"
                      "\"ArrayList -> LinkedList\",\"seq\":1}"),
            std::string::npos);
  EXPECT_NE(Json.find("\"ts\":6000.000,\"name\":\"evaluation\""),
            std::string::npos);
}

TEST(PerfettoExport, ZeroTimestampsArePinnedAtTheOrigin) {
  std::vector<Event> Events = {
      makeEvent(EventKind::ContextCreated, "site-a", "", 1, 0),
      makeEvent(EventKind::Evaluation, "site-a", "", 2, 9000000),
  };
  std::string Json = renderPerfettoTrace(Events, {});
  // The Ts==0 event sits at the earliest real timestamp, not at 0.
  EXPECT_NE(Json.find("\"ts\":9000.000,\"name\":\"context-created\""),
            std::string::npos)
      << Json;
  EXPECT_EQ(Json.find("\"ts\":0.000"), std::string::npos);
}

TEST(PerfettoExport, EventsWithoutSiteLandOnTheEngineTrack) {
  std::vector<Event> Events = {
      makeEvent(EventKind::Store, "", "load failed", 1, 1000),
  };
  std::string Json = renderPerfettoTrace(Events, {});
  EXPECT_NE(Json.find("\"tid\":0,\"ts\":1.000,\"name\":\"store\""),
            std::string::npos);
}

TEST(PerfettoExport, SiteSweepAddsCounterTracksWithP99s) {
  SiteHistogramSnapshot Site;
  Site.Name = "site \"x\"";
  for (int I = 0; I != 100; ++I)
    Site.Record.Buckets[HistogramLayout::bucketIndex(64)] += 1;
  Site.Record.Count = 100;
  Site.Record.MaxNanos = 64;
  std::string Json = renderPerfettoTrace({}, {Site});
  // Hostile name escaped in both the metadata and the counter name.
  EXPECT_NE(Json.find("\"args\":{\"name\":\"site \\\"x\\\"\"}"),
            std::string::npos);
  EXPECT_NE(Json.find("{\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":0.000,"
                      "\"name\":\"p99 ns site \\\"x\\\"\",\"args\":{"
                      "\"record\":64,\"evaluate\":0,\"switch\":0}}"),
            std::string::npos)
      << Json;
}

TEST(PerfettoExport, EmptyInputStillYieldsAValidDocument) {
  std::string Json = renderPerfettoTrace({}, {});
  EXPECT_NE(Json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_EQ(Json.substr(Json.size() - 3), "]}\n");
  // Metadata for the engine track is always present.
  EXPECT_NE(Json.find("\"process_name\""), std::string::npos);
}

TEST(PerfettoExport, EmptyEngineConvenienceOverloadIsWellFormed) {
  // The no-argument overload snapshots the global engine state, which
  // other tests may or may not have touched — only the envelope is
  // asserted, plus balanced braces (a structural smoke check).
  std::string Json = renderPerfettoTrace();
  EXPECT_EQ(Json.rfind("{\"displayTimeUnit\":\"ms\"", 0), 0u);
  EXPECT_EQ(Json.substr(Json.size() - 3), "]}\n");
  int Depth = 0;
  bool InString = false;
  for (size_t I = 0; I != Json.size(); ++I) {
    char C = Json[I];
    if (InString) {
      if (C == '\\')
        ++I;
      else if (C == '"')
        InString = false;
      continue;
    }
    if (C == '"')
      InString = true;
    else if (C == '{' || C == '[')
      ++Depth;
    else if (C == '}' || C == ']')
      --Depth;
    ASSERT_GE(Depth, 0);
  }
  EXPECT_EQ(Depth, 0);
  EXPECT_FALSE(InString);
}

TEST(PerfettoExport, HostileUtf8SiteNamesSurviveJsonArgs) {
  // Invalid UTF-8 (a lone \xFF and a truncated sequence) plus a valid
  // multi-byte char, in both the site name and the event detail.
  std::string Hostile = "site-\xFF\xE2\x82\xAC-\"q\"\n\xC3";
  std::vector<Event> Events = {
      makeEvent(EventKind::Transition, Hostile, "detail-\xFF\t", 1, 1000),
  };
  std::string Json = renderPerfettoTrace(Events, {});
  // Invalid bytes become U+FFFD, valid UTF-8 passes through, quotes
  // and control characters are escaped — never raw in the document.
  EXPECT_NE(Json.find("\\ufffd"), std::string::npos) << Json;
  EXPECT_NE(Json.find("\xE2\x82\xAC"), std::string::npos);
  EXPECT_NE(Json.find("\\\"q\\\""), std::string::npos);
  EXPECT_NE(Json.find("\"detail\":\"detail-\\ufffd\\t\""),
            std::string::npos);
  for (char C : Json)
    EXPECT_NE(C, '\xFF');
  EXPECT_EQ(Json.substr(Json.size() - 3), "]}\n");
}

TEST(PerfettoExport, SnapshotRendersCleanlyMidDrain) {
  // A renderer fed from EventLog::snapshot() must cope with a
  // concurrent drainer racing it — snapshots are non-consuming, so
  // every render sees a consistent (possibly shorter) prefix.
  EventLog Log(1 << 10);
  uint32_t Ctx = Log.intern("perfetto:mid-drain");
  uint32_t Detail = Log.intern("race");
  std::atomic<bool> Stop{false};
  std::thread Producer([&Log, &Stop, Ctx, Detail] {
    while (!Stop.load(std::memory_order_relaxed))
      Log.record(EventKind::MonitoringRound, Ctx, Detail);
  });
  std::thread Drainer([&Log, &Stop] {
    while (!Stop.load(std::memory_order_relaxed))
      (void)Log.drain();
  });
  for (int I = 0; I != 50; ++I) {
    std::string Json = renderPerfettoTrace(Log.snapshot(), {});
    ASSERT_EQ(Json.rfind("{\"displayTimeUnit\":\"ms\"", 0), 0u);
    ASSERT_EQ(Json.substr(Json.size() - 3), "]}\n");
  }
  Stop.store(true, std::memory_order_relaxed);
  Producer.join();
  Drainer.join();
}

TEST(PerfettoExport, TransitionsGainLedgerCostAnnotations) {
  std::vector<Event> Events = {
      makeEvent(EventKind::Transition, "site-a",
                "ArrayList -> LinkedList", 1, 5000500),
      makeEvent(EventKind::Evaluation, "site-a", "", 2, 6000000),
  };
  SiteLedgerSnapshot Ledger;
  Ledger.Name = "site-a";
  Ledger.Abstraction = "list";
  Ledger.Rule = "Rtime";
  Ledger.Variants = {"ArrayList", "LinkedList"};
  Ledger.Decisions = 2;
  DecisionRecord R;
  R.Sequence = 2;
  R.TimestampNanos = 5000400; // near the transition event's timestamp
  R.Outcome = DecisionOutcome::Switched;
  R.CurrentVariant = 0;
  R.ChosenVariant = 1;
  R.NumCandidates = 2;
  R.NumCriteria = 1;
  R.Criteria[0].Dimension = 0;
  // Exactly-representable doubles, so the %.17g rendering is the short
  // literal form.
  R.Criteria[0].Threshold = 0.75;
  R.ContendedThreads = 2.5;
  R.Margin = 0.25;
  R.Candidates[0].Total = {100.0, 0, 0, 0};
  R.Candidates[1].Total = {60.0, 0, 0, 0};
  Ledger.Records.push_back(R);

  std::string Json = renderPerfettoTrace(Events, {}, {Ledger});
  EXPECT_NE(Json.find("\"cost_dimension\":\"time\""), std::string::npos)
      << Json;
  EXPECT_NE(Json.find("\"cost_cur\":100"), std::string::npos);
  EXPECT_NE(Json.find("\"cost_new\":60"), std::string::npos);
  EXPECT_NE(Json.find("\"cost_delta\":-40"), std::string::npos);
  EXPECT_NE(Json.find("\"margin\":0.25"), std::string::npos);
  EXPECT_NE(Json.find("\"threshold\":0.75"), std::string::npos);
  EXPECT_NE(Json.find("\"threads\":2.5"), std::string::npos);
  // Only the transition is annotated, not the evaluation.
  size_t EvalPos = Json.find("\"name\":\"evaluation\"");
  ASSERT_NE(EvalPos, std::string::npos);
  EXPECT_EQ(Json.find("cost_delta", EvalPos), std::string::npos);
}

TEST(PerfettoExport, TransitionsWithoutMatchingLedgerStayBare) {
  std::vector<Event> Events = {
      makeEvent(EventKind::Transition, "site-a", "A -> B", 1, 1000),
  };
  // Ledger for a different site; and one for the right site whose only
  // record is a keep (no switched record to match).
  SiteLedgerSnapshot Other;
  Other.Name = "site-b";
  DecisionRecord Keep;
  Keep.Outcome = DecisionOutcome::Kept;
  SiteLedgerSnapshot Kept;
  Kept.Name = "site-a";
  Kept.Records.push_back(Keep);

  std::string Json = renderPerfettoTrace(Events, {}, {Other, Kept});
  EXPECT_EQ(Json.find("cost_delta"), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"name\":\"transition\""), std::string::npos);
}

} // namespace
