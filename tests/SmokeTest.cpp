//===- SmokeTest.cpp - End-to-end framework smoke test --------------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end exercise of the public API: create a context, run a
/// contains-heavy workload through monitored collections, evaluate, and
/// observe the variant switch the paper's Fig. 2 describes.
///
//===----------------------------------------------------------------------===//

#include "core/Switch.h"
#include "model/DefaultModel.h"

#include <gtest/gtest.h>

using namespace cswitch;

namespace {

TEST(Smoke, ListContextSwitchesUnderLookupHeavyWorkload) {
  auto Model =
      std::make_shared<const PerformanceModel>(defaultPerformanceModel());
  ContextOptions Options;
  Options.WindowSize = 20;
  Options.FinishedRatio = 0.5;
  Options.LogEvents = false;
  ListContext<int64_t> Ctx("smoke:list", ListVariant::ArrayList, Model,
                           SelectionRule::timeRule(), Options);

  // Lookup-heavy workload at size 512: the model predicts hash-backed
  // lookups far cheaper than the linear scans of ArrayList.
  for (int Instance = 0; Instance != 40; ++Instance) {
    List<int64_t> L = Ctx.createList();
    for (int64_t I = 0; I != 512; ++I)
      L.add(I * 3);
    for (int64_t I = 0; I != 1000; ++I)
      (void)L.contains(I);
  }
  EXPECT_TRUE(Ctx.evaluate());
  EXPECT_NE(Ctx.currentVariantIndex(),
            static_cast<unsigned>(ListVariant::ArrayList));
  EXPECT_EQ(Ctx.switchCount(), 1u);

  // New instances come out as the switched variant.
  List<int64_t> L = Ctx.createList();
  EXPECT_NE(L.variant(), ListVariant::ArrayList);
}

TEST(Smoke, SwitchFacadeCreatesWorkingCollections) {
  auto Ctx = Switch::makeContext<Map<int64_t, int64_t>>(
      "smoke:map", MapVariant::ChainedHashMap);
  Map<int64_t, int64_t> M = Ctx->createMap();
  for (int64_t I = 0; I != 100; ++I)
    M.put(I, I * I);
  EXPECT_EQ(M.size(), 100u);
  const int64_t *V = M.get(7);
  ASSERT_NE(V, nullptr);
  EXPECT_EQ(*V, 49);
  EXPECT_GE(SwitchEngine::global().contextCount(), 1u);
}

} // namespace
