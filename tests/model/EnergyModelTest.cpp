//===- EnergyModelTest.cpp - Derived energy dimension tests ------------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//

#include "model/EnergyModel.h"
#include "model/DefaultModel.h"

#include "core/SelectionRule.h"

#include <gtest/gtest.h>

using namespace cswitch;

namespace {

TEST(EnergyModel, LinearCombinationOfTimeAndAlloc) {
  PerformanceModel Model;
  VariantId Id = VariantId::of(SetVariant::OpenHashSet);
  Model.setCost(Id, OperationKind::Populate, CostDimension::Time,
                Polynomial({10.0, 0.5}));
  Model.setCost(Id, OperationKind::Populate, CostDimension::Alloc,
                Polynomial({100.0}));
  EnergyCoefficients Coefs;
  Coefs.NanojoulesPerNanosecond = 2.0;
  Coefs.NanojoulesPerByte = 0.1;
  deriveEnergyModel(Model, Coefs);
  // energy(s) = 2*(10 + 0.5 s) + 0.1*100 = 30 + s.
  EXPECT_DOUBLE_EQ(Model.operationCost(Id, OperationKind::Populate,
                                       CostDimension::Energy, 0.0),
                   30.0);
  EXPECT_DOUBLE_EQ(Model.operationCost(Id, OperationKind::Populate,
                                       CostDimension::Energy, 50.0),
                   80.0);
}

TEST(EnergyModel, EmptyTriplesStayEmpty) {
  PerformanceModel Model;
  deriveEnergyModel(Model);
  EXPECT_TRUE(Model
                  .cost(VariantId::of(ListVariant::ArrayList),
                        OperationKind::Contains, CostDimension::Energy)
                  .coefficients()
                  .empty());
}

TEST(EnergyModel, DefaultModelHasEnergyForEveryModeledTriple) {
  PerformanceModel Model = defaultPerformanceModel();
  for (SetVariant V : AllSetVariants) {
    for (OperationKind Op :
         {OperationKind::Populate, OperationKind::Contains,
          OperationKind::Iterate, OperationKind::Remove}) {
      EXPECT_GT(Model.operationCost(VariantId::of(V), Op,
                                    CostDimension::Energy, 100.0),
                0.0)
          << setVariantName(V) << " " << operationKindName(Op);
    }
  }
}

TEST(EnergyModel, EnergyTracksTimeButPenalizesAllocation) {
  // Two variants with equal time: the one allocating more must cost
  // more energy — the property that makes Renergy differ from Rtime.
  PerformanceModel Model;
  VariantId A = VariantId::of(SetVariant::OpenHashSet);
  VariantId B = VariantId::of(SetVariant::CompactHashSet);
  Model.setCost(A, OperationKind::Populate, CostDimension::Time,
                Polynomial({20.0}));
  Model.setCost(B, OperationKind::Populate, CostDimension::Time,
                Polynomial({20.0}));
  Model.setCost(A, OperationKind::Populate, CostDimension::Alloc,
                Polynomial({100.0}));
  Model.setCost(B, OperationKind::Populate, CostDimension::Alloc,
                Polynomial({20.0}));
  deriveEnergyModel(Model);
  EXPECT_GT(Model.operationCost(A, OperationKind::Populate,
                                CostDimension::Energy, 10.0),
            Model.operationCost(B, OperationKind::Populate,
                                CostDimension::Energy, 10.0));
}

TEST(EnergyModel, SerializationRoundTripsEnergy) {
  PerformanceModel Model = defaultPerformanceModel();
  std::string Path = ::testing::TempDir() + "/cswitch_energy_model.txt";
  ASSERT_TRUE(Model.saveToFile(Path));
  PerformanceModel Loaded;
  ASSERT_TRUE(Loaded.loadFromFile(Path));
  VariantId Id = VariantId::of(MapVariant::ChainedHashMap);
  EXPECT_EQ(Loaded.cost(Id, OperationKind::Populate, CostDimension::Energy),
            Model.cost(Id, OperationKind::Populate, CostDimension::Energy));
  std::remove(Path.c_str());
}

TEST(EnergyRule, MatchesRallocShape) {
  SelectionRule Rule = SelectionRule::energyRule();
  EXPECT_EQ(Rule.Name, "Renergy");
  ASSERT_EQ(Rule.Criteria.size(), 2u);
  EXPECT_EQ(Rule.Criteria[0].Dimension, CostDimension::Energy);
  EXPECT_DOUBLE_EQ(Rule.Criteria[0].Threshold, 0.8);
  EXPECT_EQ(Rule.Criteria[1].Dimension, CostDimension::Time);
  EXPECT_EQ(Rule.primaryDimension(), CostDimension::Energy);
}

} // namespace
