//===- CostModelTest.cpp - Performance model unit tests ---------------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//

#include "model/CostModel.h"
#include "model/DefaultModel.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

using namespace cswitch;

namespace {

TEST(CostDimension, NamesRoundTrip) {
  for (CostDimension Dim : AllCostDimensions) {
    CostDimension Out;
    ASSERT_TRUE(parseCostDimension(costDimensionName(Dim), Out));
    EXPECT_EQ(Out, Dim);
  }
  CostDimension Out;
  EXPECT_FALSE(parseCostDimension("carbon", Out));
}

TEST(PerformanceModel, UnsetCostsAreZero) {
  PerformanceModel Model;
  VariantId Id = VariantId::of(ListVariant::ArrayList);
  EXPECT_TRUE(Model.cost(Id, OperationKind::Contains, CostDimension::Time)
                  .coefficients()
                  .empty());
  EXPECT_DOUBLE_EQ(Model.operationCost(Id, OperationKind::Contains,
                                       CostDimension::Time, 100.0),
                   0.0);
  EXPECT_FALSE(Model.hasVariant(Id));
}

TEST(PerformanceModel, SetAndEvaluateCost) {
  PerformanceModel Model;
  VariantId Id = VariantId::of(SetVariant::OpenHashSet);
  Model.setCost(Id, OperationKind::Contains, CostDimension::Time,
                Polynomial({7.0, 0.01}));
  EXPECT_DOUBLE_EQ(Model.operationCost(Id, OperationKind::Contains,
                                       CostDimension::Time, 100.0),
                   8.0);
  EXPECT_TRUE(Model.hasVariant(Id));
  // Distinct (variant, op, dim) slots do not alias.
  EXPECT_DOUBLE_EQ(Model.operationCost(Id, OperationKind::Contains,
                                       CostDimension::Alloc, 100.0),
                   0.0);
  EXPECT_DOUBLE_EQ(
      Model.operationCost(VariantId::of(SetVariant::ChainedHashSet),
                          OperationKind::Contains, CostDimension::Time,
                          100.0),
      0.0);
}

TEST(PerformanceModel, NegativePredictionsClampToZero) {
  PerformanceModel Model;
  VariantId Id = VariantId::of(MapVariant::ArrayMap);
  Model.setCost(Id, OperationKind::Populate, CostDimension::Time,
                Polynomial({-100.0, 1.0}));
  EXPECT_DOUBLE_EQ(Model.operationCost(Id, OperationKind::Populate,
                                       CostDimension::Time, 10.0),
                   0.0);
}

TEST(PerformanceModel, TotalCostImplementsPaperFormula) {
  // tc_W(V) = sum_op N_op * cost_op(maxsize).
  PerformanceModel Model;
  VariantId Id = VariantId::of(ListVariant::ArrayList);
  Model.setCost(Id, OperationKind::Populate, CostDimension::Time,
                Polynomial({4.0}));
  Model.setCost(Id, OperationKind::Contains, CostDimension::Time,
                Polynomial({2.0, 0.5}));
  WorkloadProfile W;
  W.record(OperationKind::Populate, 100);
  W.record(OperationKind::Contains, 10);
  W.recordSize(100);
  // 100*4 + 10*(2 + 0.5*100) = 400 + 520 = 920.
  EXPECT_DOUBLE_EQ(Model.totalCost(Id, W, CostDimension::Time), 920.0);
  EXPECT_DOUBLE_EQ(Model.totalCost(Id, W, CostDimension::Alloc), 0.0);
}

TEST(PerformanceModel, SaveLoadRoundTrip) {
  PerformanceModel Model = defaultPerformanceModel();
  std::ostringstream OS;
  Model.save(OS);
  PerformanceModel Loaded;
  std::istringstream IS(OS.str());
  ASSERT_TRUE(Loaded.load(IS));
  for (ListVariant V : AllListVariants)
    for (OperationKind Op : AllOperationKinds)
      for (CostDimension Dim : AllCostDimensions)
        EXPECT_EQ(Loaded.cost(VariantId::of(V), Op, Dim),
                  Model.cost(VariantId::of(V), Op, Dim));
  for (SetVariant V : AllSetVariants)
    for (OperationKind Op : AllOperationKinds)
      for (CostDimension Dim : AllCostDimensions)
        EXPECT_EQ(Loaded.cost(VariantId::of(V), Op, Dim),
                  Model.cost(VariantId::of(V), Op, Dim));
  for (MapVariant V : AllMapVariants)
    for (OperationKind Op : AllOperationKinds)
      for (CostDimension Dim : AllCostDimensions)
        EXPECT_EQ(Loaded.cost(VariantId::of(V), Op, Dim),
                  Model.cost(VariantId::of(V), Op, Dim));
}

TEST(PerformanceModel, LoadRejectsBadHeader) {
  PerformanceModel Model;
  std::istringstream IS("not-a-model\nlist ArrayList populate time 1");
  EXPECT_FALSE(Model.load(IS));
}

TEST(PerformanceModel, LoadRejectsUnknownVariantOpDim) {
  {
    PerformanceModel Model;
    std::istringstream IS(
        "cswitch-performance-model v1\nlist Bogus populate time 1");
    EXPECT_FALSE(Model.load(IS));
  }
  {
    PerformanceModel Model;
    std::istringstream IS(
        "cswitch-performance-model v1\nlist ArrayList bogus time 1");
    EXPECT_FALSE(Model.load(IS));
  }
  {
    PerformanceModel Model;
    std::istringstream IS(
        "cswitch-performance-model v1\nlist ArrayList populate bogus 1");
    EXPECT_FALSE(Model.load(IS));
  }
  {
    PerformanceModel Model;
    std::istringstream IS(
        "cswitch-performance-model v1\nblob ArrayList populate time 1");
    EXPECT_FALSE(Model.load(IS));
  }
}

TEST(PerformanceModel, LoadRejectsMissingCoefficients) {
  PerformanceModel Model;
  std::istringstream IS(
      "cswitch-performance-model v1\nlist ArrayList populate time");
  EXPECT_FALSE(Model.load(IS));
}

TEST(PerformanceModel, LoadRejectsNonFiniteCoefficients) {
  // (Out-of-range literals like 1e999 are clamped to a finite value by
  // the stream extraction itself, so only the symbolic spellings reach
  // the finiteness check.)
  for (const char *Bad : {"nan", "-nan", "inf", "-inf", "infinity"}) {
    PerformanceModel Model;
    std::istringstream IS(std::string("cswitch-performance-model v1\n"
                                      "list ArrayList populate time 4 ") +
                          Bad + "\n");
    std::string Error;
    EXPECT_FALSE(Model.load(IS, &Error)) << Bad;
    // Implementations that refuse to parse the nan/inf spelling at all
    // report trailing garbage instead; either way the row is rejected
    // with a line-numbered diagnostic.
    EXPECT_NE(Error.find("line 2"), std::string::npos) << Error;
  }
}

TEST(PerformanceModel, LoadRejectsDuplicateRows) {
  PerformanceModel Model;
  std::istringstream IS("cswitch-performance-model v1\n"
                        "list ArrayList populate time 4 0.5\n"
                        "list ArrayList populate time 9\n");
  std::string Error;
  EXPECT_FALSE(Model.load(IS, &Error));
  EXPECT_NE(Error.find("line 3"), std::string::npos) << Error;
  EXPECT_NE(Error.find("duplicate"), std::string::npos) << Error;
  // The same cell on different dimensions (or variants) is not a
  // duplicate.
  PerformanceModel Ok;
  std::istringstream IS2("cswitch-performance-model v1\n"
                         "list ArrayList populate time 4\n"
                         "list ArrayList populate alloc 4\n"
                         "list LinkedList populate time 4\n");
  EXPECT_TRUE(Ok.load(IS2));
}

TEST(PerformanceModel, LoadRejectsTrailingGarbage) {
  PerformanceModel Model;
  std::istringstream IS("cswitch-performance-model v1\n"
                        "list ArrayList populate time 4 0.5 bogus\n");
  std::string Error;
  EXPECT_FALSE(Model.load(IS, &Error));
  EXPECT_NE(Error.find("line 2"), std::string::npos) << Error;
}

TEST(PerformanceModel, LoadErrorNamesTheFailingLine) {
  PerformanceModel Model;
  std::istringstream IS("cswitch-performance-model v1\n"
                        "# comment\n"
                        "list ArrayList populate time 4\n"
                        "set Bogus populate time 4\n");
  std::string Error;
  EXPECT_FALSE(Model.load(IS, &Error));
  EXPECT_NE(Error.find("line 4"), std::string::npos) << Error;
  EXPECT_NE(Error.find("Bogus"), std::string::npos) << Error;
}

TEST(PerformanceModel, LoadSkipsCommentsAndBlankLines) {
  PerformanceModel Model;
  std::istringstream IS("cswitch-performance-model v1\n"
                        "# a comment\n"
                        "\n"
                        "list ArrayList populate time 4 0.5\n");
  ASSERT_TRUE(Model.load(IS));
  EXPECT_DOUBLE_EQ(
      Model.operationCost(VariantId::of(ListVariant::ArrayList),
                          OperationKind::Populate, CostDimension::Time,
                          10.0),
      9.0);
}

TEST(PerformanceModel, FileRoundTrip) {
  std::string Path = ::testing::TempDir() + "/cswitch_model_test.txt";
  PerformanceModel Model = defaultPerformanceModel();
  ASSERT_TRUE(Model.saveToFile(Path));
  PerformanceModel Loaded;
  ASSERT_TRUE(Loaded.loadFromFile(Path));
  EXPECT_EQ(Loaded.cost(VariantId::of(MapVariant::OpenHashMap),
                        OperationKind::Contains, CostDimension::Time),
            Model.cost(VariantId::of(MapVariant::OpenHashMap),
                       OperationKind::Contains, CostDimension::Time));
  std::remove(Path.c_str());
}

TEST(PerformanceModel, LoadFromMissingFileFails) {
  PerformanceModel Model;
  EXPECT_FALSE(Model.loadFromFile("/nonexistent/path/model.txt"));
}

} // namespace
