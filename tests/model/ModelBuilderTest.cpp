//===- ModelBuilderTest.cpp - Model builder integration tests ---------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Integration tests of the benchmark-driven model builder. These run
/// real (tiny) measurements, so assertions stay qualitative: costs are
/// positive, array scans grow with size, allocating operations report
/// bytes. They are sized to finish in well under a second.
///
//===----------------------------------------------------------------------===//

#include "model/DefaultModel.h"
#include "model/ModelBuilder.h"

#include <gtest/gtest.h>

using namespace cswitch;

namespace {

ModelBuildOptions tinyOptions() {
  ModelBuildOptions Options;
  Options.Sizes = {8, 64, 256, 512};
  Options.WarmupIterations = 0;
  Options.MeasuredIterations = 1;
  Options.MinSampleNanos = 3000;
  Options.PolynomialDegree = 2;
  return Options;
}

TEST(ModelBuildOptions, PaperSizesMatchTable3) {
  std::vector<size_t> Sizes = ModelBuildOptions::paperSizes();
  ASSERT_EQ(Sizes.size(), 21u);
  EXPECT_EQ(Sizes.front(), 10u);
  EXPECT_EQ(Sizes[1], 50u);
  EXPECT_EQ(Sizes[2], 100u);
  EXPECT_EQ(Sizes.back(), 1000u);
}

TEST(ModelBuilder, ListModelsCoverEverySequentialVariantAndOp) {
  ModelBuilder Builder(tinyOptions());
  PerformanceModel Model;
  Builder.buildListModels(Model);
  for (ListVariant V : AllListVariants) {
    // The concurrent tier is analytic-only: single-threaded timing of
    // lock-based variants would only measure the uncontended fast path.
    if (isConcurrentVariant(AbstractionKind::List,
                            static_cast<unsigned>(V))) {
      EXPECT_FALSE(Model.hasVariant(VariantId::of(V)))
          << listVariantName(V);
      continue;
    }
    EXPECT_TRUE(Model.hasVariant(VariantId::of(V)));
    for (OperationKind Op : AllOperationKinds)
      EXPECT_FALSE(Model.cost(VariantId::of(V), Op, CostDimension::Time)
                       .coefficients()
                       .empty())
          << listVariantName(V) << " " << operationKindName(Op);
  }
  // augmentConcurrentCoverage grafts the missing tier from the
  // analytic defaults — the calibrated model becomes whole.
  augmentConcurrentCoverage(Model);
  for (ListVariant V : AllListVariants)
    EXPECT_TRUE(Model.hasVariant(VariantId::of(V))) << listVariantName(V);
}

TEST(ModelBuilder, MeasuredArrayListContainsGrowsWithSize) {
  ModelBuilder Builder(tinyOptions());
  PerformanceModel Model;
  Builder.buildListModels(Model);
  VariantId Id = VariantId::of(ListVariant::ArrayList);
  double Small =
      Model.operationCost(Id, OperationKind::Contains,
                          CostDimension::Time, 8);
  double Large =
      Model.operationCost(Id, OperationKind::Contains,
                          CostDimension::Time, 512);
  EXPECT_GT(Large, Small * 4);
}

TEST(ModelBuilder, MeasuredPopulateAllocatesBytes) {
  ModelBuilder Builder(tinyOptions());
  PerformanceModel Model;
  Builder.buildSetModels(Model);
  for (SetVariant V : AllSetVariants) {
    if (isConcurrentVariant(AbstractionKind::Set,
                            static_cast<unsigned>(V)))
      continue; // Analytic-only, never measured.
    double Bytes = Model.operationCost(VariantId::of(V),
                                       OperationKind::Populate,
                                       CostDimension::Alloc, 256);
    EXPECT_GT(Bytes, 0.0) << setVariantName(V);
    // Sanity ceiling: no set allocates a kilobyte per inserted int64.
    EXPECT_LT(Bytes, 1024.0) << setVariantName(V);
  }
}

TEST(ModelBuilder, MapModelsReportHashCheaperThanArrayAtLargeSize) {
  ModelBuilder Builder(tinyOptions());
  PerformanceModel Model;
  Builder.buildMapModels(Model);
  double ArrayCost = Model.operationCost(
      VariantId::of(MapVariant::ArrayMap), OperationKind::Contains,
      CostDimension::Time, 512);
  double HashCost = Model.operationCost(
      VariantId::of(MapVariant::OpenHashMap), OperationKind::Contains,
      CostDimension::Time, 512);
  EXPECT_GT(ArrayCost, HashCost * 2);
}

TEST(ModelBuilder, ProgressCallbackFires) {
  ModelBuildOptions Options = tinyOptions();
  Options.Sizes = {8, 32, 64};
  ModelBuilder Builder(Options);
  int Lines = 0;
  Builder.setProgressCallback([&Lines](const std::string &Line) {
    EXPECT_FALSE(Line.empty());
    ++Lines;
  });
  PerformanceModel Model;
  Builder.buildListModels(Model);
  // One line per measured (variant, op) pair; the concurrent tier is
  // skipped (analytic-only).
  size_t Sequential = 0;
  for (ListVariant V : AllListVariants)
    if (!isConcurrentVariant(AbstractionKind::List,
                             static_cast<unsigned>(V)))
      ++Sequential;
  EXPECT_EQ(Lines, static_cast<int>(Sequential * NumOperationKinds));
}

} // namespace
