//===- ModelBuilderTest.cpp - Model builder integration tests ---------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Integration tests of the benchmark-driven model builder. These run
/// real (tiny) measurements, so assertions stay qualitative: costs are
/// positive, array scans grow with size, allocating operations report
/// bytes. They are sized to finish in well under a second.
///
//===----------------------------------------------------------------------===//

#include "model/ModelBuilder.h"

#include <gtest/gtest.h>

using namespace cswitch;

namespace {

ModelBuildOptions tinyOptions() {
  ModelBuildOptions Options;
  Options.Sizes = {8, 64, 256, 512};
  Options.WarmupIterations = 0;
  Options.MeasuredIterations = 1;
  Options.MinSampleNanos = 3000;
  Options.PolynomialDegree = 2;
  return Options;
}

TEST(ModelBuildOptions, PaperSizesMatchTable3) {
  std::vector<size_t> Sizes = ModelBuildOptions::paperSizes();
  ASSERT_EQ(Sizes.size(), 21u);
  EXPECT_EQ(Sizes.front(), 10u);
  EXPECT_EQ(Sizes[1], 50u);
  EXPECT_EQ(Sizes[2], 100u);
  EXPECT_EQ(Sizes.back(), 1000u);
}

TEST(ModelBuilder, ListModelsCoverEveryVariantAndOp) {
  ModelBuilder Builder(tinyOptions());
  PerformanceModel Model;
  Builder.buildListModels(Model);
  for (ListVariant V : AllListVariants) {
    EXPECT_TRUE(Model.hasVariant(VariantId::of(V)));
    for (OperationKind Op : AllOperationKinds)
      EXPECT_FALSE(Model.cost(VariantId::of(V), Op, CostDimension::Time)
                       .coefficients()
                       .empty())
          << listVariantName(V) << " " << operationKindName(Op);
  }
}

TEST(ModelBuilder, MeasuredArrayListContainsGrowsWithSize) {
  ModelBuilder Builder(tinyOptions());
  PerformanceModel Model;
  Builder.buildListModels(Model);
  VariantId Id = VariantId::of(ListVariant::ArrayList);
  double Small =
      Model.operationCost(Id, OperationKind::Contains,
                          CostDimension::Time, 8);
  double Large =
      Model.operationCost(Id, OperationKind::Contains,
                          CostDimension::Time, 512);
  EXPECT_GT(Large, Small * 4);
}

TEST(ModelBuilder, MeasuredPopulateAllocatesBytes) {
  ModelBuilder Builder(tinyOptions());
  PerformanceModel Model;
  Builder.buildSetModels(Model);
  for (SetVariant V : AllSetVariants) {
    double Bytes = Model.operationCost(VariantId::of(V),
                                       OperationKind::Populate,
                                       CostDimension::Alloc, 256);
    EXPECT_GT(Bytes, 0.0) << setVariantName(V);
    // Sanity ceiling: no set allocates a kilobyte per inserted int64.
    EXPECT_LT(Bytes, 1024.0) << setVariantName(V);
  }
}

TEST(ModelBuilder, MapModelsReportHashCheaperThanArrayAtLargeSize) {
  ModelBuilder Builder(tinyOptions());
  PerformanceModel Model;
  Builder.buildMapModels(Model);
  double ArrayCost = Model.operationCost(
      VariantId::of(MapVariant::ArrayMap), OperationKind::Contains,
      CostDimension::Time, 512);
  double HashCost = Model.operationCost(
      VariantId::of(MapVariant::OpenHashMap), OperationKind::Contains,
      CostDimension::Time, 512);
  EXPECT_GT(ArrayCost, HashCost * 2);
}

TEST(ModelBuilder, ProgressCallbackFires) {
  ModelBuildOptions Options = tinyOptions();
  Options.Sizes = {8, 32, 64};
  ModelBuilder Builder(Options);
  int Lines = 0;
  Builder.setProgressCallback([&Lines](const std::string &Line) {
    EXPECT_FALSE(Line.empty());
    ++Lines;
  });
  PerformanceModel Model;
  Builder.buildListModels(Model);
  // One line per (variant, op) pair.
  EXPECT_EQ(Lines, static_cast<int>(NumListVariants * NumOperationKinds));
}

} // namespace
