//===- DefaultModelTest.cpp - Built-in model sanity tests --------------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The built-in model must encode the cost orderings the selection
/// rules rely on (they are what every real machine exhibits and what the
/// paper's narrative assumes). These tests pin those orderings.
///
//===----------------------------------------------------------------------===//

#include "model/DefaultModel.h"

#include <gtest/gtest.h>

using namespace cswitch;

namespace {

class DefaultModelTest : public ::testing::Test {
protected:
  PerformanceModel Model = defaultPerformanceModel();

  double time(VariantId Id, OperationKind Op, double Size) {
    return Model.operationCost(Id, Op, CostDimension::Time, Size);
  }
  double alloc(VariantId Id, OperationKind Op, double Size) {
    return Model.operationCost(Id, Op, CostDimension::Alloc, Size);
  }
};

TEST_F(DefaultModelTest, EveryVariantIsCovered) {
  for (ListVariant V : AllListVariants)
    EXPECT_TRUE(Model.hasVariant(VariantId::of(V)));
  for (SetVariant V : AllSetVariants)
    EXPECT_TRUE(Model.hasVariant(VariantId::of(V)));
  for (MapVariant V : AllMapVariants)
    EXPECT_TRUE(Model.hasVariant(VariantId::of(V)));
}

TEST_F(DefaultModelTest, EveryCriticalOpHasTimeCost) {
  // Lists model all six ops; sets/maps model the four set/map-relevant
  // ones (populate, contains, iterate, remove).
  for (ListVariant V : AllListVariants)
    for (OperationKind Op : AllOperationKinds)
      EXPECT_GT(time(VariantId::of(V), Op, 100.0), 0.0)
          << listVariantName(V) << " " << operationKindName(Op);
  for (SetVariant V : AllSetVariants)
    for (OperationKind Op :
         {OperationKind::Populate, OperationKind::Contains,
          OperationKind::Iterate, OperationKind::Remove})
      EXPECT_GT(time(VariantId::of(V), Op, 100.0), 0.0)
          << setVariantName(V) << " " << operationKindName(Op);
  for (MapVariant V : AllMapVariants)
    for (OperationKind Op :
         {OperationKind::Populate, OperationKind::Contains,
          OperationKind::Iterate, OperationKind::Remove})
      EXPECT_GT(time(VariantId::of(V), Op, 100.0), 0.0)
          << mapVariantName(V) << " " << operationKindName(Op);
}

TEST_F(DefaultModelTest, ArrayScansAreLinearHashLookupsAreFlat) {
  VariantId ArrayL = VariantId::of(ListVariant::ArrayList);
  VariantId HashL = VariantId::of(ListVariant::HashArrayList);
  double ArraySmall = time(ArrayL, OperationKind::Contains, 10);
  double ArrayLarge = time(ArrayL, OperationKind::Contains, 1000);
  double HashSmall = time(HashL, OperationKind::Contains, 10);
  double HashLarge = time(HashL, OperationKind::Contains, 1000);
  EXPECT_GT(ArrayLarge, ArraySmall * 10); // linear growth.
  EXPECT_NEAR(HashLarge, HashSmall, HashSmall); // ~flat.
}

TEST_F(DefaultModelTest, SmallArraysBeatHashesOnLookups) {
  // The paper's motivating claim (§1): for a few elements, a linear
  // array search beats a hash lookup.
  EXPECT_LT(time(VariantId::of(SetVariant::ArraySet),
                 OperationKind::Contains, 5),
            time(VariantId::of(SetVariant::ChainedHashSet),
                 OperationKind::Contains, 5));
  EXPECT_LT(time(VariantId::of(MapVariant::ArrayMap),
                 OperationKind::Contains, 5),
            time(VariantId::of(MapVariant::OpenHashMap),
                 OperationKind::Contains, 5));
  // And lose at large sizes.
  EXPECT_GT(time(VariantId::of(SetVariant::ArraySet),
                 OperationKind::Contains, 1000),
            time(VariantId::of(SetVariant::ChainedHashSet),
                 OperationKind::Contains, 1000));
}

TEST_F(DefaultModelTest, OpenAddressingBeatsChainingOnLookups) {
  EXPECT_LT(time(VariantId::of(SetVariant::OpenHashSet),
                 OperationKind::Contains, 500),
            time(VariantId::of(SetVariant::ChainedHashSet),
                 OperationKind::Contains, 500));
  EXPECT_LT(time(VariantId::of(MapVariant::OpenHashMap),
                 OperationKind::Contains, 500),
            time(VariantId::of(MapVariant::ChainedHashMap),
                 OperationKind::Contains, 500));
}

TEST_F(DefaultModelTest, CompactTradesLookupSpeedForBytes) {
  VariantId Open = VariantId::of(SetVariant::OpenHashSet);
  VariantId Compact = VariantId::of(SetVariant::CompactHashSet);
  EXPECT_GT(time(Compact, OperationKind::Contains, 500),
            time(Open, OperationKind::Contains, 500));
  EXPECT_LT(alloc(Compact, OperationKind::Populate, 500),
            alloc(Open, OperationKind::Populate, 500));
}

TEST_F(DefaultModelTest, LinkedListPaysForIndexAccess) {
  EXPECT_GT(time(VariantId::of(ListVariant::LinkedList),
                 OperationKind::IndexAccess, 500),
            10 * time(VariantId::of(ListVariant::ArrayList),
                      OperationKind::IndexAccess, 500));
}

TEST_F(DefaultModelTest, HashArrayListRemoveSlowerThanArrayList) {
  // The very mismatch the paper's own model gets wrong (§5.1): here the
  // model encodes the real ordering.
  EXPECT_GT(time(VariantId::of(ListVariant::HashArrayList),
                 OperationKind::Remove, 200),
            time(VariantId::of(ListVariant::ArrayList),
                 OperationKind::Remove, 200));
}

TEST_F(DefaultModelTest, NodeBasedVariantsAllocateMost) {
  EXPECT_GT(alloc(VariantId::of(SetVariant::ChainedHashSet),
                  OperationKind::Populate, 100),
            alloc(VariantId::of(SetVariant::ArraySet),
                  OperationKind::Populate, 100));
  EXPECT_GT(alloc(VariantId::of(MapVariant::LinkedHashMap),
                  OperationKind::Populate, 100),
            alloc(VariantId::of(MapVariant::OpenHashMap),
                  OperationKind::Populate, 100));
}

TEST_F(DefaultModelTest, LookupsAllocateNothing) {
  for (SetVariant V : AllSetVariants)
    EXPECT_DOUBLE_EQ(
        alloc(VariantId::of(V), OperationKind::Contains, 100), 0.0);
}

} // namespace
