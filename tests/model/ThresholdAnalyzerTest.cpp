//===- ThresholdAnalyzerTest.cpp - Threshold analysis tests ------------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//

#include "model/ThresholdAnalyzer.h"
#include "model/DefaultModel.h"

#include <gtest/gtest.h>

using namespace cswitch;

namespace {

/// A synthetic model with a hand-computable crossing point.
PerformanceModel syntheticModel() {
  PerformanceModel Model;
  // Array contains: 1.0 * n; hash contains: 0; hash populate: 10.
  // benefit(n) = (n*1.0*n - 0 - 10n) / (10n) = (n - 10) / 10 -> zero at 10.
  Model.setCost(VariantId::of(SetVariant::ArraySet),
                OperationKind::Contains, CostDimension::Time,
                Polynomial({0.0, 1.0}));
  Model.setCost(VariantId::of(SetVariant::OpenHashSet),
                OperationKind::Contains, CostDimension::Time,
                Polynomial({0.0}));
  Model.setCost(VariantId::of(SetVariant::OpenHashSet),
                OperationKind::Populate, CostDimension::Time,
                Polynomial({10.0}));
  return Model;
}

TEST(ThresholdAnalyzer, ExactCrossingOnSyntheticModel) {
  PerformanceModel Model = syntheticModel();
  ThresholdAnalyzer Analyzer(Model);
  EXPECT_EQ(Analyzer.computeThreshold(AbstractionKind::Set, 100), 10u);
  EXPECT_LT(Analyzer.benefitAt(AbstractionKind::Set, 5), 0.0);
  EXPECT_DOUBLE_EQ(Analyzer.benefitAt(AbstractionKind::Set, 10), 0.0);
  EXPECT_GT(Analyzer.benefitAt(AbstractionKind::Set, 20), 0.0);
}

TEST(ThresholdAnalyzer, BenefitStartsNegative) {
  // At size 1 the transition cost dominates (Fig. 3 starts below zero).
  PerformanceModel Model = defaultPerformanceModel();
  ThresholdAnalyzer Analyzer(Model);
  for (AbstractionKind Kind :
       {AbstractionKind::List, AbstractionKind::Set, AbstractionKind::Map})
    EXPECT_LT(Analyzer.benefitAt(Kind, 1), 0.0);
}

TEST(ThresholdAnalyzer, BenefitIsMonotoneOnDefaultModel) {
  PerformanceModel Model = defaultPerformanceModel();
  ThresholdAnalyzer Analyzer(Model);
  double Prev = Analyzer.benefitAt(AbstractionKind::Set, 1);
  for (size_t Size = 2; Size <= 200; ++Size) {
    double Cur = Analyzer.benefitAt(AbstractionKind::Set, Size);
    EXPECT_GE(Cur, Prev - 1e-12);
    Prev = Cur;
  }
}

TEST(ThresholdAnalyzer, DefaultModelThresholdsNearPaperTable1) {
  // Paper Table 1: list 80, set 40, map 50. The analytic default model
  // lands in the same region; exact values are machine-specific.
  PerformanceModel Model = defaultPerformanceModel();
  ThresholdAnalyzer Analyzer(Model);
  AdaptiveThresholds T = Analyzer.computeAll();
  EXPECT_GE(T.List, 40u);
  EXPECT_LE(T.List, 160u);
  EXPECT_GE(T.Set, 20u);
  EXPECT_LE(T.Set, 80u);
  EXPECT_GE(T.Map, 25u);
  EXPECT_LE(T.Map, 100u);
  // The relative order matches the paper: sets transition earliest,
  // lists latest.
  EXPECT_LT(T.Set, T.Map);
  EXPECT_LT(T.Map, T.List);
}

TEST(ThresholdAnalyzer, CurveHasRequestedLength) {
  PerformanceModel Model = defaultPerformanceModel();
  ThresholdAnalyzer Analyzer(Model);
  std::vector<ThresholdCurvePoint> Curve =
      Analyzer.benefitCurve(AbstractionKind::Set, 80);
  ASSERT_EQ(Curve.size(), 80u);
  EXPECT_EQ(Curve.front().Size, 1u);
  EXPECT_EQ(Curve.back().Size, 80u);
}

TEST(ThresholdAnalyzer, NeverProfitableReturnsMaxSize) {
  // Hash lookup as expensive as array scan: transition never pays.
  PerformanceModel Model;
  Model.setCost(VariantId::of(SetVariant::ArraySet),
                OperationKind::Contains, CostDimension::Time,
                Polynomial({0.0, 1.0}));
  Model.setCost(VariantId::of(SetVariant::OpenHashSet),
                OperationKind::Contains, CostDimension::Time,
                Polynomial({0.0, 1.0}));
  Model.setCost(VariantId::of(SetVariant::OpenHashSet),
                OperationKind::Populate, CostDimension::Time,
                Polynomial({10.0}));
  ThresholdAnalyzer Analyzer(Model);
  EXPECT_EQ(Analyzer.computeThreshold(AbstractionKind::Set, 64), 64u);
}

} // namespace
