//===- ModelSerializationFuzzTest.cpp - Serialization fuzzing ----------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Randomized round-trip and robustness tests of the performance-model
/// text format: arbitrary coefficient patterns must survive save/load
/// bit-exactly, and mangled inputs must be rejected without crashing.
///
//===----------------------------------------------------------------------===//

#include "model/CostModel.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

using namespace cswitch;

namespace {

/// Builds a model with random sparse coverage and random coefficients.
PerformanceModel randomModel(SplitMix64 &Rng) {
  PerformanceModel Model;
  for (size_t A = 0; A != NumAbstractionKinds; ++A) {
    auto Kind = static_cast<AbstractionKind>(A);
    for (size_t V = 0, E = numVariantsOf(Kind); V != E; ++V) {
      for (OperationKind Op : AllOperationKinds) {
        for (CostDimension Dim : AllCostDimensions) {
          if (Rng.nextBelow(3) == 0)
            continue; // leave some triples empty.
          size_t Degree = Rng.nextBelow(4);
          std::vector<double> Coeffs;
          for (size_t D = 0; D != Degree + 1; ++D) {
            // Mix of magnitudes, including tiny, huge and negative.
            double Mag = std::pow(10.0, Rng.nextInRange(-9, 9));
            double Sign = Rng.nextBool(0.3) ? -1.0 : 1.0;
            Coeffs.push_back(Sign * Mag * Rng.nextDouble());
          }
          Model.setCost({Kind, static_cast<unsigned>(V)}, Op, Dim,
                        Polynomial(std::move(Coeffs)));
        }
      }
    }
  }
  return Model;
}

class SerializationFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SerializationFuzz, RoundTripIsExact) {
  SplitMix64 Rng(GetParam());
  PerformanceModel Model = randomModel(Rng);
  std::ostringstream OS;
  Model.save(OS);
  PerformanceModel Loaded;
  std::istringstream IS(OS.str());
  ASSERT_TRUE(Loaded.load(IS));
  for (size_t A = 0; A != NumAbstractionKinds; ++A) {
    auto Kind = static_cast<AbstractionKind>(A);
    for (size_t V = 0, E = numVariantsOf(Kind); V != E; ++V)
      for (OperationKind Op : AllOperationKinds)
        for (CostDimension Dim : AllCostDimensions)
          ASSERT_EQ(
              Loaded.cost({Kind, static_cast<unsigned>(V)}, Op, Dim),
              Model.cost({Kind, static_cast<unsigned>(V)}, Op, Dim));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializationFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u,
                                           8u));

TEST(SerializationRobustness, TruncatedLinesRejected) {
  SplitMix64 Rng(99);
  PerformanceModel Model = randomModel(Rng);
  std::ostringstream OS;
  Model.save(OS);
  std::string Text = OS.str();
  // Chop the document at arbitrary points past the header: the loader
  // must either succeed (clean line boundary) or fail, never crash.
  for (size_t Cut = 30; Cut < Text.size(); Cut += 97) {
    PerformanceModel Loaded;
    std::istringstream IS(Text.substr(0, Cut));
    (void)Loaded.load(IS);
  }
  SUCCEED();
}

TEST(SerializationRobustness, GarbageInputRejected) {
  for (const char *Garbage :
       {"", "\n\n\n", "cswitch-performance-model v2\n",
        "cswitch-performance-model v1\nlist ArrayList populate time x\n",
        "cswitch-performance-model v1\n\xff\xfe\x00garbage"}) {
    PerformanceModel Model;
    std::istringstream IS(Garbage);
    EXPECT_FALSE(Model.load(IS)) << Garbage;
  }
}

TEST(SerializationRobustness, HeaderOnlyIsValidEmptyModel) {
  PerformanceModel Model;
  std::istringstream IS("cswitch-performance-model v1\n");
  EXPECT_TRUE(Model.load(IS));
  EXPECT_FALSE(Model.hasVariant(VariantId::of(ListVariant::ArrayList)));
}

} // namespace
