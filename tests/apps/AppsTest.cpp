//===- AppsTest.cpp - DaCapo-substitute application tests --------------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The key property the Table 5 experiment rests on: the instrumentation
/// level (Original / FullAdap / InstanceAdap) must never change program
/// semantics — only time and memory. The checksum equality tests prove
/// it for every app.
///
//===----------------------------------------------------------------------===//

#include "apps/Apps.h"
#include "model/DefaultModel.h"

#include <gtest/gtest.h>

using namespace cswitch;

namespace {

AppRunConfig testConfig(AppConfig Config,
                        SelectionRule Rule = SelectionRule::timeRule()) {
  AppRunConfig RC;
  RC.Config = Config;
  RC.Rule = std::move(Rule);
  RC.Model =
      std::make_shared<const PerformanceModel>(defaultPerformanceModel());
  RC.Seed = 7;
  RC.Scale = 0.05;
  RC.CtxOptions.WindowSize = 50;
  RC.CtxOptions.FinishedRatio = 0.6;
  RC.CtxOptions.LogEvents = false;
  return RC;
}

class AppKindTest : public ::testing::TestWithParam<AppKind> {};

TEST_P(AppKindTest, OriginalRunProducesWork) {
  AppResult R = runApp(GetParam(), testConfig(AppConfig::Original));
  EXPECT_GT(R.Seconds, 0.0);
  EXPECT_GT(R.PeakLiveBytes, 0);
  EXPECT_GT(R.InstancesCreated, 10u);
  EXPECT_NE(R.Checksum, 0u);
  EXPECT_EQ(R.Transitions, 0u);
}

TEST_P(AppKindTest, ChecksumIsConfigurationInvariant) {
  uint64_t Original =
      runApp(GetParam(), testConfig(AppConfig::Original)).Checksum;
  uint64_t FullTime =
      runApp(GetParam(), testConfig(AppConfig::FullAdap)).Checksum;
  uint64_t FullAlloc =
      runApp(GetParam(),
             testConfig(AppConfig::FullAdap, SelectionRule::allocRule()))
          .Checksum;
  uint64_t Instance =
      runApp(GetParam(), testConfig(AppConfig::InstanceAdap)).Checksum;
  EXPECT_EQ(Original, FullTime);
  EXPECT_EQ(Original, FullAlloc);
  EXPECT_EQ(Original, Instance);
}

TEST_P(AppKindTest, ChecksumIsSeedDeterministic) {
  AppRunConfig A = testConfig(AppConfig::Original);
  AppRunConfig B = testConfig(AppConfig::Original);
  EXPECT_EQ(runApp(GetParam(), A).Checksum, runApp(GetParam(), B).Checksum);
  B.Seed = 8;
  EXPECT_NE(runApp(GetParam(), A).Checksum, runApp(GetParam(), B).Checksum);
}

TEST_P(AppKindTest, FullAdapPerformsTransitions) {
  AppRunConfig RC = testConfig(AppConfig::FullAdap);
  RC.Scale = 0.2;
  AppResult R = runApp(GetParam(), RC);
  EXPECT_GT(R.Transitions, 0u)
      << appKindName(GetParam())
      << " should switch at least one site under Rtime";
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, AppKindTest, ::testing::ValuesIn(AllAppKinds),
    [](const ::testing::TestParamInfo<AppKind> &Info) {
      return appKindName(Info.param);
    });

TEST(Apps, TargetSiteCountsMatchPaperTable5) {
  EXPECT_EQ(runApp(AppKind::Avrora, testConfig(AppConfig::Original))
                .TargetSites,
            7u);
  EXPECT_EQ(
      runApp(AppKind::Bloat, testConfig(AppConfig::Original)).TargetSites,
      17u);
  EXPECT_EQ(
      runApp(AppKind::Fop, testConfig(AppConfig::Original)).TargetSites,
      15u);
  EXPECT_EQ(
      runApp(AppKind::H2, testConfig(AppConfig::Original)).TargetSites,
      10u);
  EXPECT_EQ(runApp(AppKind::Lusearch, testConfig(AppConfig::Original))
                .TargetSites,
            12u);
}

TEST(Apps, NamesAreStable) {
  EXPECT_STREQ(appKindName(AppKind::Avrora), "avrora");
  EXPECT_STREQ(appKindName(AppKind::Bloat), "bloat");
  EXPECT_STREQ(appKindName(AppKind::Fop), "fop");
  EXPECT_STREQ(appKindName(AppKind::H2), "h2");
  EXPECT_STREQ(appKindName(AppKind::Lusearch), "lusearch");
  EXPECT_STREQ(appConfigName(AppConfig::Original), "original");
  EXPECT_STREQ(appConfigName(AppConfig::FullAdap), "fulladap");
  EXPECT_STREQ(appConfigName(AppConfig::InstanceAdap), "instanceadap");
}

TEST(Apps, ScaleControlsWorkVolume) {
  AppRunConfig Small = testConfig(AppConfig::Original);
  Small.Scale = 0.05;
  AppRunConfig Large = testConfig(AppConfig::Original);
  Large.Scale = 0.2;
  AppResult RS = runApp(AppKind::H2, Small);
  AppResult RL = runApp(AppKind::H2, Large);
  EXPECT_GT(RL.InstancesCreated, RS.InstancesCreated * 2);
}

TEST(AppHarness, InstanceAdapUsesAdaptiveVariants) {
  AppHarness Harness(AppConfig::InstanceAdap, SelectionRule::timeRule(),
                     Switch::model());
  AppHarness::ListSite LS =
      Harness.declareListSite("t:l", ListVariant::ArrayList);
  AppHarness::SetSite SS =
      Harness.declareSetSite("t:s", SetVariant::ChainedHashSet);
  AppHarness::MapSite MS =
      Harness.declareMapSite("t:m", MapVariant::ChainedHashMap);
  EXPECT_EQ(LS.create().variant(), ListVariant::AdaptiveList);
  EXPECT_EQ(SS.create().variant(), SetVariant::AdaptiveSet);
  EXPECT_EQ(MS.create().variant(), MapVariant::AdaptiveMap);
  EXPECT_EQ(Harness.siteCount(), 3u);
  EXPECT_TRUE(Harness.contexts().empty());
}

TEST(AppHarness, OriginalUsesDeclaredDefaults) {
  AppHarness Harness(AppConfig::Original, SelectionRule::timeRule(),
                     Switch::model());
  AppHarness::ListSite LS =
      Harness.declareListSite("t:l", ListVariant::LinkedList);
  EXPECT_EQ(LS.create().variant(), ListVariant::LinkedList);
  EXPECT_EQ(Harness.evaluateAll(), 0u);
}

TEST(AppHarness, FullAdapCreatesOneContextPerSite) {
  ContextOptions Options;
  Options.LogEvents = false;
  AppHarness Harness(AppConfig::FullAdap, SelectionRule::timeRule(),
                     Switch::model(), Options);
  Harness.declareListSite("t:l", ListVariant::ArrayList);
  Harness.declareSetSite("t:s", SetVariant::ChainedHashSet);
  EXPECT_EQ(Harness.contexts().size(), 2u);
  EXPECT_EQ(Harness.contexts()[0]->name(), "t:l");
}

} // namespace
