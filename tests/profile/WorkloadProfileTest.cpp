//===- WorkloadProfileTest.cpp - Profile unit tests -------------------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//

#include "profile/WorkloadProfile.h"

#include <gtest/gtest.h>

using namespace cswitch;

namespace {

TEST(OperationKind, NamesRoundTrip) {
  for (OperationKind Kind : AllOperationKinds) {
    OperationKind Parsed;
    ASSERT_TRUE(parseOperationKind(operationKindName(Kind), Parsed));
    EXPECT_EQ(Parsed, Kind);
  }
}

TEST(OperationKind, UnknownNameRejected) {
  OperationKind Out;
  EXPECT_FALSE(parseOperationKind("frobnicate", Out));
  EXPECT_FALSE(parseOperationKind("", Out));
}

TEST(OperationKind, EnumCountsAgree) {
  EXPECT_EQ(AllOperationKinds.size(), NumOperationKinds);
}

TEST(WorkloadProfile, StartsEmpty) {
  WorkloadProfile P;
  EXPECT_EQ(P.totalOperations(), 0u);
  EXPECT_EQ(P.MaxSize, 0u);
  for (OperationKind Kind : AllOperationKinds)
    EXPECT_EQ(P.count(Kind), 0u);
}

TEST(WorkloadProfile, RecordAccumulates) {
  WorkloadProfile P;
  P.record(OperationKind::Populate);
  P.record(OperationKind::Populate);
  P.record(OperationKind::Contains, 10);
  EXPECT_EQ(P.count(OperationKind::Populate), 2u);
  EXPECT_EQ(P.count(OperationKind::Contains), 10u);
  EXPECT_EQ(P.totalOperations(), 12u);
}

TEST(WorkloadProfile, RecordSizeKeepsMaximum) {
  WorkloadProfile P;
  P.recordSize(5);
  P.recordSize(100);
  P.recordSize(7);
  EXPECT_EQ(P.MaxSize, 100u);
}

TEST(WorkloadProfile, MergeSumsCountsAndMaxesSize) {
  WorkloadProfile A, B;
  A.record(OperationKind::Populate, 3);
  A.recordSize(50);
  B.record(OperationKind::Populate, 4);
  B.record(OperationKind::Remove, 1);
  B.recordSize(20);
  A.merge(B);
  EXPECT_EQ(A.count(OperationKind::Populate), 7u);
  EXPECT_EQ(A.count(OperationKind::Remove), 1u);
  EXPECT_EQ(A.MaxSize, 50u);
}

TEST(WorkloadProfile, ResetClearsEverything) {
  WorkloadProfile P;
  P.record(OperationKind::Iterate, 9);
  P.recordSize(33);
  P.reset();
  EXPECT_EQ(P, WorkloadProfile());
}

TEST(WorkloadProfile, ToStringListsNonZeroCounts) {
  WorkloadProfile P;
  P.record(OperationKind::Populate, 100);
  P.record(OperationKind::Contains, 5);
  P.recordSize(100);
  EXPECT_EQ(P.toString(), "populate:100 contains:5 max:100");
  EXPECT_EQ(WorkloadProfile().toString(), "max:0");
}

TEST(WorkloadProfile, EqualityIsFieldwise) {
  WorkloadProfile A, B;
  EXPECT_EQ(A, B);
  A.record(OperationKind::Middle);
  EXPECT_NE(A, B);
  B.record(OperationKind::Middle);
  EXPECT_EQ(A, B);
}

} // namespace
