//===- LeastSquaresTest.cpp - Least-squares fitting unit tests ------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//

#include "support/LeastSquares.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace cswitch;

namespace {

TEST(SolveLinearSystem, SolvesIdentity) {
  std::vector<double> A = {1, 0, 0, 1};
  std::vector<double> B = {3, -4};
  std::vector<double> X = solveLinearSystem(A, B, 2);
  ASSERT_EQ(X.size(), 2u);
  EXPECT_DOUBLE_EQ(X[0], 3.0);
  EXPECT_DOUBLE_EQ(X[1], -4.0);
}

TEST(SolveLinearSystem, SolvesGeneral3x3) {
  // A * x = b with x = (1, -2, 3).
  std::vector<double> A = {2, 1, -1, -3, -1, 2, -2, 1, 2};
  std::vector<double> X0 = {1, -2, 3};
  std::vector<double> B(3, 0.0);
  for (size_t R = 0; R != 3; ++R)
    for (size_t C = 0; C != 3; ++C)
      B[R] += A[R * 3 + C] * X0[C];
  std::vector<double> X = solveLinearSystem(A, B, 3);
  ASSERT_EQ(X.size(), 3u);
  for (size_t I = 0; I != 3; ++I)
    EXPECT_NEAR(X[I], X0[I], 1e-9);
}

TEST(SolveLinearSystem, RequiresPivoting) {
  // Zero on the initial diagonal forces a row swap.
  std::vector<double> A = {0, 1, 1, 0};
  std::vector<double> B = {5, 7};
  std::vector<double> X = solveLinearSystem(A, B, 2);
  ASSERT_EQ(X.size(), 2u);
  EXPECT_DOUBLE_EQ(X[0], 7.0);
  EXPECT_DOUBLE_EQ(X[1], 5.0);
}

TEST(SolveLinearSystem, SingularReturnsEmpty) {
  std::vector<double> A = {1, 2, 2, 4}; // rank 1.
  std::vector<double> B = {1, 2};
  EXPECT_TRUE(solveLinearSystem(A, B, 2).empty());
}

TEST(FitPolynomial, RecoversExactConstant) {
  std::vector<double> Xs = {1, 2, 3, 4};
  std::vector<double> Ys = {5, 5, 5, 5};
  Polynomial P = fitPolynomial(Xs, Ys, 0);
  ASSERT_EQ(P.coefficients().size(), 1u);
  EXPECT_NEAR(P.coefficients()[0], 5.0, 1e-9);
}

TEST(FitPolynomial, RecoversExactLine) {
  std::vector<double> Xs = {10, 20, 30, 40, 50};
  std::vector<double> Ys;
  for (double X : Xs)
    Ys.push_back(3.0 + 0.25 * X);
  Polynomial P = fitPolynomial(Xs, Ys, 1);
  EXPECT_NEAR(P.evaluate(100.0), 28.0, 1e-6);
  EXPECT_NEAR(P.coefficients()[0], 3.0, 1e-6);
  EXPECT_NEAR(P.coefficients()[1], 0.25, 1e-9);
}

TEST(FitPolynomial, RecoversExactCubicAtPaperScale) {
  // Sizes up to 10^4 like the real model builder; exact recovery shows
  // the x-scaling keeps the normal equations well conditioned.
  std::vector<double> Xs;
  for (double X = 10; X <= 10000; X += 250)
    Xs.push_back(X);
  auto F = [](double X) {
    return 12.0 + 0.5 * X - 2e-4 * X * X + 3e-8 * X * X * X;
  };
  std::vector<double> Ys;
  for (double X : Xs)
    Ys.push_back(F(X));
  Polynomial P = fitPolynomial(Xs, Ys, 3);
  for (double X : {15.0, 500.0, 5000.0, 9000.0})
    EXPECT_NEAR(P.evaluate(X), F(X), std::abs(F(X)) * 1e-6 + 1e-6);
}

TEST(FitPolynomial, OverdeterminedNoisyFitIsClose) {
  SplitMix64 Rng(7);
  std::vector<double> Xs, Ys;
  for (double X = 1; X <= 200; X += 1) {
    Xs.push_back(X);
    // y = 2 + 0.1x with +-0.5 uniform noise.
    Ys.push_back(2.0 + 0.1 * X + (Rng.nextDouble() - 0.5));
  }
  Polynomial P = fitPolynomial(Xs, Ys, 1);
  EXPECT_NEAR(P.coefficients()[0], 2.0, 0.3);
  EXPECT_NEAR(P.coefficients()[1], 0.1, 0.01);
}

TEST(FitPolynomial, AllIdenticalXsIsSingular) {
  std::vector<double> Xs = {5, 5, 5, 5};
  std::vector<double> Ys = {1, 2, 3, 4};
  Polynomial P = fitPolynomial(Xs, Ys, 1);
  EXPECT_TRUE(P.coefficients().empty());
}

TEST(ResidualSumOfSquares, ZeroForExactFit) {
  std::vector<double> Xs = {1, 2, 3};
  std::vector<double> Ys = {2, 4, 6};
  Polynomial P({0.0, 2.0});
  EXPECT_NEAR(residualSumOfSquares(P, Xs, Ys), 0.0, 1e-12);
}

TEST(ResidualSumOfSquares, CountsSquaredResiduals) {
  std::vector<double> Xs = {0, 1};
  std::vector<double> Ys = {1, 3};
  Polynomial P({0.0}); // predicts 0 everywhere.
  EXPECT_DOUBLE_EQ(residualSumOfSquares(P, Xs, Ys), 1.0 + 9.0);
}

TEST(FitPolynomial, HigherDegreeNeverIncreasesResidual) {
  SplitMix64 Rng(11);
  std::vector<double> Xs, Ys;
  for (double X = 1; X <= 60; X += 1) {
    Xs.push_back(X);
    Ys.push_back(5.0 + 0.3 * X + 0.01 * X * X + Rng.nextDouble());
  }
  double PrevRss = 1e300;
  for (size_t Degree = 0; Degree <= 3; ++Degree) {
    Polynomial P = fitPolynomial(Xs, Ys, Degree);
    double Rss = residualSumOfSquares(P, Xs, Ys);
    EXPECT_LE(Rss, PrevRss * (1.0 + 1e-9));
    PrevRss = Rss;
  }
}

} // namespace
