//===- PolynomialTest.cpp - Polynomial unit tests --------------------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//

#include "support/Polynomial.h"

#include <gtest/gtest.h>

using namespace cswitch;

namespace {

TEST(Polynomial, DefaultIsZero) {
  Polynomial P;
  EXPECT_EQ(P.degree(), 0u);
  EXPECT_DOUBLE_EQ(P.evaluate(0.0), 0.0);
  EXPECT_DOUBLE_EQ(P.evaluate(123.0), 0.0);
  EXPECT_TRUE(P.coefficients().empty());
}

TEST(Polynomial, EvaluatesConstant) {
  Polynomial P({7.5});
  EXPECT_EQ(P.degree(), 0u);
  EXPECT_DOUBLE_EQ(P.evaluate(-100.0), 7.5);
  EXPECT_DOUBLE_EQ(P.evaluate(100.0), 7.5);
}

TEST(Polynomial, EvaluatesLinear) {
  Polynomial P({1.0, 2.0});
  EXPECT_EQ(P.degree(), 1u);
  EXPECT_DOUBLE_EQ(P.evaluate(0.0), 1.0);
  EXPECT_DOUBLE_EQ(P.evaluate(3.0), 7.0);
}

TEST(Polynomial, EvaluatesCubicHorner) {
  // 2 - x + 3x^2 + 0.5x^3 at x = 2: 2 - 2 + 12 + 4 = 16.
  Polynomial P({2.0, -1.0, 3.0, 0.5});
  EXPECT_EQ(P.degree(), 3u);
  EXPECT_DOUBLE_EQ(P.evaluate(2.0), 16.0);
  EXPECT_DOUBLE_EQ(P.evaluate(0.0), 2.0);
}

TEST(Polynomial, EvaluateNonNegativeClampsBelowZero) {
  Polynomial P({-5.0, 1.0}); // negative below x = 5.
  EXPECT_DOUBLE_EQ(P.evaluateNonNegative(0.0), 0.0);
  EXPECT_DOUBLE_EQ(P.evaluateNonNegative(4.0), 0.0);
  EXPECT_DOUBLE_EQ(P.evaluateNonNegative(10.0), 5.0);
  // Plain evaluate is not clamped.
  EXPECT_DOUBLE_EQ(P.evaluate(0.0), -5.0);
}

TEST(Polynomial, AdditionAlignsDegrees) {
  Polynomial A({1.0, 2.0});
  Polynomial B({10.0, 0.0, 3.0});
  Polynomial Sum = A + B;
  EXPECT_EQ(Sum.degree(), 2u);
  EXPECT_DOUBLE_EQ(Sum.evaluate(2.0), 1.0 + 4.0 + 10.0 + 12.0);
}

TEST(Polynomial, AdditionWithZero) {
  Polynomial A({4.0, 1.0});
  Polynomial Sum = A + Polynomial();
  EXPECT_EQ(Sum, A);
}

TEST(Polynomial, ScaledMultipliesAllCoefficients) {
  Polynomial P({1.0, -2.0, 4.0});
  Polynomial S = P.scaled(0.5);
  EXPECT_DOUBLE_EQ(S.coefficients()[0], 0.5);
  EXPECT_DOUBLE_EQ(S.coefficients()[1], -1.0);
  EXPECT_DOUBLE_EQ(S.coefficients()[2], 2.0);
}

TEST(Polynomial, ToStringRendersTerms) {
  EXPECT_EQ(Polynomial().toString(), "0");
  EXPECT_EQ(Polynomial({3.0}).toString(), "3");
  EXPECT_EQ(Polynomial({3.0, 2.0}).toString(), "3 + 2*x");
  EXPECT_EQ(Polynomial({0.0, 0.0, 1.5}).toString(), "0 + 0*x + 1.5*x^2");
}

TEST(Polynomial, EqualityIsStructural) {
  EXPECT_EQ(Polynomial({1.0, 2.0}), Polynomial({1.0, 2.0}));
  EXPECT_FALSE(Polynomial({1.0}) == Polynomial({1.0, 0.0}));
}

} // namespace
