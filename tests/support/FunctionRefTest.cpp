//===- FunctionRefTest.cpp - FunctionRef unit tests -------------------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//

#include "support/FunctionRef.h"

#include <gtest/gtest.h>

using namespace cswitch;

namespace {

int freeFunction(int X) { return X * 2; }

TEST(FunctionRef, CallsLambda) {
  auto Double = [](int X) { return X * 2; };
  FunctionRef<int(int)> Ref(Double);
  EXPECT_EQ(Ref(21), 42);
}

TEST(FunctionRef, CapturingLambdaSeesState) {
  int Counter = 0;
  auto Bump = [&Counter](int By) {
    Counter += By;
    return Counter;
  };
  FunctionRef<int(int)> Ref(Bump);
  EXPECT_EQ(Ref(5), 5);
  EXPECT_EQ(Ref(7), 12);
  EXPECT_EQ(Counter, 12);
}

TEST(FunctionRef, WrapsFreeFunction) {
  FunctionRef<int(int)> Ref(freeFunction);
  EXPECT_EQ(Ref(10), 20);
}

TEST(FunctionRef, DefaultIsFalsy) {
  FunctionRef<void()> Empty;
  EXPECT_FALSE(static_cast<bool>(Empty));
  auto Noop = [] {};
  FunctionRef<void()> Set(Noop);
  EXPECT_TRUE(static_cast<bool>(Set));
}

TEST(FunctionRef, PassesReferencesThrough) {
  auto Sum = [](const int64_t &V, int64_t &Acc) { Acc += V; };
  FunctionRef<void(const int64_t &, int64_t &)> Ref(Sum);
  int64_t Acc = 0;
  Ref(4, Acc);
  Ref(38, Acc);
  EXPECT_EQ(Acc, 42);
}

TEST(FunctionRef, CopyIsShallow) {
  int Calls = 0;
  auto Fn = [&Calls] { ++Calls; };
  FunctionRef<void()> A(Fn);
  FunctionRef<void()> B = A;
  A();
  B();
  EXPECT_EQ(Calls, 2);
}

} // namespace
