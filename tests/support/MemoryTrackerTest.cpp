//===- MemoryTrackerTest.cpp - Allocation accounting unit tests -----------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//

#include "support/MemoryTracker.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

using namespace cswitch;

namespace {

TEST(MemoryTracker, AllocatedIsCumulative) {
  uint64_t Before = MemoryTracker::allocatedBytes();
  MemoryTracker::recordAlloc(100);
  MemoryTracker::recordFree(100);
  MemoryTracker::recordAlloc(50);
  EXPECT_EQ(MemoryTracker::allocatedBytes() - Before, 150u);
  MemoryTracker::recordFree(50);
}

TEST(MemoryTracker, LiveTracksBalance) {
  int64_t Before = MemoryTracker::liveBytes();
  MemoryTracker::recordAlloc(200);
  EXPECT_EQ(MemoryTracker::liveBytes() - Before, 200);
  MemoryTracker::recordFree(120);
  EXPECT_EQ(MemoryTracker::liveBytes() - Before, 80);
  MemoryTracker::recordFree(80);
  EXPECT_EQ(MemoryTracker::liveBytes() - Before, 0);
}

TEST(MemoryTracker, PeakRidesHighWaterMark) {
  MemoryTracker::resetPeak();
  int64_t Base = MemoryTracker::peakLiveBytes();
  MemoryTracker::recordAlloc(1000);
  MemoryTracker::recordFree(1000);
  MemoryTracker::recordAlloc(300);
  EXPECT_EQ(MemoryTracker::peakLiveBytes() - Base, 1000);
  MemoryTracker::recordFree(300);
  MemoryTracker::resetPeak();
  EXPECT_EQ(MemoryTracker::peakLiveBytes(), MemoryTracker::liveBytes());
}

TEST(AllocationScope, MeasuresWithinScopeOnly) {
  MemoryTracker::recordAlloc(64);
  MemoryTracker::recordFree(64);
  AllocationScope Scope;
  EXPECT_EQ(Scope.allocatedInScope(), 0u);
  MemoryTracker::recordAlloc(128);
  EXPECT_EQ(Scope.allocatedInScope(), 128u);
  MemoryTracker::recordFree(128);
  // Frees do not reduce the cumulative measure.
  EXPECT_EQ(Scope.allocatedInScope(), 128u);
}

TEST(CountingAllocator, VectorAllocationsAreCounted) {
  AllocationScope Scope;
  {
    std::vector<int64_t, CountingAllocator<int64_t>> V;
    V.reserve(100);
    EXPECT_GE(Scope.allocatedInScope(), 100 * sizeof(int64_t));
  }
  int64_t LiveBefore = MemoryTracker::liveBytes();
  {
    std::vector<int64_t, CountingAllocator<int64_t>> V;
    V.resize(64);
    EXPECT_GT(MemoryTracker::liveBytes(), LiveBefore);
  }
  // Destruction releases the live bytes again.
  EXPECT_EQ(MemoryTracker::liveBytes(), LiveBefore);
}

TEST(CountingAllocator, EqualityAndRebind) {
  CountingAllocator<int> A;
  CountingAllocator<double> B;
  EXPECT_TRUE(A == CountingAllocator<int>(B));
  EXPECT_FALSE(A != CountingAllocator<int>(B));
}

TEST(NewCounted, PairsWithDeleteCounted) {
  int64_t LiveBefore = MemoryTracker::liveBytes();
  struct Node {
    int64_t Value;
    Node *Next;
  };
  Node *N = newCounted<Node>(Node{7, nullptr});
  EXPECT_EQ(N->Value, 7);
  EXPECT_EQ(MemoryTracker::liveBytes() - LiveBefore,
            static_cast<int64_t>(sizeof(Node)));
  deleteCounted(N);
  EXPECT_EQ(MemoryTracker::liveBytes(), LiveBefore);
}

TEST(DeleteCounted, NullIsNoop) {
  int *P = nullptr;
  deleteCounted(P); // must not crash
}

TEST(MemoryTracker, CountersAreThreadLocal) {
  MemoryTracker::recordAlloc(512);
  int64_t MainLive = MemoryTracker::liveBytes();
  int64_t OtherLive = -1;
  std::thread T([&OtherLive] {
    OtherLive = MemoryTracker::liveBytes();
    MemoryTracker::recordAlloc(4096);
    MemoryTracker::recordFree(4096);
  });
  T.join();
  // The other thread starts from its own zeroed counters and its
  // activity does not disturb this thread's balance.
  EXPECT_EQ(OtherLive, 0);
  EXPECT_EQ(MemoryTracker::liveBytes(), MainLive);
  MemoryTracker::recordFree(512);
}

} // namespace
