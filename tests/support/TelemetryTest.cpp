//===- TelemetryTest.cpp - Telemetry schema and export unit tests ---------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
//
// Tests of the support-layer telemetry schema in isolation: counter
// arithmetic (saturating deltas), snapshot diffing by context name, the
// stateful interval tracker, and the JSON/CSV serializers. The
// engine-facing round-trip tests (snapshot == SwitchEngine::stats())
// live in tests/core/SwitchApiTest.cpp.
//
//===----------------------------------------------------------------------===//

#include "support/MetricsExport.h"
#include "support/Telemetry.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace cswitch;

namespace {

ContextStats makeStats(uint64_t Base) {
  ContextStats S;
  S.InstancesCreated = Base + 1;
  S.InstancesMonitored = Base + 2;
  S.ProfilesPublished = Base + 3;
  S.ProfilesDiscarded = Base + 4;
  S.Evaluations = Base + 5;
  S.Switches = Base + 6;
  return S;
}

TEST(Telemetry, ContextStatsAccumulateAndSubtract) {
  ContextStats A = makeStats(10);
  ContextStats B = makeStats(0);
  ContextStats Sum = A;
  Sum += B;
  EXPECT_EQ(Sum.InstancesCreated, 12u); // 11 + 1
  EXPECT_EQ(Sum.Switches, 22u);         // 16 + 6
  ContextStats Delta = Sum - A;
  EXPECT_TRUE(Delta == B);
}

TEST(Telemetry, SubtractionSaturatesAtZero) {
  ContextStats Small = makeStats(0);
  ContextStats Big = makeStats(100);
  ContextStats Delta = Small - Big; // counters went "backwards"
  EXPECT_TRUE(Delta == ContextStats{});

  EngineStats ESmall;
  ESmall.Contexts = 1;
  ESmall.Switches = 2;
  EngineStats EBig;
  EBig.Contexts = 5;
  EBig.Switches = 9;
  EngineStats EDelta = ESmall - EBig;
  EXPECT_EQ(EDelta.Contexts, 0u);
  EXPECT_EQ(EDelta.Switches, 0u);
}

TEST(Telemetry, RecorderStatsAccumulateAndSubtractSaturating) {
  RecorderStats A;
  A.Recorders = 1;
  A.OpsRecorded = 100;
  A.OpsDropped = 5;
  A.InstancesSampled = 10;
  A.InstancesSkipped = 30;
  RecorderStats B = A;
  B += A;
  EXPECT_EQ(B.Recorders, 2u);
  EXPECT_EQ(B.OpsRecorded, 200u);
  EXPECT_EQ(B.InstancesSkipped, 60u);
  EXPECT_TRUE(B - A == A);
  // Monotonic counters: a backwards interval clamps to zero.
  EXPECT_TRUE(A - B == RecorderStats{});
}

TEST(Telemetry, EngineStatsCountContextsWhenAggregating) {
  EngineStats E;
  E += makeStats(0);
  E += makeStats(10);
  EXPECT_EQ(E.Contexts, 2u);
  EXPECT_EQ(E.InstancesCreated, 12u); // 1 + 11
  EngineStats Twice = E;
  Twice += E;
  EXPECT_EQ(Twice.Contexts, 4u);
  EXPECT_EQ(Twice.InstancesCreated, 24u);
}

TEST(Telemetry, SnapshotDiffMatchesContextsByName) {
  TelemetrySnapshot Before;
  ContextSnapshot Old;
  Old.Name = "site-a";
  Old.Stats = makeStats(0);
  Before.Contexts.push_back(Old);
  ContextSnapshot Vanished;
  Vanished.Name = "site-gone";
  Before.Contexts.push_back(Vanished);
  Before.Engine += Old.Stats;
  Before.Events.Recorded = 10;

  TelemetrySnapshot Now;
  ContextSnapshot NewA;
  NewA.Name = "site-a";
  NewA.Variant = "LinkedList";
  NewA.Stats = makeStats(100);
  NewA.FootprintBytes = 640;
  Now.Contexts.push_back(NewA);
  ContextSnapshot Fresh;
  Fresh.Name = "site-new";
  Fresh.Stats = makeStats(5);
  Now.Contexts.push_back(Fresh);
  Now.Engine += NewA.Stats;
  Now.Engine += Fresh.Stats;
  Now.Events.Recorded = 25;

  TelemetrySnapshot Delta = Now - Before;
  ASSERT_EQ(Delta.Contexts.size(), 2u); // vanished context omitted
  EXPECT_EQ(Delta.Contexts[0].Name, "site-a");
  EXPECT_TRUE(Delta.Contexts[0].Stats == makeStats(100) - makeStats(0));
  // Variant and footprint come from the Now side.
  EXPECT_EQ(Delta.Contexts[0].Variant, "LinkedList");
  EXPECT_EQ(Delta.Contexts[0].FootprintBytes, 640u);
  // A context only present in Now appears verbatim.
  EXPECT_EQ(Delta.Contexts[1].Name, "site-new");
  EXPECT_TRUE(Delta.Contexts[1].Stats == makeStats(5));
  EXPECT_EQ(Delta.Events.Recorded, 15u);
}

TEST(Telemetry, IntervalTrackerReportsDeltas) {
  uint64_t Counter = 0;
  Telemetry Tracker([&Counter] {
    TelemetrySnapshot S;
    S.Engine.InstancesCreated = Counter;
    S.Events.Recorded = Counter;
    return S;
  });
  Counter = 10;
  EXPECT_EQ(Tracker.capture().Engine.InstancesCreated, 10u);
  EXPECT_EQ(Tracker.interval().Engine.InstancesCreated, 10u);
  Counter = 25;
  TelemetrySnapshot Delta = Tracker.interval();
  EXPECT_EQ(Delta.Engine.InstancesCreated, 15u);
  EXPECT_EQ(Delta.Events.Recorded, 15u);
  Counter = 40;
  Tracker.reset();
  EXPECT_EQ(Tracker.interval().Engine.InstancesCreated, 0u);
}

TEST(Telemetry, JsonEscapeHandlesSpecials) {
  EXPECT_EQ(jsonEscape("plain"), "plain");
  EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(jsonEscape("a\nb"), "a\\nb");
  EXPECT_EQ(jsonEscape("a\rb\tc"), "a\\rb\\tc");
  EXPECT_EQ(jsonEscape("a\bb\fc"), "a\\bb\\fc");
  EXPECT_EQ(jsonEscape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(Telemetry, JsonEscapePassesValidUtf8AndReplacesInvalidBytes) {
  // Well-formed multi-byte sequences pass through verbatim: 2-byte
  // (U+00E9), 3-byte (U+20AC), 4-byte (U+1F600).
  EXPECT_EQ(jsonEscape("caf\xC3\xA9"), "caf\xC3\xA9");
  EXPECT_EQ(jsonEscape("\xE2\x82\xAC"), "\xE2\x82\xAC");
  EXPECT_EQ(jsonEscape("\xF0\x9F\x98\x80"), "\xF0\x9F\x98\x80");
  // Malformed bytes become the � escape instead of corrupting the
  // document: a lone continuation byte, a truncated lead byte, an
  // overlong NUL encoding, and a CESU-8 surrogate half.
  EXPECT_EQ(jsonEscape("a\x80z"), "a\\ufffdz");
  EXPECT_EQ(jsonEscape("a\xC3"), "a\\ufffd");
  EXPECT_EQ(jsonEscape("\xC0\x80"), "\\ufffd\\ufffd");
  EXPECT_EQ(jsonEscape("\xED\xA0\x80"), "\\ufffd\\ufffd\\ufffd");
}

TEST(Telemetry, JsonWithHostileSiteNamesStaysWellFormed) {
  // Satellite regression: a site name full of quotes, backslashes,
  // control characters and broken UTF-8 must still yield a JSON
  // document with balanced quotes and no raw control bytes.
  TelemetrySnapshot S;
  ContextSnapshot C;
  C.Name = std::string("evil\"\\\n\x01\x80name");
  C.Abstraction = "list";
  C.Variant = "Array\"List";
  S.Contexts.push_back(C);
  S.Engine += C.Stats;
  std::string Json = toJson(S);
  // Structural whitespace (pretty-printing) is fine; raw control bytes
  // inside string literals are not.
  size_t Unescaped = 0;
  bool InString = false;
  for (size_t I = 0; I != Json.size(); ++I) {
    if (InString) {
      EXPECT_GE(static_cast<unsigned char>(Json[I]), 0x20u)
          << "raw control byte inside string at offset " << I;
    }
    if (Json[I] == '"' && (I == 0 || Json[I - 1] != '\\')) {
      ++Unescaped;
      InString = !InString;
    }
  }
  EXPECT_EQ(Unescaped % 2, 0u) << "unbalanced quotes";
  EXPECT_NE(Json.find("evil\\\"\\\\\\n\\u0001\\ufffdname"),
            std::string::npos);
}

TelemetrySnapshot sampleSnapshot() {
  TelemetrySnapshot S;
  ContextSnapshot A;
  A.Name = "bench \"quoted\"";
  A.Abstraction = "list";
  A.Variant = "ArrayList";
  A.Stats = makeStats(0);
  A.FootprintBytes = 128;
  ContextSnapshot B;
  B.Name = "site,with,commas";
  B.Abstraction = "map";
  B.Variant = "ChainedHashMap";
  B.Stats = makeStats(50);
  B.FootprintBytes = 256;
  B.ContendedThreads = 3.5;
  S.Contexts = {A, B};
  S.Engine += A.Stats;
  S.Engine += B.Stats;
  S.Events.Recorded = 42;
  S.Events.Dropped = 2;
  S.Recorder.Recorders = 3;
  S.Recorder.OpsRecorded = 1000;
  S.Recorder.OpsDropped = 7;
  S.Recorder.InstancesSampled = 20;
  S.Recorder.InstancesSkipped = 60;
  S.Store.Loads = 2;
  S.Store.LoadFailures = 1;
  S.Store.SitesLoaded = 9;
  S.Store.WarmStarts = 4;
  S.Store.Persists = 5;
  S.Store.PersistFailures = 0;
  S.Tuning.Loads = 1;
  S.Tuning.Source = "tuned.cstune";
  S.Tuning.Parameters = 13;
  S.Tuning.Seed = 6405;
  return S;
}

TEST(Telemetry, JsonCarriesSchemaAndTotals) {
  std::string Json = toJson(sampleSnapshot());
  EXPECT_NE(Json.find("\"schema\": \"cswitch-telemetry-v1\""),
            std::string::npos);
  EXPECT_NE(Json.find("\"contexts\": 2"), std::string::npos);
  // 1 + 51: engine totals are the per-context sums.
  EXPECT_NE(Json.find("\"instances_created\": 52"), std::string::npos);
  EXPECT_NE(Json.find("\"recorded\": 42"), std::string::npos);
  EXPECT_NE(Json.find("bench \\\"quoted\\\""), std::string::npos);
  // Trace-recorder loss accounting rides along in its own object.
  EXPECT_NE(Json.find("\"recorder\": {\"recorders\": 3, "
                      "\"ops_recorded\": 1000, \"ops_dropped\": 7, "
                      "\"instances_sampled\": 20, "
                      "\"instances_skipped\": 60}"),
            std::string::npos);
  // So does the selection store's warm-start accounting.
  EXPECT_NE(Json.find("\"store\": {\"loads\": 2, \"load_failures\": 1, "
                      "\"sites_loaded\": 9, \"warm_starts\": 4, "
                      "\"persists\": 5, \"persist_failures\": 0, "
                      "\"path\": \"\"}"),
            std::string::npos);
  // Model provenance rides along as its own block (explain header).
  EXPECT_NE(Json.find("\"model\": {\"installs\": 0"), std::string::npos);
  // The contention estimate rides on each context row (0 = sequential).
  EXPECT_NE(Json.find("\"contended_threads\": 3.5"), std::string::npos);
  EXPECT_NE(Json.find("\"contended_threads\": 0"), std::string::npos);
}

TEST(Telemetry, JsonCarriesLatencyDistributions) {
  TelemetrySnapshot S = sampleSnapshot();
  S.Latency.Record.Count = 640;
  S.Latency.Record.P99 = 250.5;
  S.Contexts[0].Latency.Evaluate.Count = 3;
  S.Contexts[0].Latency.Evaluate.P50 = 1200.0;
  std::string Json = toJson(S);
  // Engine-wide block: all four instrumented paths.
  EXPECT_NE(Json.find("\"latency\": {\"record\": {\"count\": 640"),
            std::string::npos);
  EXPECT_NE(Json.find("\"p99\": 250.5"), std::string::npos);
  EXPECT_NE(Json.find("\"persist\": {\"count\": 0"), std::string::npos);
  // Per-context block rides on each context row.
  EXPECT_NE(Json.find("\"evaluate\": {\"count\": 3"), std::string::npos);
  EXPECT_NE(Json.find("\"p50\": 1200.0"), std::string::npos);
}

TEST(Telemetry, StoreStatsAccumulateAndSubtractSaturating) {
  StoreStats A;
  A.Loads = 2;
  A.LoadFailures = 1;
  A.SitesLoaded = 12;
  A.WarmStarts = 4;
  A.Persists = 3;
  A.PersistFailures = 1;
  StoreStats B = A;
  B += A;
  EXPECT_EQ(B.Loads, 4u);
  EXPECT_EQ(B.SitesLoaded, 24u);
  EXPECT_EQ(B.PersistFailures, 2u);
  EXPECT_TRUE(B - A == A);
  // Monotonic counters: a backwards interval clamps to zero.
  EXPECT_TRUE(A - B == StoreStats{});
}

TEST(Telemetry, SnapshotDiffCarriesStoreDelta) {
  TelemetrySnapshot Before, Now;
  Before.Store.Loads = 1;
  Before.Store.WarmStarts = 2;
  Now.Store.Loads = 3;
  Now.Store.WarmStarts = 7;
  Now.Store.Persists = 4;
  TelemetrySnapshot Delta = Now - Before;
  EXPECT_EQ(Delta.Store.Loads, 2u);
  EXPECT_EQ(Delta.Store.WarmStarts, 5u);
  EXPECT_EQ(Delta.Store.Persists, 4u);
}

TEST(Telemetry, CsvHasHeaderAndQuotesSpecials) {
  std::string Csv = toCsv(sampleSnapshot());
  std::istringstream Lines(Csv);
  // Loss counters lead as `#` comments so the column schema is
  // unchanged but drops are never invisible in exported data.
  std::string Events, Recorder, Store, Fleet, Tuning, Latency, Header;
  ASSERT_TRUE(std::getline(Lines, Events));
  EXPECT_EQ(Events, "# events_recorded=42 events_dropped=2");
  ASSERT_TRUE(std::getline(Lines, Recorder));
  EXPECT_EQ(Recorder,
            "# recorder_ops_recorded=1000 recorder_ops_dropped=7 "
            "recorder_instances_sampled=20 recorder_instances_skipped=60");
  ASSERT_TRUE(std::getline(Lines, Store));
  EXPECT_EQ(Store, "# store_loads=2 store_load_failures=1 "
                   "store_sites_loaded=9 store_warm_starts=4 "
                   "store_persists=5 store_persist_failures=0");
  ASSERT_TRUE(std::getline(Lines, Fleet));
  EXPECT_EQ(Fleet.rfind("# fleet_pulls=", 0), 0u);
  ASSERT_TRUE(std::getline(Lines, Tuning));
  EXPECT_EQ(Tuning, "# tuning_loads=1 tuning_load_failures=0 "
                    "tuning_parameters=13 tuning_seed=6405 "
                    "tuning_source=tuned.cstune");
  ASSERT_TRUE(std::getline(Lines, Latency));
  EXPECT_EQ(Latency.rfind("# latency_record_count=", 0), 0u);
  ASSERT_TRUE(std::getline(Lines, Header));
  EXPECT_EQ(Header,
            "name,abstraction,variant,instances_created,"
            "instances_monitored,profiles_published,profiles_discarded,"
            "evaluations,switches,footprint_bytes,contended_threads");
  std::string Row1, Row2, Extra;
  ASSERT_TRUE(std::getline(Lines, Row1));
  ASSERT_TRUE(std::getline(Lines, Row2));
  EXPECT_FALSE(std::getline(Lines, Extra));
  // Embedded quotes double, fields with commas/quotes get quoted.
  EXPECT_NE(Row1.find("\"bench \"\"quoted\"\"\""), std::string::npos);
  EXPECT_NE(Row2.find("\"site,with,commas\""), std::string::npos);
  EXPECT_NE(Row2.find(",256,3.5"), std::string::npos);
}

TEST(Telemetry, WriteTextFileRoundTrips) {
  const char *Path = "telemetry_test_tmp.json";
  std::string Content = toJson(sampleSnapshot());
  ASSERT_TRUE(writeTextFile(Path, Content));
  std::ifstream In(Path);
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  EXPECT_EQ(Buffer.str(), Content);
  In.close();
  std::remove(Path);
  EXPECT_FALSE(writeTextFile("no-such-dir/x/y.json", "x"));
}

} // namespace
