//===- StatisticsTest.cpp - Statistics unit tests --------------------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//

#include "support/Statistics.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace cswitch;

namespace {

TEST(Summarize, EmptySampleIsAllZero) {
  SampleStats S = summarize({});
  EXPECT_EQ(S.Count, 0u);
  EXPECT_DOUBLE_EQ(S.Mean, 0.0);
  EXPECT_DOUBLE_EQ(S.Variance, 0.0);
}

TEST(Summarize, SingleObservation) {
  SampleStats S = summarize({42.0});
  EXPECT_EQ(S.Count, 1u);
  EXPECT_DOUBLE_EQ(S.Mean, 42.0);
  EXPECT_DOUBLE_EQ(S.Variance, 0.0);
  EXPECT_DOUBLE_EQ(S.Min, 42.0);
  EXPECT_DOUBLE_EQ(S.Max, 42.0);
  EXPECT_DOUBLE_EQ(S.ci95HalfWidth(), 0.0);
}

TEST(Summarize, KnownMeanAndVariance) {
  // Sample {2, 4, 4, 4, 5, 5, 7, 9}: mean 5, sample variance 32/7.
  SampleStats S = summarize({2, 4, 4, 4, 5, 5, 7, 9});
  EXPECT_EQ(S.Count, 8u);
  EXPECT_DOUBLE_EQ(S.Mean, 5.0);
  EXPECT_NEAR(S.Variance, 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(S.Min, 2.0);
  EXPECT_DOUBLE_EQ(S.Max, 9.0);
  EXPECT_GT(S.ci95HalfWidth(), 0.0);
}

TEST(TCritical, TabulatedEndpoints) {
  EXPECT_NEAR(tCriticalValue5Percent(1), 12.706, 1e-9);
  EXPECT_NEAR(tCriticalValue5Percent(10), 2.228, 1e-9);
  EXPECT_NEAR(tCriticalValue5Percent(1000), 1.96, 1e-9);
}

TEST(TCritical, InterpolatesBetweenRows) {
  double T = tCriticalValue5Percent(11); // between df 10 and 12.
  EXPECT_LT(T, 2.228);
  EXPECT_GT(T, 2.179);
}

TEST(TCritical, MonotoneDecreasing) {
  double Prev = tCriticalValue5Percent(1);
  for (double Df = 2; Df <= 200; Df += 1) {
    double Cur = tCriticalValue5Percent(Df);
    EXPECT_LE(Cur, Prev + 1e-12);
    Prev = Cur;
  }
}

TEST(CompareMeans, ClearDifferenceIsSignificant) {
  std::vector<double> A, B;
  SplitMix64 Rng(3);
  for (int I = 0; I != 30; ++I) {
    A.push_back(100.0 + Rng.nextDouble());
    B.push_back(110.0 + Rng.nextDouble());
  }
  ComparisonResult R = compareMeans(A, B);
  EXPECT_TRUE(R.Significant);
  EXPECT_NEAR(R.MeanDifference, 10.0, 1.0);
  EXPECT_NEAR(R.RelativeChange, 0.1, 0.02);
}

TEST(CompareMeans, NoiseOnlyIsInsignificant) {
  std::vector<double> A, B;
  SplitMix64 Rng(4);
  for (int I = 0; I != 30; ++I) {
    A.push_back(100.0 + 10.0 * Rng.nextDouble());
    B.push_back(100.0 + 10.0 * Rng.nextDouble());
  }
  ComparisonResult R = compareMeans(A, B);
  EXPECT_FALSE(R.Significant);
}

TEST(CompareMeans, TinySamplesNeverSignificant) {
  ComparisonResult R = compareMeans({1.0}, {100.0});
  EXPECT_FALSE(R.Significant);
}

TEST(CompareMeans, ZeroVarianceExactDifference) {
  ComparisonResult R = compareMeans({5, 5, 5}, {6, 6, 6});
  EXPECT_TRUE(R.Significant);
  EXPECT_DOUBLE_EQ(R.MeanDifference, 1.0);
}

TEST(CompareMeans, ZeroVarianceIdenticalSamples) {
  ComparisonResult R = compareMeans({5, 5, 5}, {5, 5, 5});
  EXPECT_FALSE(R.Significant);
  EXPECT_DOUBLE_EQ(R.MeanDifference, 0.0);
}

TEST(CompareMeans, RelativeChangeAgainstBaseline) {
  ComparisonResult R = compareMeans({10, 10, 10, 10}, {8, 8, 8, 8});
  EXPECT_TRUE(R.Significant);
  EXPECT_DOUBLE_EQ(R.RelativeChange, -0.2);
}

} // namespace
