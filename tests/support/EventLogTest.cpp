//===- EventLogTest.cpp - Event log unit tests -----------------------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//

#include "support/EventLog.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>

using namespace cswitch;

namespace {

TEST(EventLog, RecordsInOrder) {
  EventLog Log;
  Log.record(EventKind::ContextCreated, "site-a", "ArrayList");
  Log.record(EventKind::Transition, "site-a", "ArrayList -> AdaptiveList");
  std::vector<Event> Events = Log.snapshot();
  ASSERT_EQ(Events.size(), 2u);
  EXPECT_EQ(Events[0].Kind, EventKind::ContextCreated);
  EXPECT_EQ(Events[1].Kind, EventKind::Transition);
  EXPECT_EQ(Events[1].Detail, "ArrayList -> AdaptiveList");
  EXPECT_LT(Events[0].SequenceNumber, Events[1].SequenceNumber);
}

TEST(EventLog, SnapshotOfKindFilters) {
  EventLog Log;
  Log.record(EventKind::Evaluation, "s", "");
  Log.record(EventKind::Transition, "s", "a -> b");
  Log.record(EventKind::Evaluation, "s", "");
  Log.record(EventKind::Transition, "t", "c -> d");
  std::vector<Event> Transitions =
      Log.snapshotOfKind(EventKind::Transition);
  ASSERT_EQ(Transitions.size(), 2u);
  EXPECT_EQ(Transitions[0].Detail, "a -> b");
  EXPECT_EQ(Transitions[1].Context, "t");
}

TEST(EventLog, ClearEmptiesLog) {
  EventLog Log;
  Log.record(EventKind::Evaluation, "s", "");
  Log.clear();
  EXPECT_TRUE(Log.snapshot().empty());
  EXPECT_EQ(Log.droppedCount(), 0u);
}

TEST(EventLog, BoundedRingDropsOldest) {
  EventLog Log(4);
  for (int I = 0; I != 10; ++I)
    Log.record(EventKind::Evaluation, "s", std::to_string(I));
  std::vector<Event> Events = Log.snapshot();
  ASSERT_EQ(Events.size(), 4u);
  EXPECT_EQ(Log.droppedCount(), 6u);
  EXPECT_EQ(Log.totalRecorded(), 10u);
  // The survivors are the most recent four, in order.
  EXPECT_EQ(Events[0].Detail, "6");
  EXPECT_EQ(Events[3].Detail, "9");
}

TEST(EventLog, KindNamesAreStable) {
  EXPECT_STREQ(eventKindName(EventKind::ContextCreated),
               "context-created");
  EXPECT_STREQ(eventKindName(EventKind::MonitoringRound),
               "monitoring-round");
  EXPECT_STREQ(eventKindName(EventKind::Evaluation), "evaluation");
  EXPECT_STREQ(eventKindName(EventKind::Transition), "transition");
  EXPECT_STREQ(eventKindName(EventKind::AdaptiveMigration),
               "adaptive-migration");
}

TEST(EventLog, GlobalInstanceIsShared) {
  EventLog::global().clear();
  EventLog::global().record(EventKind::Transition, "g", "x -> y");
  EXPECT_EQ(EventLog::global().snapshotOfKind(EventKind::Transition).size(),
            1u);
  EventLog::global().clear();
}

TEST(EventLog, ConcurrentRecordingIsSafe) {
  EventLog Log;
  constexpr int PerThread = 500;
  auto Writer = [&Log](const char *Name) {
    for (int I = 0; I != PerThread; ++I)
      Log.record(EventKind::Evaluation, Name, "");
  };
  std::thread A(Writer, "a"), B(Writer, "b");
  A.join();
  B.join();
  EXPECT_EQ(Log.totalRecorded(), 2u * PerThread);
  EXPECT_EQ(Log.snapshot().size() + Log.droppedCount(), 2u * PerThread);
}

} // namespace
