//===- EventLogTest.cpp - Event log unit tests -----------------------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//

#include "support/EventLog.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

using namespace cswitch;

namespace {

TEST(EventLog, RecordsInOrder) {
  EventLog Log;
  Log.record(EventKind::ContextCreated, "site-a", "ArrayList");
  Log.record(EventKind::Transition, "site-a", "ArrayList -> AdaptiveList");
  std::vector<Event> Events = Log.snapshot();
  ASSERT_EQ(Events.size(), 2u);
  EXPECT_EQ(Events[0].Kind, EventKind::ContextCreated);
  EXPECT_EQ(Events[1].Kind, EventKind::Transition);
  EXPECT_EQ(Events[1].Detail, "ArrayList -> AdaptiveList");
  EXPECT_LT(Events[0].SequenceNumber, Events[1].SequenceNumber);
}

TEST(EventLog, SnapshotOfKindFilters) {
  EventLog Log;
  Log.record(EventKind::Evaluation, "s", "");
  Log.record(EventKind::Transition, "s", "a -> b");
  Log.record(EventKind::Evaluation, "s", "");
  Log.record(EventKind::Transition, "t", "c -> d");
  std::vector<Event> Transitions =
      Log.snapshotOfKind(EventKind::Transition);
  ASSERT_EQ(Transitions.size(), 2u);
  EXPECT_EQ(Transitions[0].Detail, "a -> b");
  EXPECT_EQ(Transitions[1].Context, "t");
}

TEST(EventLog, ClearEmptiesLog) {
  EventLog Log;
  Log.record(EventKind::Evaluation, "s", "");
  Log.clear();
  EXPECT_TRUE(Log.snapshot().empty());
  EXPECT_EQ(Log.droppedCount(), 0u);
}

TEST(EventLog, BoundedRingDropsOldest) {
  // Nodes pinned to 1: this test's drop arithmetic assumes one ring
  // regardless of the machine (or CSWITCH_NUMA_NODES) it runs on.
  EventLog Log(4, 1);
  for (int I = 0; I != 10; ++I)
    Log.record(EventKind::Evaluation, "s", std::to_string(I));
  std::vector<Event> Events = Log.snapshot();
  ASSERT_EQ(Events.size(), 4u);
  EXPECT_EQ(Log.droppedCount(), 6u);
  EXPECT_EQ(Log.totalRecorded(), 10u);
  // The survivors are the most recent four, in order.
  EXPECT_EQ(Events[0].Detail, "6");
  EXPECT_EQ(Events[3].Detail, "9");
}

TEST(EventLog, KindNamesAreStable) {
  EXPECT_STREQ(eventKindName(EventKind::ContextCreated),
               "context-created");
  EXPECT_STREQ(eventKindName(EventKind::MonitoringRound),
               "monitoring-round");
  EXPECT_STREQ(eventKindName(EventKind::Evaluation), "evaluation");
  EXPECT_STREQ(eventKindName(EventKind::Transition), "transition");
  EXPECT_STREQ(eventKindName(EventKind::AdaptiveMigration),
               "adaptive-migration");
  EXPECT_STREQ(eventKindName(EventKind::WarmStart), "warm-start");
  EXPECT_STREQ(eventKindName(EventKind::Store), "store");
}

TEST(EventLog, EveryKindHasADistinctNonEmptyName) {
  // Exhaustive over the enum: EventKind::Store is the last enumerator,
  // so a new kind added without a name (falling into the "unknown"
  // default) fails here — extend both this list and eventKindName.
  const EventKind AllKinds[] = {
      EventKind::ContextCreated,  EventKind::MonitoringRound,
      EventKind::Evaluation,      EventKind::Transition,
      EventKind::AdaptiveMigration, EventKind::WarmStart,
      EventKind::Store};
  constexpr size_t NumKinds =
      static_cast<size_t>(EventKind::Store) + 1;
  static_assert(sizeof(AllKinds) / sizeof(AllKinds[0]) == NumKinds,
                "enumerator list out of date");
  std::set<std::string> Names;
  for (EventKind Kind : AllKinds) {
    const char *Name = eventKindName(Kind);
    ASSERT_NE(Name, nullptr);
    EXPECT_STRNE(Name, "");
    EXPECT_STRNE(Name, "unknown")
        << "enumerator " << static_cast<int>(Kind) << " has no name";
    Names.insert(Name);
  }
  EXPECT_EQ(Names.size(), NumKinds) << "kind names must be distinct";
}

TEST(EventLog, GlobalInstanceIsShared) {
  EventLog::global().clear();
  EventLog::global().record(EventKind::Transition, "g", "x -> y");
  EXPECT_EQ(EventLog::global().snapshotOfKind(EventKind::Transition).size(),
            1u);
  EventLog::global().clear();
}

TEST(EventLog, InternRoundTrips) {
  EventLog Log(8);
  uint32_t A = Log.intern("site-a");
  uint32_t B = Log.intern("site-b");
  EXPECT_NE(A, B);
  EXPECT_EQ(Log.intern("site-a"), A); // stable on re-intern
  EXPECT_EQ(Log.textOf(A), "site-a");
  EXPECT_EQ(Log.textOf(B), "site-b");
  EXPECT_EQ(Log.intern(""), 0u); // id 0 is always the empty string
  EXPECT_EQ(Log.textOf(0), "");
  EXPECT_EQ(Log.textOf(12345), ""); // unknown ids resolve to ""
}

TEST(EventLog, IdRecordResolvesNames) {
  EventLog Log(8);
  uint32_t Ctx = Log.intern("ctx");
  uint32_t Detail = Log.intern("A -> B");
  Log.record(EventKind::Transition, Ctx, Detail);
  std::vector<Event> Events = Log.snapshot();
  ASSERT_EQ(Events.size(), 1u);
  EXPECT_EQ(Events[0].Context, "ctx");
  EXPECT_EQ(Events[0].Detail, "A -> B");
  EXPECT_EQ(Events[0].ContextId, Ctx);
  EXPECT_EQ(Events[0].DetailId, Detail);
}

TEST(EventLog, DrainAdvancesCursor) {
  EventLog Log(16);
  Log.record(EventKind::Evaluation, "s", "1");
  Log.record(EventKind::Evaluation, "s", "2");
  std::vector<Event> First = Log.drain();
  ASSERT_EQ(First.size(), 2u);
  EXPECT_EQ(First[1].Detail, "2");
  EXPECT_TRUE(Log.drain().empty()); // already consumed
  Log.record(EventKind::Evaluation, "s", "3");
  std::vector<Event> Second = Log.drain();
  ASSERT_EQ(Second.size(), 1u);
  EXPECT_EQ(Second[0].Detail, "3");
  // Snapshots are non-destructive: everything is still retained.
  EXPECT_EQ(Log.snapshot().size(), 3u);
}

TEST(EventLog, DrainSkipsOverwrittenEvents) {
  EventLog Log(4, 1); // one ring: single-ring overwrite arithmetic
  for (int I = 0; I != 10; ++I)
    Log.record(EventKind::Evaluation, "s", std::to_string(I));
  // Six of the ten were overwritten before the first drain.
  std::vector<Event> Events = Log.drain();
  ASSERT_EQ(Events.size(), 4u);
  EXPECT_EQ(Events[0].Detail, "6");
  EXPECT_EQ(Events[3].Detail, "9");
}

TEST(EventLog, DisabledRecordIsDropped) {
  EventLog Log(8);
  uint32_t Ctx = Log.intern("ctx");
  Log.setEnabled(false);
  EXPECT_FALSE(Log.enabled());
  Log.record(EventKind::Evaluation, Ctx);
  Log.record(EventKind::Evaluation, "s", "detail");
  EXPECT_EQ(Log.totalRecorded(), 0u);
  EXPECT_TRUE(Log.snapshot().empty());
  Log.setEnabled(true);
  Log.record(EventKind::Evaluation, Ctx);
  EXPECT_EQ(Log.totalRecorded(), 1u);
}

TEST(EventLog, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(EventLog(5).capacity(), 8u);
  EXPECT_EQ(EventLog(64).capacity(), 64u);
  EXPECT_GE(EventLog(0).capacity(), 2u);
}

TEST(EventLog, ClearKeepsInternTableAndInFlightIds) {
  EventLog Log(8);
  uint32_t Ctx = Log.intern("ctx");
  Log.record(EventKind::Evaluation, Ctx);
  Log.clear();
  EXPECT_EQ(Log.totalRecorded(), 0u);
  // Ids survive clear(); recording with them still resolves.
  Log.record(EventKind::Evaluation, Ctx);
  std::vector<Event> Events = Log.snapshot();
  ASSERT_EQ(Events.size(), 1u);
  EXPECT_EQ(Events[0].Context, "ctx");
}

TEST(EventLog, ConcurrentRecordingIsSafe) {
  EventLog Log;
  constexpr int PerThread = 500;
  auto Writer = [&Log](const char *Name) {
    for (int I = 0; I != PerThread; ++I)
      Log.record(EventKind::Evaluation, Name, "");
  };
  std::thread A(Writer, "a"), B(Writer, "b");
  A.join();
  B.join();
  EXPECT_EQ(Log.totalRecorded(), 2u * PerThread);
  EXPECT_EQ(Log.snapshot().size() + Log.droppedCount(), 2u * PerThread);
}

// The TSan stress of the ring protocol: many recorders hammering the
// lock-free record path while one drainer concurrently consumes. No
// ordering is asserted beyond per-event integrity (every drained event
// resolves to a name that was actually recorded, sequence numbers are
// unique) and conservation (drained + still-retained + dropped covers
// every record when the ring is large enough not to wrap).
TEST(EventLog, ConcurrentRecordersAndDrainer) {
  constexpr size_t Recorders = 4;
  constexpr size_t PerThread = 2000;
  EventLog Log(16384); // > Recorders * PerThread: nothing wraps
  uint32_t Ids[Recorders];
  for (size_t T = 0; T != Recorders; ++T) {
    std::string Name = "recorder-";
    Name += std::to_string(T);
    Ids[T] = Log.intern(Name);
  }

  std::atomic<bool> Stop{false};
  std::vector<Event> Drained;
  std::thread Drainer([&Log, &Stop, &Drained] {
    while (!Stop.load(std::memory_order_relaxed)) {
      std::vector<Event> Batch = Log.drain();
      Drained.insert(Drained.end(), Batch.begin(), Batch.end());
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> Writers;
  for (size_t T = 0; T != Recorders; ++T)
    Writers.emplace_back([&Log, &Ids, T] {
      for (size_t I = 0; I != PerThread; ++I)
        Log.record(EventKind::Evaluation, Ids[T]);
    });
  for (std::thread &W : Writers)
    W.join();
  Stop.store(true, std::memory_order_relaxed);
  Drainer.join();
  std::vector<Event> Tail = Log.drain();
  Drained.insert(Drained.end(), Tail.begin(), Tail.end());

  EXPECT_EQ(Log.totalRecorded(), Recorders * PerThread);
  EXPECT_EQ(Log.droppedCount(), 0u);
  EXPECT_EQ(Drained.size(), Recorders * PerThread);
  std::set<uint64_t> Sequences;
  for (const Event &E : Drained) {
    EXPECT_EQ(E.Kind, EventKind::Evaluation);
    EXPECT_TRUE(std::find(std::begin(Ids), std::end(Ids), E.ContextId) !=
                std::end(Ids));
    Sequences.insert(E.SequenceNumber);
  }
  EXPECT_EQ(Sequences.size(), Drained.size()); // tickets never collide
}

// Recorders racing a drainer on a tiny ring: events are lost (by
// design), but the accounting never lies — nothing is double-counted
// and consumers never see torn slots (validated payloads only).
TEST(EventLog, ConcurrentWrapNeverTearsEvents) {
  constexpr size_t Recorders = 4;
  constexpr size_t PerThread = 5000;
  EventLog Log(64); // tiny: constant wrap-around under load
  uint32_t Ids[Recorders];
  for (size_t T = 0; T != Recorders; ++T) {
    std::string Name = "w";
    Name += std::to_string(T);
    Ids[T] = Log.intern(Name);
  }

  std::atomic<bool> Stop{false};
  std::atomic<uint64_t> DrainedCount{0};
  std::thread Drainer([&Log, &Stop, &DrainedCount, &Ids] {
    while (!Stop.load(std::memory_order_relaxed)) {
      for (const Event &E : Log.drain()) {
        // Any drained event must carry one of the recorded ids — a torn
        // or half-published slot would fail this.
        EXPECT_TRUE(std::find(std::begin(Ids), std::end(Ids),
                              E.ContextId) != std::end(Ids));
        DrainedCount.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  std::vector<std::thread> Writers;
  for (size_t T = 0; T != Recorders; ++T)
    Writers.emplace_back([&Log, &Ids, T] {
      for (size_t I = 0; I != PerThread; ++I)
        Log.record(EventKind::Transition, Ids[T]);
    });
  for (std::thread &W : Writers)
    W.join();
  Stop.store(true, std::memory_order_relaxed);
  Drainer.join();

  EXPECT_EQ(Log.totalRecorded(), Recorders * PerThread);
  EXPECT_LE(DrainedCount.load() + Log.drain().size(),
            Recorders * PerThread);
}

//===----------------------------------------------------------------------===//
// Per-node rings (DESIGN.md §10) — multi-ring layout forced via the
// explicit Nodes argument and recordOnNode, so these run identically on
// any machine.
//===----------------------------------------------------------------------===//

TEST(EventLog, MultiRingCapacitySplitsEvenly) {
  EventLog Log(64, 4);
  EXPECT_EQ(Log.nodeCount(), 4u);
  EXPECT_EQ(Log.capacity(), 64u); // 16 slots per ring, power of two
  EXPECT_EQ(Log.nodeDroppedCounts().size(), 4u);
}

TEST(EventLog, MultiRingSequenceNumbersCarryTheNode) {
  EventLog Log(64, 4);
  uint32_t Id = Log.intern("ctx");
  for (unsigned Node = 0; Node != 4; ++Node)
    Log.recordOnNode(Node, EventKind::Evaluation, Id);
  std::vector<Event> Events = Log.snapshot();
  ASSERT_EQ(Events.size(), 4u);
  std::set<uint32_t> Nodes;
  std::set<uint64_t> Sequences;
  for (const Event &E : Events) {
    EXPECT_EQ(E.SequenceNumber >> 48, E.Node);
    EXPECT_EQ(E.SequenceNumber & ((uint64_t(1) << 48) - 1), 0u)
        << "first ticket of each ring is 0";
    Nodes.insert(E.Node);
    Sequences.insert(E.SequenceNumber);
  }
  EXPECT_EQ(Nodes.size(), 4u);     // one event per ring
  EXPECT_EQ(Sequences.size(), 4u); // unique across rings
}

TEST(EventLog, MergePreservesPerRingTicketOrder) {
  EventLog Log(256, 3);
  uint32_t Id = Log.intern("ctx");
  // Interleave records across rings; the merged stream must keep each
  // ring's tickets ascending no matter how timestamps interleave.
  for (int I = 0; I != 60; ++I)
    Log.recordOnNode(static_cast<unsigned>(I) % 3, EventKind::Transition,
                     Id);
  std::vector<Event> Events = Log.snapshot();
  ASSERT_EQ(Events.size(), 60u);
  std::map<uint32_t, uint64_t> LastTicket;
  uint64_t LastTs = 0;
  for (const Event &E : Events) {
    uint64_t Ticket = E.SequenceNumber & ((uint64_t(1) << 48) - 1);
    auto It = LastTicket.find(E.Node);
    if (It != LastTicket.end()) {
      EXPECT_LT(It->second, Ticket)
          << "ring order broken on node " << E.Node;
    }
    LastTicket[E.Node] = Ticket;
    EXPECT_GE(E.TimestampNanos, LastTs) << "merge not timestamp-sorted";
    LastTs = E.TimestampNanos;
  }
  EXPECT_EQ(LastTicket.size(), 3u);
}

TEST(EventLog, PerRingDropAccountingIsExact) {
  // 4 rings x 4 slots. Overfill ring 0 by 10 and ring 2 by 3; the
  // other rings stay within capacity.
  EventLog Log(16, 4);
  uint32_t Id = Log.intern("ctx");
  for (int I = 0; I != 14; ++I)
    Log.recordOnNode(0, EventKind::Evaluation, Id);
  for (int I = 0; I != 7; ++I)
    Log.recordOnNode(2, EventKind::Evaluation, Id);
  for (int I = 0; I != 4; ++I)
    Log.recordOnNode(3, EventKind::Evaluation, Id);
  std::vector<uint64_t> PerNode = Log.nodeDroppedCounts();
  ASSERT_EQ(PerNode.size(), 4u);
  EXPECT_EQ(PerNode[0], 10u);
  EXPECT_EQ(PerNode[1], 0u);
  EXPECT_EQ(PerNode[2], 3u);
  EXPECT_EQ(PerNode[3], 0u);
  EXPECT_EQ(Log.droppedCount(), 13u);
  EXPECT_EQ(Log.totalRecorded(), 25u);
  // The survivors are the newest of each ring.
  EXPECT_EQ(Log.snapshot().size(), 12u);
}

TEST(EventLog, RecordOnNodeFoldsOutOfRangeNodes) {
  EventLog Log(64, 2);
  uint32_t Id = Log.intern("ctx");
  Log.recordOnNode(7, EventKind::Evaluation, Id); // 7 % 2 == ring 1
  std::vector<Event> Events = Log.snapshot();
  ASSERT_EQ(Events.size(), 1u);
  EXPECT_EQ(Events[0].Node, 1u);
}

TEST(EventLog, ClearResetsEveryRing) {
  EventLog Log(16, 4);
  uint32_t Id = Log.intern("ctx");
  for (unsigned Node = 0; Node != 4; ++Node)
    for (int I = 0; I != 9; ++I)
      Log.recordOnNode(Node, EventKind::Evaluation, Id);
  EXPECT_GT(Log.droppedCount(), 0u);
  Log.clear();
  EXPECT_EQ(Log.snapshot().size(), 0u);
  EXPECT_EQ(Log.droppedCount(), 0u);
  for (uint64_t Dropped : Log.nodeDroppedCounts())
    EXPECT_EQ(Dropped, 0u);
  // Rings keep working after the reset.
  Log.recordOnNode(1, EventKind::Transition, Id);
  EXPECT_EQ(Log.snapshot().size(), 1u);
}

// Multi-ring stress: recorders spread over every ring race one
// drainer. Exactly like ConcurrentRecordersAndDrainer but with the
// per-node layout forced, so TSan sweeps the merge path too.
TEST(EventLog, MultiRingConcurrentRecordersAndDrainer) {
  constexpr size_t Recorders = 4;
  constexpr size_t PerThread = 4000;
  EventLog Log(1 << 16, 4);
  uint32_t Ids[Recorders];
  for (size_t T = 0; T != Recorders; ++T)
    Ids[T] = Log.intern("node-worker-" + std::to_string(T));

  std::atomic<bool> Stop{false};
  std::vector<Event> Drained;
  std::thread Drainer([&Log, &Stop, &Drained] {
    while (!Stop.load(std::memory_order_relaxed)) {
      std::vector<Event> Batch = Log.drain();
      Drained.insert(Drained.end(), Batch.begin(), Batch.end());
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> Writers;
  for (size_t T = 0; T != Recorders; ++T)
    Writers.emplace_back([&Log, &Ids, T] {
      for (size_t I = 0; I != PerThread; ++I)
        Log.recordOnNode(static_cast<unsigned>(T), EventKind::Evaluation,
                         Ids[T]);
    });
  for (std::thread &W : Writers)
    W.join();
  Stop.store(true, std::memory_order_relaxed);
  Drainer.join();
  std::vector<Event> Tail = Log.drain();
  Drained.insert(Drained.end(), Tail.begin(), Tail.end());

  EXPECT_EQ(Log.totalRecorded(), Recorders * PerThread);
  EXPECT_EQ(Log.droppedCount(), 0u);
  EXPECT_EQ(Drained.size(), Recorders * PerThread);
  // Per-ring: every ticket arrived exactly once, in order per node.
  std::map<uint32_t, std::vector<uint64_t>> TicketsByNode;
  for (const Event &E : Drained)
    TicketsByNode[E.Node].push_back(E.SequenceNumber &
                                    ((uint64_t(1) << 48) - 1));
  ASSERT_EQ(TicketsByNode.size(), Recorders);
  for (auto &[Node, Tickets] : TicketsByNode) {
    EXPECT_EQ(Tickets.size(), PerThread) << "node " << Node;
    // Each ring had a single writer, so drained ticket order must be
    // exactly 0..PerThread-1.
    for (size_t I = 0; I != Tickets.size(); ++I)
      ASSERT_EQ(Tickets[I], I) << "node " << Node;
  }
}

} // namespace
