//===- RandomTest.cpp - PRNG unit tests ------------------------------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//

#include "support/Random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

using namespace cswitch;

namespace {

TEST(SplitMix64, DeterministicForSameSeed) {
  SplitMix64 A(123), B(123);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 A(1), B(2);
  int Equal = 0;
  for (int I = 0; I != 100; ++I)
    Equal += A.next() == B.next();
  EXPECT_LT(Equal, 3);
}

TEST(SplitMix64, KnownReferenceValue) {
  // SplitMix64 with seed 0 produces this well-known first output.
  SplitMix64 Rng(0);
  EXPECT_EQ(Rng.next(), 0xe220a8397b1dcdafULL);
}

TEST(SplitMix64, NextBelowStaysInBounds) {
  SplitMix64 Rng(9);
  for (uint64_t Bound : {1ULL, 2ULL, 7ULL, 1000ULL}) {
    for (int I = 0; I != 200; ++I)
      EXPECT_LT(Rng.nextBelow(Bound), Bound);
  }
}

TEST(SplitMix64, NextBelowOneIsAlwaysZero) {
  SplitMix64 Rng(10);
  for (int I = 0; I != 50; ++I)
    EXPECT_EQ(Rng.nextBelow(1), 0u);
}

TEST(SplitMix64, NextInRangeInclusiveBounds) {
  SplitMix64 Rng(11);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I != 2000; ++I) {
    int64_t V = Rng.nextInRange(-3, 3);
    EXPECT_GE(V, -3);
    EXPECT_LE(V, 3);
    SawLo |= V == -3;
    SawHi |= V == 3;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(SplitMix64, NextDoubleInUnitInterval) {
  SplitMix64 Rng(12);
  double Sum = 0;
  for (int I = 0; I != 5000; ++I) {
    double D = Rng.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
    Sum += D;
  }
  EXPECT_NEAR(Sum / 5000.0, 0.5, 0.03);
}

TEST(SplitMix64, NextBoolExtremes) {
  SplitMix64 Rng(13);
  for (int I = 0; I != 100; ++I) {
    EXPECT_FALSE(Rng.nextBool(0.0));
    EXPECT_TRUE(Rng.nextBool(1.0));
  }
}

TEST(DistinctIntegers, ProducesDistinctInBounds) {
  SplitMix64 Rng(14);
  std::vector<int64_t> V = distinctIntegers(Rng, 500, 1 << 20);
  EXPECT_EQ(V.size(), 500u);
  std::unordered_set<int64_t> Seen(V.begin(), V.end());
  EXPECT_EQ(Seen.size(), 500u);
  for (int64_t X : V) {
    EXPECT_GE(X, 0);
    EXPECT_LT(X, 1 << 20);
  }
}

TEST(DistinctIntegers, DenseDrawUsesWholeUniverse) {
  SplitMix64 Rng(15);
  // Requesting 90% of the universe exercises the shuffled-prefix path.
  std::vector<int64_t> V = distinctIntegers(Rng, 90, 100);
  EXPECT_EQ(V.size(), 90u);
  std::unordered_set<int64_t> Seen(V.begin(), V.end());
  EXPECT_EQ(Seen.size(), 90u);
  for (int64_t X : V)
    EXPECT_LT(X, 100);
}

TEST(DistinctIntegers, ExactUniverseDrawIsPermutation) {
  SplitMix64 Rng(16);
  std::vector<int64_t> V = distinctIntegers(Rng, 64, 64);
  std::sort(V.begin(), V.end());
  for (int64_t I = 0; I != 64; ++I)
    EXPECT_EQ(V[static_cast<size_t>(I)], I);
}

TEST(Shuffled, IsPermutationAndUsuallyMoves) {
  SplitMix64 Rng(17);
  std::vector<int64_t> In;
  for (int64_t I = 0; I != 100; ++I)
    In.push_back(I);
  std::vector<int64_t> Out = shuffled(Rng, In);
  EXPECT_TRUE(std::is_permutation(Out.begin(), Out.end(), In.begin()));
  EXPECT_NE(Out, In);
}

TEST(Shuffled, EmptyAndSingleton) {
  SplitMix64 Rng(18);
  EXPECT_TRUE(shuffled(Rng, {}).empty());
  EXPECT_EQ(shuffled(Rng, {7}), std::vector<int64_t>({7}));
}

} // namespace
