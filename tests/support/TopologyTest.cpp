//===- TopologyTest.cpp - NUMA detection & striping primitives -----------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
//
// Topology::detect is a pure function of a sysfs-shaped directory, so
// these tests build fake /sys/devices/system/node roots in a temp dir
// and exercise every parsing and fallback path without caring what
// machine they run on. The striping primitives (StripedCounters,
// currentStripe) are checked for exact merge totals under concurrency.
//
//===----------------------------------------------------------------------===//

#include "support/Topology.h"

#include "gtest/gtest.h"

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

using namespace cswitch;

namespace {

/// A scratch directory shaped like /sys/devices/system/node, removed on
/// destruction.
class FakeSysfs {
public:
  FakeSysfs() {
    Root = std::filesystem::temp_directory_path() /
           ("cswitch-topo-test-" +
            std::to_string(
                reinterpret_cast<uintptr_t>(static_cast<void *>(this))));
    std::filesystem::create_directories(Root);
  }
  ~FakeSysfs() {
    std::error_code Ec;
    std::filesystem::remove_all(Root, Ec);
  }

  /// Creates node<Id>/cpulist containing \p CpuList.
  void addNode(unsigned Id, const std::string &CpuList) {
    std::filesystem::path Dir = Root / ("node" + std::to_string(Id));
    std::filesystem::create_directories(Dir);
    std::ofstream Out(Dir / "cpulist");
    Out << CpuList << "\n";
  }

  /// Creates node<Id> with no cpulist file (a memory-only node).
  void addMemoryOnlyNode(unsigned Id) {
    std::filesystem::create_directories(Root /
                                        ("node" + std::to_string(Id)));
  }

  std::string path() const { return Root.string(); }

private:
  std::filesystem::path Root;
};

TEST(Topology, MissingDirectoryFallsBackToSingleNode) {
  Topology T = Topology::detect("/nonexistent/cswitch-no-such-dir");
  EXPECT_EQ(T.nodeCount(), 1u);
  EXPECT_GE(T.cpuCount(), 1u);
  EXPECT_FALSE(T.synthetic());
  EXPECT_EQ(T.currentNode(), 0u);
}

TEST(Topology, DetectsTwoNodesFromRangeCpuLists) {
  FakeSysfs Sysfs;
  Sysfs.addNode(0, "0-3");
  Sysfs.addNode(1, "4-7");
  Topology T = Topology::detect(Sysfs.path());
  EXPECT_EQ(T.nodeCount(), 2u);
  EXPECT_EQ(T.cpuCount(), 8u);
  EXPECT_FALSE(T.synthetic());
  for (unsigned Cpu = 0; Cpu != 4; ++Cpu)
    EXPECT_EQ(T.nodeOfCpu(Cpu), 0u) << "cpu " << Cpu;
  for (unsigned Cpu = 4; Cpu != 8; ++Cpu)
    EXPECT_EQ(T.nodeOfCpu(Cpu), 1u) << "cpu " << Cpu;
  EXPECT_EQ(T.cpusOfNode(0), (std::vector<unsigned>{0, 1, 2, 3}));
  EXPECT_EQ(T.cpusOfNode(1), (std::vector<unsigned>{4, 5, 6, 7}));
  EXPECT_TRUE(T.cpusOfNode(2).empty());
}

TEST(Topology, ParsesMixedListsAndSingletons) {
  FakeSysfs Sysfs;
  // Interleaved SMT-sibling style lists with singletons and ranges.
  Sysfs.addNode(0, "0-1,4,6-7");
  Sysfs.addNode(1, "2-3,5");
  Topology T = Topology::detect(Sysfs.path());
  EXPECT_EQ(T.nodeCount(), 2u);
  EXPECT_EQ(T.cpuCount(), 8u);
  EXPECT_EQ(T.nodeOfCpu(0), 0u);
  EXPECT_EQ(T.nodeOfCpu(2), 1u);
  EXPECT_EQ(T.nodeOfCpu(4), 0u);
  EXPECT_EQ(T.nodeOfCpu(5), 1u);
  EXPECT_EQ(T.nodeOfCpu(6), 0u);
  EXPECT_EQ(T.cpusOfNode(0), (std::vector<unsigned>{0, 1, 4, 6, 7}));
  EXPECT_EQ(T.cpusOfNode(1), (std::vector<unsigned>{2, 3, 5}));
}

TEST(Topology, SparseNodeIdsAreRenumberedDensely) {
  FakeSysfs Sysfs;
  // Real machines expose e.g. node0/node2 with node1 unpopulated.
  Sysfs.addNode(0, "0-1");
  Sysfs.addNode(2, "2-3");
  Sysfs.addNode(8, "4-5");
  Topology T = Topology::detect(Sysfs.path());
  EXPECT_EQ(T.nodeCount(), 3u);
  EXPECT_EQ(T.nodeOfCpu(0), 0u);
  EXPECT_EQ(T.nodeOfCpu(2), 1u); // node2 -> dense index 1
  EXPECT_EQ(T.nodeOfCpu(4), 2u); // node8 -> dense index 2
}

TEST(Topology, MemoryOnlyNodesAreSkipped) {
  FakeSysfs Sysfs;
  Sysfs.addNode(0, "0-3");
  Sysfs.addMemoryOnlyNode(1); // CXL-style memory node: no cpulist
  Topology T = Topology::detect(Sysfs.path());
  EXPECT_EQ(T.nodeCount(), 1u);
  EXPECT_EQ(T.cpuCount(), 4u);
}

TEST(Topology, MalformedCpuListFallsBackToSingleNode) {
  FakeSysfs Sysfs;
  Sysfs.addNode(0, "banana");
  Topology T = Topology::detect(Sysfs.path());
  EXPECT_EQ(T.nodeCount(), 1u);
}

TEST(Topology, OverrideWinsOverDetection) {
  FakeSysfs Sysfs;
  Sysfs.addNode(0, "0-7");
  Topology T = Topology::detect(Sysfs.path(), 4);
  EXPECT_EQ(T.nodeCount(), 4u);
  EXPECT_TRUE(T.synthetic());
  // Synthetic topologies spread cpus (and threads) over every node.
  EXPECT_EQ(T.nodeOfCpu(0), 0u);
  EXPECT_EQ(T.nodeOfCpu(5), 1u);
  EXPECT_TRUE(T.cpusOfNode(0).empty());
}

TEST(Topology, OverrideIsCappedAt64) {
  Topology T = Topology::detect("/nonexistent", 1000);
  EXPECT_LE(T.nodeCount(), 64u);
  EXPECT_TRUE(T.synthetic());
}

TEST(Topology, SyntheticCurrentNodeIsStablePerThreadAndInRange) {
  Topology T = Topology::detect("/nonexistent", 4);
  // Round-robin assignment: each thread sees one stable node, and a
  // batch of threads collectively covers more than one.
  std::atomic<uint32_t> SeenMask{0};
  std::atomic<bool> Mismatch{false};
  std::vector<std::thread> Threads;
  for (int I = 0; I != 8; ++I) {
    Threads.emplace_back([&T, &SeenMask, &Mismatch] {
      unsigned First = T.currentNode();
      for (int K = 0; K != 100; ++K)
        if (T.currentNode() != First)
          Mismatch.store(true);
      if (First >= T.nodeCount())
        Mismatch.store(true);
      SeenMask.fetch_or(1u << First);
    });
  }
  for (std::thread &Th : Threads)
    Th.join();
  EXPECT_FALSE(Mismatch.load());
  // 8 round-robin threads over 4 nodes touch every node.
  EXPECT_EQ(__builtin_popcount(SeenMask.load()), 4);
}

TEST(Topology, SystemTopologyIsSane) {
  const Topology &T = Topology::system();
  EXPECT_GE(T.nodeCount(), 1u);
  EXPECT_GE(T.cpuCount(), 1u);
  EXPECT_LT(T.currentNode(), T.nodeCount());
}

TEST(Topology, CurrentStripeFoldsToStructureWidth) {
  EXPECT_EQ(currentStripe(1), 0u);
  for (unsigned Width : {2u, 3u, 8u})
    EXPECT_LT(currentStripe(Width), Width);
}

TEST(StripedCounters, SingleStripeBehavesLikePlainCounters) {
  StripedCounters<2> C(1);
  EXPECT_EQ(C.stripes(), 1u);
  C.add(0);
  C.add(0, 41);
  C.add(1, 7);
  EXPECT_EQ(C.sum(0), 42u);
  EXPECT_EQ(C.sum(1), 7u);
}

TEST(StripedCounters, ExplicitStripesMergeExactly) {
  StripedCounters<2> C(4);
  EXPECT_EQ(C.stripes(), 4u);
  for (unsigned S = 0; S != 4; ++S) {
    C.addOnStripe(S, 0, S + 1); // 1+2+3+4 = 10
    C.addOnStripe(S, 1, 100);
  }
  EXPECT_EQ(C.sum(0), 10u);
  EXPECT_EQ(C.sum(1), 400u);
}

TEST(StripedCounters, ConcurrentAddsAreNeverLost) {
  constexpr int Threads = 8;
  constexpr uint64_t PerThread = 20000;
  StripedCounters<2> C(4);
  std::vector<std::thread> Workers;
  for (int T = 0; T != Threads; ++T) {
    Workers.emplace_back([&C, T] {
      for (uint64_t I = 0; I != PerThread; ++I) {
        C.add(0);
        // Mix in explicit-stripe adds so several stripes see traffic
        // even on a single-node machine.
        C.addOnStripe(static_cast<unsigned>(T), 1, 2);
      }
    });
  }
  for (std::thread &W : Workers)
    W.join();
  EXPECT_EQ(C.sum(0), Threads * PerThread);
  EXPECT_EQ(C.sum(1), Threads * PerThread * 2);
}

TEST(StripedCounters, StripesAreCacheLineSized) {
  StripedCounters<2> C(3);
  EXPECT_EQ(C.memoryBytes(), 3 * CacheLineBytes);
}

} // namespace
