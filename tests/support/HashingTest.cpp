//===- HashingTest.cpp - Hashing utilities unit tests ----------------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//

#include "support/Hashing.h"

#include <gtest/gtest.h>

#include <unordered_set>

using namespace cswitch;

namespace {

TEST(Mix64, SpreadsSequentialInputs) {
  // Sequential keys must not produce sequential hashes (the property the
  // open-addressing tables rely on).
  std::unordered_set<uint64_t> LowBits;
  for (uint64_t I = 0; I != 1024; ++I)
    LowBits.insert(mix64(I) & 1023);
  // With good mixing we expect most buckets hit (no clustering).
  EXPECT_GT(LowBits.size(), 600u);
}

TEST(Mix64, Deterministic) {
  EXPECT_EQ(mix64(12345), mix64(12345));
  EXPECT_NE(mix64(12345), mix64(12346));
}

TEST(Fnv1a, EmptyInputGivesOffsetBasis) {
  EXPECT_EQ(fnv1a(nullptr, 0), 0xcbf29ce484222325ULL);
}

TEST(Fnv1a, KnownVector) {
  // FNV-1a 64-bit of "a" is a published test vector.
  EXPECT_EQ(fnv1a("a", 1), 0xaf63dc4c8601ec8cULL);
}

TEST(Fnv1a, SensitiveToEveryByte) {
  EXPECT_NE(fnv1a("abc", 3), fnv1a("abd", 3));
  EXPECT_NE(fnv1a("abc", 3), fnv1a("ab", 2));
}

TEST(DefaultHash, IntegralTypesAreMixed) {
  DefaultHash<int64_t> H;
  EXPECT_EQ(H(7), mix64(7));
  DefaultHash<uint32_t> H32;
  EXPECT_EQ(H32(7u), mix64(7));
}

TEST(DefaultHash, StringUsesFnv) {
  DefaultHash<std::string> H;
  EXPECT_EQ(H(std::string("a")), fnv1a("a", 1));
}

TEST(DefaultHash, PointerHashIsStable) {
  int X = 0;
  DefaultHash<int *> H;
  EXPECT_EQ(H(&X), H(&X));
}

TEST(HashCombine, OrderSensitive) {
  EXPECT_NE(hashCombine(hashCombine(0, 1), 2),
            hashCombine(hashCombine(0, 2), 1));
}

TEST(NextPowerOfTwo, Cases) {
  EXPECT_EQ(nextPowerOfTwo(0), 1u);
  EXPECT_EQ(nextPowerOfTwo(1), 1u);
  EXPECT_EQ(nextPowerOfTwo(2), 2u);
  EXPECT_EQ(nextPowerOfTwo(3), 4u);
  EXPECT_EQ(nextPowerOfTwo(4), 4u);
  EXPECT_EQ(nextPowerOfTwo(5), 8u);
  EXPECT_EQ(nextPowerOfTwo(1000), 1024u);
  EXPECT_EQ(nextPowerOfTwo(1024), 1024u);
  EXPECT_EQ(nextPowerOfTwo(1025), 2048u);
}

} // namespace
