//===- BenchmarkRunnerTest.cpp - Steady-state runner unit tests ------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//

#include "support/BenchmarkRunner.h"

#include <gtest/gtest.h>

using namespace cswitch;

namespace {

TEST(MeasureSteadyState, RunsWarmupPlusMeasured) {
  MeasurementPlan Plan;
  Plan.WarmupIterations = 3;
  Plan.MeasuredIterations = 5;
  int Executions = 0;
  MeasurementResult R =
      measureSteadyState(Plan, [&Executions] { ++Executions; });
  EXPECT_EQ(R.Samples.size(), 5u);
  EXPECT_EQ(Executions, 8);
}

TEST(MeasureSteadyState, RecordsAllocations) {
  MeasurementPlan Plan;
  Plan.WarmupIterations = 0;
  Plan.MeasuredIterations = 4;
  MeasurementResult R = measureSteadyState(Plan, [] {
    MemoryTracker::recordAlloc(100);
    MemoryTracker::recordFree(100);
  });
  for (const IterationSample &S : R.Samples)
    EXPECT_DOUBLE_EQ(S.AllocatedBytes, 100.0);
  EXPECT_DOUBLE_EQ(R.allocStats().Mean, 100.0);
}

TEST(MeasureSteadyState, MinIterationNanosRepeatsAndNormalizes) {
  MeasurementPlan Plan;
  Plan.WarmupIterations = 0;
  Plan.MeasuredIterations = 2;
  Plan.MinIterationNanos = 1000000; // 1 ms.
  int Executions = 0;
  MeasurementResult R = measureSteadyState(Plan, [&Executions] {
    ++Executions;
    MemoryTracker::recordAlloc(8);
    MemoryTracker::recordFree(8);
  });
  // A trivial scenario must execute many times to fill 1 ms.
  EXPECT_GT(Executions, 2 * 10);
  // Per-execution allocation stays normalized to a single execution.
  EXPECT_DOUBLE_EQ(R.allocStats().Mean, 8.0);
}

TEST(MeasureSteadyState, TimeSeriesHasPositiveValues) {
  MeasurementPlan Plan;
  Plan.WarmupIterations = 0;
  Plan.MeasuredIterations = 3;
  MeasurementResult R = measureSteadyState(Plan, [] {
    volatile int Spin = 0;
    for (int I = 0; I != 1000; ++I)
      Spin = Spin + I;
  });
  std::vector<double> Nanos = R.nanosSeries();
  ASSERT_EQ(Nanos.size(), 3u);
  for (double N : Nanos)
    EXPECT_GT(N, 0.0);
  EXPECT_GT(R.timeStats().Mean, 0.0);
  EXPECT_EQ(R.timeStats().Count, 3u);
}

} // namespace
