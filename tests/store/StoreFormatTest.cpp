//===- StoreFormatTest.cpp - cswitch-store-v1 format tests ----------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
//
// Round-trip and rejection tests of the binary selection-store format,
// mirroring the cswitch-optrace-v1 suite: encode -> decode -> encode
// must reproduce the exact bytes (canonical encoding), every strict
// prefix of a valid document must fail to parse (truncation fuzzing),
// every single-byte corruption must be rejected (the per-record CRC32
// catches payload damage), and hand-crafted bad records (out-of-range
// kind/decision, disorder, duplicates) must leave the output empty.
//
//===----------------------------------------------------------------------===//

#include "store/StoreFormat.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

using namespace cswitch;

namespace {

/// Test-local varint writer for hand-crafting malformed documents.
void putVarint(std::string &Out, uint64_t Value) {
  while (Value >= 0x80) {
    Out += static_cast<char>((Value & 0x7f) | 0x80);
    Value >>= 7;
  }
  Out += static_cast<char>(Value);
}

const char MagicBytes[] = "cswitch-store-v1"; // 16 bytes, no terminator.

/// A representative store: several sites across abstractions, two rules
/// on the same site name (Rtime and Ralloc decisions must not collide),
/// an empty rule name, and large counters that exercise multi-byte
/// varints.
std::vector<StoreSite> sampleSites() {
  std::vector<StoreSite> Sites;
  StoreSite A;
  A.Name = "App.cpp:42 query cache";
  A.Rule = "Rtime";
  A.Kind = AbstractionKind::Map;
  A.Decision = 2;
  A.Runs = 3;
  A.Instances = 1234;
  A.MaxSize = 100000;
  A.Counts = {1, 200, 30000, 4000000, 0, 700};
  Sites.push_back(A);

  StoreSite B = A; // Same name, different rule: a distinct site.
  B.Rule = "Ralloc";
  B.Decision = 0;
  B.Runs = 1;
  Sites.push_back(B);

  StoreSite C;
  C.Name = "idx";
  C.Rule = "";
  C.Kind = AbstractionKind::List;
  C.Decision = 1;
  C.Runs = 40;
  C.Instances = 7;
  C.MaxSize = 3;
  C.Counts = {0, 0, 0, 0, 0, 1};
  Sites.push_back(C);

  StoreSite D;
  D.Name = "members";
  D.Rule = "Rtime";
  D.Kind = AbstractionKind::Set;
  D.Decision = 0;
  D.Runs = 1;
  D.Instances = 0;
  D.MaxSize = 0;
  Sites.push_back(D);
  return Sites;
}

/// Hand-assembles a document from raw site payloads (each gets a length
/// prefix and a correct CRC unless \p BreakCrc).
std::string makeDocument(const std::vector<std::string> &Payloads,
                         bool BreakCrc = false) {
  std::string Out(MagicBytes, 16);
  putVarint(Out, 1); // version
  putVarint(Out, Payloads.size());
  for (const std::string &P : Payloads) {
    putVarint(Out, P.size());
    Out += P;
    uint32_t Crc = storeCrc32(P) ^ (BreakCrc ? 0xdeadbeef : 0);
    for (int I = 0; I != 4; ++I)
      Out += static_cast<char>((Crc >> (8 * I)) & 0xff);
  }
  return Out;
}

/// Raw payload of a single site record.
std::string makePayload(const StoreSite &S) {
  std::string P;
  putVarint(P, S.Name.size());
  P += S.Name;
  putVarint(P, S.Rule.size());
  P += S.Rule;
  P += static_cast<char>(S.Kind);
  putVarint(P, S.Decision);
  putVarint(P, S.Runs);
  putVarint(P, S.Instances);
  putVarint(P, S.MaxSize);
  for (uint64_t C : S.Counts)
    putVarint(P, C);
  return P;
}

TEST(StoreFormat, Crc32MatchesKnownVectors) {
  EXPECT_EQ(storeCrc32(""), 0u);
  EXPECT_EQ(storeCrc32("123456789"), 0xCBF43926u); // The IEEE check value.
}

TEST(StoreFormat, RoundTripPreservesEveryField) {
  std::vector<StoreSite> Original = sampleSites();
  std::string Bytes = encodeStore(Original);
  std::vector<StoreSite> Decoded;
  std::string Error;
  ASSERT_TRUE(decodeStore(Bytes, Decoded, &Error)) << Error;
  // encodeStore sorts, so compare as sets via canonical order.
  std::vector<StoreSite> Sorted = Original;
  std::sort(Sorted.begin(), Sorted.end(), StoreSite::orderedBefore);
  EXPECT_EQ(Decoded, Sorted);
}

TEST(StoreFormat, EncodingIsCanonical) {
  // write -> read -> write must produce identical bytes, and the input
  // order must not matter.
  std::string First = encodeStore(sampleSites());
  std::vector<StoreSite> Decoded;
  ASSERT_TRUE(decodeStore(First, Decoded));
  EXPECT_EQ(encodeStore(Decoded), First);

  std::vector<StoreSite> Reversed = sampleSites();
  std::reverse(Reversed.begin(), Reversed.end());
  EXPECT_EQ(encodeStore(Reversed), First);
}

TEST(StoreFormat, EmptyStoreRoundTrips) {
  std::string Bytes = encodeStore({});
  std::vector<StoreSite> Decoded;
  ASSERT_TRUE(decodeStore(Bytes, Decoded));
  EXPECT_TRUE(Decoded.empty());
}

TEST(StoreFormat, EveryStrictPrefixIsRejected) {
  // Truncation fuzz: the site count is declared up front and every
  // record is length-prefixed, so no strict prefix parses.
  std::string Bytes = encodeStore(sampleSites());
  for (size_t Len = 0; Len != Bytes.size(); ++Len) {
    std::vector<StoreSite> Out;
    Out.push_back(StoreSite{}); // Must be wiped on failure.
    std::string Error;
    EXPECT_FALSE(
        decodeStore(std::string_view(Bytes).substr(0, Len), Out, &Error))
        << "prefix of length " << Len << " unexpectedly parsed";
    EXPECT_TRUE(Out.empty()) << "output not cleared at length " << Len;
    EXPECT_FALSE(Error.empty());
  }
}

TEST(StoreFormat, EverySingleByteCorruptionIsRejected) {
  // Flip every byte of a valid document in turn. Magic/version/count
  // corruption trips the header checks; any payload or checksum byte
  // trips the per-record CRC32 (which detects all single-byte errors).
  std::string Bytes = encodeStore(sampleSites());
  for (size_t I = 0; I != Bytes.size(); ++I) {
    std::string Mutant = Bytes;
    Mutant[I] = static_cast<char>(~Mutant[I]);
    std::vector<StoreSite> Out;
    Out.push_back(StoreSite{});
    EXPECT_FALSE(decodeStore(Mutant, Out))
        << "corruption at offset " << I << " unexpectedly parsed";
    EXPECT_TRUE(Out.empty()) << "output not cleared at offset " << I;
  }
}

TEST(StoreFormat, RejectsBadMagic) {
  for (const char *Bad :
       {"", "x", "cswitch-optrace-\x01", "CSWITCH-STORE-V1\x01"}) {
    std::vector<StoreSite> Out;
    std::string Error;
    EXPECT_FALSE(decodeStore(Bad, Out, &Error));
    EXPECT_NE(Error.find("magic"), std::string::npos) << Error;
  }
}

TEST(StoreFormat, RejectsFutureVersion) {
  std::string Bytes = encodeStore(sampleSites());
  ASSERT_GT(Bytes.size(), 16u);
  Bytes[16] = 2; // Version byte follows the 16-byte magic.
  std::vector<StoreSite> Out;
  std::string Error;
  EXPECT_FALSE(decodeStore(Bytes, Out, &Error));
  EXPECT_NE(Error.find("version 2"), std::string::npos) << Error;
  EXPECT_NE(Error.find("expected 1"), std::string::npos) << Error;
}

TEST(StoreFormat, RejectsTrailingBytes) {
  std::string Bytes = encodeStore(sampleSites());
  Bytes += '\0';
  std::vector<StoreSite> Out;
  std::string Error;
  EXPECT_FALSE(decodeStore(Bytes, Out, &Error));
  EXPECT_NE(Error.find("trailing"), std::string::npos) << Error;
}

TEST(StoreFormat, RejectsFlippedCrc) {
  StoreSite S = sampleSites()[0];
  std::string Doc = makeDocument({makePayload(S)}, /*BreakCrc=*/true);
  std::vector<StoreSite> Out;
  std::string Error;
  EXPECT_FALSE(decodeStore(Doc, Out, &Error));
  EXPECT_NE(Error.find("crc"), std::string::npos) << Error;
}

TEST(StoreFormat, RejectsBadAbstractionKind) {
  StoreSite S = sampleSites()[0];
  std::string P = makePayload(S);
  // The kind byte sits right after the two length-prefixed strings.
  size_t KindOffset = 1 + S.Name.size() + 1 + S.Rule.size();
  P[KindOffset] = 9;
  std::vector<StoreSite> Out;
  std::string Error;
  EXPECT_FALSE(decodeStore(makeDocument({P}), Out, &Error));
  EXPECT_NE(Error.find("abstraction kind"), std::string::npos) << Error;
}

TEST(StoreFormat, RejectsOutOfRangeDecision) {
  StoreSite S;
  S.Name = "site";
  S.Rule = "Rtime";
  S.Kind = AbstractionKind::List;
  S.Decision = 200; // No abstraction has 200 variants.
  std::vector<StoreSite> Out;
  std::string Error;
  EXPECT_FALSE(decodeStore(makeDocument({makePayload(S)}), Out, &Error));
  EXPECT_NE(Error.find("decision"), std::string::npos) << Error;
}

TEST(StoreFormat, RejectsOversizedPayload) {
  // Extra bytes inside a record (beyond the fields) must be rejected
  // even when the CRC is consistent — forward compatibility is a new
  // version, not smuggled fields.
  StoreSite S = sampleSites()[2];
  std::string P = makePayload(S) + "extra";
  std::vector<StoreSite> Out;
  std::string Error;
  EXPECT_FALSE(decodeStore(makeDocument({P}), Out, &Error));
  EXPECT_NE(Error.find("oversized"), std::string::npos) << Error;
}

TEST(StoreFormat, RejectsDisorderedSites) {
  std::vector<StoreSite> Sites = sampleSites();
  std::sort(Sites.begin(), Sites.end(), StoreSite::orderedBefore);
  std::string Doc = makeDocument(
      {makePayload(Sites[1]), makePayload(Sites[0])}); // Swapped.
  std::vector<StoreSite> Out;
  std::string Error;
  EXPECT_FALSE(decodeStore(Doc, Out, &Error));
  EXPECT_NE(Error.find("order"), std::string::npos) << Error;
}

TEST(StoreFormat, RejectsDuplicateSites) {
  StoreSite S = sampleSites()[0];
  std::string Doc = makeDocument({makePayload(S), makePayload(S)});
  std::vector<StoreSite> Out;
  std::string Error;
  EXPECT_FALSE(decodeStore(Doc, Out, &Error));
  EXPECT_NE(Error.find("order"), std::string::npos) << Error;
}

TEST(StoreFormat, RejectsGarbageBodies) {
  // Deterministic pseudo-random garbage after a valid header must never
  // parse (and must never crash the total decoder).
  uint64_t State = 0x9e3779b97f4a7c15ull;
  auto Next = [&State] {
    State += 0x9e3779b97f4a7c15ull;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
    return Z ^ (Z >> 31);
  };
  for (int Round = 0; Round != 64; ++Round) {
    std::string Doc(MagicBytes, 16);
    size_t Len = Next() % 64;
    for (size_t I = 0; I != Len; ++I)
      Doc += static_cast<char>(Next() & 0xff);
    std::vector<StoreSite> Out;
    // Garbage after the magic can at best spell the empty document
    // (version 1, zero sites); a non-empty parse would mean the CRC
    // gate leaks.
    (void)decodeStore(Doc, Out);
    EXPECT_TRUE(Out.empty()) << "garbage round " << Round << " parsed";
  }
}

TEST(StoreFormat, FileRoundTripIsByteIdentical) {
  std::string Path = ::testing::TempDir() + "/cswitch_store_format_test.bin";
  std::vector<StoreSite> Sites = sampleSites();
  ASSERT_TRUE(writeStoreToFile(Path, Sites));

  std::vector<StoreSite> Loaded;
  std::string Error;
  ASSERT_TRUE(readStoreFromFile(Path, Loaded, &Error)) << Error;
  std::sort(Sites.begin(), Sites.end(), StoreSite::orderedBefore);
  EXPECT_EQ(Loaded, Sites);

  std::ifstream IS(Path, std::ios::binary);
  std::ostringstream Raw;
  Raw << IS.rdbuf();
  EXPECT_EQ(Raw.str(), encodeStore(Sites));
  std::remove(Path.c_str());
}

TEST(StoreFormat, ReadStoreConsumesStream) {
  std::string Bytes = encodeStore(sampleSites());
  std::istringstream IS(Bytes);
  std::vector<StoreSite> Out;
  ASSERT_TRUE(readStore(IS, Out));
  EXPECT_EQ(Out.size(), sampleSites().size());
}

TEST(StoreFormat, MissingFileFailsCleanly) {
  std::vector<StoreSite> Out;
  std::string Error;
  EXPECT_FALSE(
      readStoreFromFile("/nonexistent/dir/store.cswitchstore", Out, &Error));
  EXPECT_NE(Error.find("open"), std::string::npos) << Error;
}

} // namespace
