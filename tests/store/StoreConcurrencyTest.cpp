//===- StoreConcurrencyTest.cpp - Cross-process store merge tests ---------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
//
// Two real processes (fork) persist into the same store file at the
// same time. The advisory flock serializes their read-modify-write
// cycles, so the merged document must contain every site from both
// processes, exact counter sums (decay 1.0), and a run count equal to
// the number of contributing processes — no lost updates.
//
//===----------------------------------------------------------------------===//

#include "store/SelectionStore.h"

#include <gtest/gtest.h>

#if defined(__unix__) || defined(__APPLE__)

#include <cstdio>
#include <string>
#include <sys/wait.h>
#include <unistd.h>

using namespace cswitch;

namespace {

constexpr int NumProcesses = 2;
constexpr int PersistsPerProcess = 8;

WorkloadProfile childProfile() {
  WorkloadProfile P;
  for (int I = 0; I != 25; ++I)
    P.record(OperationKind::Populate, 1);
  for (int I = 0; I != 75; ++I)
    P.record(OperationKind::Contains, 1);
  P.recordSize(500);
  return P;
}

/// The body of one contributing process: repeated recordFinished +
/// persist cycles against the shared path, racing the sibling. Returns
/// the child's exit code.
int runChild(const std::string &Path, int Id) {
  SelectionStore Store(StoreOptions{}.decayFactor(1.0));
  if (!Store.load(Path))
    return 10; // A corrupt read here would mean a torn write escaped.
  for (int Round = 0; Round != PersistsPerProcess; ++Round) {
    // One shared site both processes write, plus one per-process site.
    Store.recordFinished("shared:hot-loop", "Rtime", AbstractionKind::List,
                         static_cast<unsigned>(Id), childProfile(), 2);
    Store.recordFinished("private:child-" + std::to_string(Id), "Rtime",
                         AbstractionKind::Set, 1, childProfile(), 1);
    if (!Store.persist(Path, {}))
      return 11;
  }
  return 0;
}

TEST(StoreConcurrency, ForkedProcessesMergeWithoutLosingSites) {
  std::string Path =
      ::testing::TempDir() + "/cswitch_store_concurrency.cswitchstore";
  std::remove(Path.c_str());
  std::remove((Path + ".lock").c_str());

  pid_t Children[NumProcesses];
  for (int Id = 0; Id != NumProcesses; ++Id) {
    pid_t Pid = fork();
    ASSERT_GE(Pid, 0) << "fork failed";
    if (Pid == 0) {
      // _exit keeps the child clear of gtest teardown and shared
      // stdio flushing.
      _exit(runChild(Path, Id));
    }
    Children[Id] = Pid;
  }
  for (pid_t Pid : Children) {
    int Status = 0;
    ASSERT_EQ(waitpid(Pid, &Status, 0), Pid);
    ASSERT_TRUE(WIFEXITED(Status));
    EXPECT_EQ(WEXITSTATUS(Status), 0);
  }

  std::vector<StoreSite> Sites;
  std::string Error;
  ASSERT_TRUE(readStoreFromFile(Path, Sites, &Error)) << Error;
  ASSERT_EQ(Sites.size(), static_cast<size_t>(NumProcesses + 1));

  const size_t PopulateIx = static_cast<size_t>(OperationKind::Populate);
  const size_t ContainsIx = static_cast<size_t>(OperationKind::Contains);
  bool SawShared = false;
  int PrivateSeen = 0;
  for (const StoreSite &S : Sites) {
    if (S.Name == "shared:hot-loop") {
      SawShared = true;
      // Each process contributes once per round; decay 1.0 keeps the
      // full history, so the sums must be exact — any lost
      // read-modify-write cycle would show up here.
      uint64_t Rounds = NumProcesses * PersistsPerProcess;
      EXPECT_EQ(S.Runs, static_cast<uint64_t>(NumProcesses));
      EXPECT_EQ(S.Instances, Rounds * 2);
      EXPECT_EQ(S.Counts[PopulateIx], Rounds * 25);
      EXPECT_EQ(S.Counts[ContainsIx], Rounds * 75);
    } else {
      ++PrivateSeen;
      EXPECT_EQ(S.Runs, 1u);
      EXPECT_EQ(S.Instances,
                static_cast<uint64_t>(PersistsPerProcess));
      EXPECT_EQ(S.Counts[ContainsIx],
                static_cast<uint64_t>(PersistsPerProcess) * 75);
    }
  }
  EXPECT_TRUE(SawShared);
  EXPECT_EQ(PrivateSeen, NumProcesses);

  std::remove(Path.c_str());
  std::remove((Path + ".lock").c_str());
}

} // namespace

#endif // unix
