//===- SelectionStoreTest.cpp - Persistent selection store tests ----------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
//
// Behavioral tests of the SelectionStore: cold starts on missing files,
// graceful degradation on corrupt ones, persist/load round trips,
// idempotent repeated persists, exponential decay across process
// "generations", and the live-site merge path.
//
//===----------------------------------------------------------------------===//

#include "store/SelectionStore.h"
#include "support/EventLog.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

using namespace cswitch;

namespace {

/// Fresh temp-file path per test (removed on teardown by callers).
std::string tempStorePath(const char *Tag) {
  return ::testing::TempDir() + "/cswitch_selection_store_" + Tag +
         ".cswitchstore";
}

WorkloadProfile profileWith(uint64_t Populate, uint64_t Contains,
                            size_t MaxSize) {
  WorkloadProfile P;
  for (uint64_t I = 0; I != Populate; ++I)
    P.record(OperationKind::Populate, 1);
  for (uint64_t I = 0; I != Contains; ++I)
    P.record(OperationKind::Contains, 1);
  P.recordSize(MaxSize);
  return P;
}

TEST(SelectionStore, MissingFileIsACleanColdStart) {
  SelectionStore Store;
  std::string Path = tempStorePath("missing");
  std::remove(Path.c_str());
  std::string Error;
  EXPECT_TRUE(Store.load(Path, &Error)) << Error;
  EXPECT_EQ(Store.siteCount(), 0u);
  EXPECT_FALSE(
      Store.lookup("anything", "Rtime", AbstractionKind::List).has_value());
  StoreStats S = Store.stats();
  EXPECT_EQ(S.Loads, 1u);
  EXPECT_EQ(S.LoadFailures, 0u);
}

TEST(SelectionStore, CorruptFileDegradesToColdStart) {
  std::string Path = tempStorePath("corrupt");
  {
    std::ofstream OS(Path, std::ios::binary);
    OS << "cswitch-store-v1"; // Valid magic, then a torn document.
    OS << "\x01\x05garbage";
  }
  EventLog::global().drain();
  SelectionStore Store;
  std::string Error;
  EXPECT_FALSE(Store.load(Path, &Error));
  EXPECT_FALSE(Error.empty());
  EXPECT_EQ(Store.siteCount(), 0u);
  StoreStats S = Store.stats();
  EXPECT_EQ(S.Loads, 0u) << "Loads counts successful loads only";
  EXPECT_EQ(S.LoadFailures, 1u);
  // The failure is traced for diagnosis.
  bool SawStoreEvent = false;
  for (const Event &E : EventLog::global().drain())
    if (E.Kind == EventKind::Store &&
        E.Detail.find("load failed") != std::string::npos)
      SawStoreEvent = true;
  EXPECT_TRUE(SawStoreEvent);
  std::remove(Path.c_str());
}

TEST(SelectionStore, PersistThenLoadRoundTrips) {
  std::string Path = tempStorePath("roundtrip");
  std::remove(Path.c_str());

  SelectionStore Writer;
  ASSERT_TRUE(Writer.load(Path));
  Writer.recordFinished("site:a", "Rtime", AbstractionKind::List, 2,
                        profileWith(10, 300, 1500), 4);
  std::string Error;
  ASSERT_TRUE(Writer.persist(Path, {}, &Error)) << Error;

  SelectionStore Reader;
  ASSERT_TRUE(Reader.load(Path));
  EXPECT_EQ(Reader.siteCount(), 1u);
  auto Site = Reader.lookup("site:a", "Rtime", AbstractionKind::List);
  ASSERT_TRUE(Site.has_value());
  EXPECT_EQ(Site->Decision, 2u);
  EXPECT_EQ(Site->Runs, 1u);
  EXPECT_EQ(Site->Instances, 4u);
  EXPECT_EQ(Site->MaxSize, 1500u);
  EXPECT_EQ(Site->Counts[static_cast<size_t>(OperationKind::Populate)], 10u);
  EXPECT_EQ(Site->Counts[static_cast<size_t>(OperationKind::Contains)],
            300u);
  // The rule is part of the key: the same site under Ralloc is absent.
  EXPECT_FALSE(
      Reader.lookup("site:a", "Ralloc", AbstractionKind::List).has_value());
  std::remove(Path.c_str());
}

TEST(SelectionStore, RepeatedPersistsOnlyAddTheDelta) {
  std::string Path = tempStorePath("idempotent");
  std::remove(Path.c_str());

  SelectionStore Store;
  ASSERT_TRUE(Store.load(Path));
  Store.recordFinished("site:d", "Rtime", AbstractionKind::Set, 1,
                       profileWith(5, 50, 10), 2);
  ASSERT_TRUE(Store.persist(Path, {}));
  // Persisting again with no new contributions must not double-count.
  ASSERT_TRUE(Store.persist(Path, {}));
  Store.recordFinished("site:d", "Rtime", AbstractionKind::Set, 1,
                       profileWith(5, 50, 10), 2);
  ASSERT_TRUE(Store.persist(Path, {}));

  SelectionStore Reader;
  ASSERT_TRUE(Reader.load(Path));
  auto Site = Reader.lookup("site:d", "Rtime", AbstractionKind::Set);
  ASSERT_TRUE(Site.has_value());
  EXPECT_EQ(Site->Runs, 1u) << "one process = one run, however many persists";
  EXPECT_EQ(Site->Instances, 4u);
  EXPECT_EQ(Site->Counts[static_cast<size_t>(OperationKind::Contains)],
            100u);
  std::remove(Path.c_str());
}

TEST(SelectionStore, DecayScalesTheOlderAggregateOncePerRun) {
  std::string Path = tempStorePath("decay");
  std::remove(Path.c_str());

  // Generation 1 contributes 100 contains ops over 8 instances.
  {
    SelectionStore Gen1(StoreOptions{}.decayFactor(0.5));
    ASSERT_TRUE(Gen1.load(Path));
    Gen1.recordFinished("svc", "Rtime", AbstractionKind::Map, 3,
                        profileWith(0, 100, 64), 8);
    ASSERT_TRUE(Gen1.persist(Path, {}));
  }
  // Generation 2 halves the old aggregate, then adds its own 40/2.
  {
    SelectionStore Gen2(StoreOptions{}.decayFactor(0.5));
    ASSERT_TRUE(Gen2.load(Path));
    Gen2.recordFinished("svc", "Rtime", AbstractionKind::Map, 1,
                        profileWith(0, 40, 32), 2);
    ASSERT_TRUE(Gen2.persist(Path, {}));
  }
  SelectionStore Reader;
  ASSERT_TRUE(Reader.load(Path));
  auto Site = Reader.lookup("svc", "Rtime", AbstractionKind::Map);
  ASSERT_TRUE(Site.has_value());
  EXPECT_EQ(Site->Runs, 2u);
  EXPECT_EQ(Site->Counts[static_cast<size_t>(OperationKind::Contains)],
            50u + 40u);
  EXPECT_EQ(Site->Instances, 4u + 2u);
  EXPECT_EQ(Site->Decision, 1u) << "the newest run's decision wins";
  // MaxSize tracks the historical high-water mark, undecayed.
  EXPECT_EQ(Site->MaxSize, 64u);
  std::remove(Path.c_str());
}

TEST(SelectionStore, LiveSitesMergeWithoutFinishing) {
  std::string Path = tempStorePath("live");
  std::remove(Path.c_str());

  SelectionStore Store;
  ASSERT_TRUE(Store.load(Path));
  SelectionStore::LiveSite Live;
  Live.Name = "live:site";
  Live.Rule = "Ralloc";
  Live.Kind = AbstractionKind::List;
  Live.Decision = 3;
  Live.Profile = profileWith(7, 0, 9);
  Live.Instances = 3;
  ASSERT_TRUE(Store.persist(Path, {Live}));

  SelectionStore Reader;
  ASSERT_TRUE(Reader.load(Path));
  auto Site = Reader.lookup("live:site", "Ralloc", AbstractionKind::List);
  ASSERT_TRUE(Site.has_value());
  EXPECT_EQ(Site->Decision, 3u);
  EXPECT_EQ(Site->Instances, 3u);

  // Zero-instance live sites are noise, not knowledge: never persisted.
  SelectionStore Empty;
  std::string Path2 = tempStorePath("live_empty");
  std::remove(Path2.c_str());
  ASSERT_TRUE(Empty.load(Path2));
  SelectionStore::LiveSite Idle = Live;
  Idle.Instances = 0;
  ASSERT_TRUE(Empty.persist(Path2, {Idle}));
  SelectionStore Reader2;
  ASSERT_TRUE(Reader2.load(Path2));
  EXPECT_EQ(Reader2.siteCount(), 0u);
  std::remove(Path.c_str());
  std::remove(Path2.c_str());
}

TEST(SelectionStore, PersistReplacesACorruptOnDiskDocument) {
  std::string Path = tempStorePath("replace_corrupt");
  {
    std::ofstream OS(Path, std::ios::binary);
    OS << "definitely not a store";
  }
  SelectionStore Store;
  Store.recordFinished("fresh", "Rtime", AbstractionKind::List, 1,
                       profileWith(1, 1, 1), 1);
  std::string Error;
  EXPECT_TRUE(Store.persist(Path, {}, &Error)) << Error;
  EXPECT_GE(Store.stats().LoadFailures, 1u);

  SelectionStore Reader;
  ASSERT_TRUE(Reader.load(Path));
  EXPECT_EQ(Reader.siteCount(), 1u);
  std::remove(Path.c_str());
}

TEST(SelectionStore, StatsCountWarmStarts) {
  SelectionStore Store;
  Store.noteWarmStart();
  Store.noteWarmStart();
  EXPECT_EQ(Store.stats().WarmStarts, 2u);
}

TEST(SelectionStore, DecayFactorIsClampedToUnitRange) {
  EXPECT_EQ(SelectionStore(StoreOptions{}.decayFactor(7.0))
                .options()
                .DecayFactor,
            1.0);
  EXPECT_EQ(SelectionStore(StoreOptions{}.decayFactor(-1.0))
                .options()
                .DecayFactor,
            0.0);
}

} // namespace
