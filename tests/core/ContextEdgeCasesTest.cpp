//===- ContextEdgeCasesTest.cpp - Context boundary conditions ----------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Boundary conditions of the allocation-context machinery: degenerate
/// window sizes and finished ratios, empty models, rules over unused
/// dimensions, and report-after-clear facade lifecycles.
///
//===----------------------------------------------------------------------===//

#include "core/AllocationContext.h"
#include "model/DefaultModel.h"

#include <gtest/gtest.h>

using namespace cswitch;

namespace {

std::shared_ptr<const PerformanceModel> defaultModel() {
  static auto Model =
      std::make_shared<const PerformanceModel>(defaultPerformanceModel());
  return Model;
}

ContextOptions quiet(size_t Window, double Ratio) {
  ContextOptions Options;
  Options.WindowSize = Window;
  Options.FinishedRatio = Ratio;
  Options.LogEvents = false;
  return Options;
}

void lookupHeavy(ListContext<int64_t> &Ctx, int Instances) {
  for (int I = 0; I != Instances; ++I) {
    List<int64_t> L = Ctx.createList();
    for (int64_t V = 0; V != 400; ++V)
      L.add(V);
    for (int64_t V = 0; V != 3000; ++V)
      (void)L.contains(V);
  }
}

TEST(ContextEdgeCases, WindowSizeOneWorks) {
  ListContext<int64_t> Ctx("edge:w1", ListVariant::ArrayList,
                           defaultModel(), SelectionRule::timeRule(),
                           quiet(1, 0.6));
  lookupHeavy(Ctx, 1);
  EXPECT_TRUE(Ctx.evaluate());
  EXPECT_EQ(Ctx.currentVariant().name(), "HashArrayList");
  EXPECT_EQ(Ctx.instancesMonitored(), 1u);
}

TEST(ContextEdgeCases, ZeroFinishedRatioStillNeedsOneProfile) {
  ListContext<int64_t> Ctx("edge:r0", ListVariant::ArrayList,
                           defaultModel(), SelectionRule::timeRule(),
                           quiet(10, 0.0));
  // No instances at all: nothing to analyze.
  EXPECT_FALSE(Ctx.evaluate());
  // One live (unfinished) monitored instance: still nothing finished.
  List<int64_t> Alive = Ctx.createList();
  Alive.add(1);
  EXPECT_FALSE(Ctx.evaluate());
  // One finished instance suffices at ratio 0.
  lookupHeavy(Ctx, 1);
  EXPECT_TRUE(Ctx.evaluate());
}

TEST(ContextEdgeCases, RatioAboveOneNeverEvaluates) {
  ListContext<int64_t> Ctx("edge:r2", ListVariant::ArrayList,
                           defaultModel(), SelectionRule::timeRule(),
                           quiet(4, 2.0));
  lookupHeavy(Ctx, 16);
  // 4 of 4 finished < required ceil(2.0 * 4) = 8: gated forever.
  EXPECT_FALSE(Ctx.evaluate());
  EXPECT_EQ(Ctx.evaluationCount(), 0u);
}

TEST(ContextEdgeCases, EmptyModelNeverSwitches) {
  auto Empty = std::make_shared<const PerformanceModel>();
  ListContext<int64_t> Ctx("edge:empty", ListVariant::ArrayList, Empty,
                           SelectionRule::timeRule(), quiet(5, 0.5));
  lookupHeavy(Ctx, 5);
  // Every candidate (and the current variant) lacks model coverage:
  // nothing is eligible, the context stays put and does not crash.
  EXPECT_FALSE(Ctx.evaluate());
  EXPECT_EQ(Ctx.currentVariantIndex(),
            static_cast<unsigned>(ListVariant::ArrayList));
}

TEST(ContextEdgeCases, RuleOnUnpopulatedDimensionKeepsCurrent) {
  // A model with only time costs, driven by an alloc rule: TC_alloc is
  // zero everywhere, so no candidate can show a strict improvement.
  auto TimeOnly = std::make_shared<PerformanceModel>();
  for (ListVariant V : AllListVariants)
    TimeOnly->setCost(VariantId::of(V), OperationKind::Contains,
                      CostDimension::Time, Polynomial({5.0}));
  auto Model = std::shared_ptr<const PerformanceModel>(TimeOnly);
  ListContext<int64_t> Ctx("edge:dim", ListVariant::ArrayList, Model,
                           SelectionRule::allocRule(), quiet(5, 0.5));
  lookupHeavy(Ctx, 5);
  EXPECT_FALSE(Ctx.evaluate());
}

TEST(ContextEdgeCases, ClearedAndReusedFacadeStillReportsOnce) {
  ListContext<int64_t> Ctx("edge:reuse", ListVariant::ArrayList,
                           defaultModel(), SelectionRule::timeRule(),
                           quiet(2, 0.5));
  {
    List<int64_t> L = Ctx.createList();
    for (int64_t V = 0; V != 50; ++V)
      L.add(V);
    L.clear();
    for (int64_t V = 0; V != 200; ++V)
      L.add(V);
    // MaxSize reflects the larger incarnation; the context receives one
    // report at destruction.
    EXPECT_EQ(L.profile().MaxSize, 200u);
  }
  EXPECT_TRUE(Ctx.evaluate() || Ctx.evaluationCount() == 1);
}

TEST(ContextEdgeCases, ManyEvaluationsWithoutInstancesAreCheap) {
  ListContext<int64_t> Ctx("edge:idle", ListVariant::ArrayList,
                           defaultModel(), SelectionRule::timeRule(),
                           quiet(100, 0.6));
  for (int I = 0; I != 10000; ++I)
    EXPECT_FALSE(Ctx.evaluate());
  EXPECT_EQ(Ctx.evaluationCount(), 0u);
}

TEST(ContextEdgeCases, SwitchTargetPersistsAcrossManyRounds) {
  ListContext<int64_t> Ctx("edge:persist", ListVariant::ArrayList,
                           defaultModel(), SelectionRule::timeRule(),
                           quiet(5, 0.6));
  for (int Round = 0; Round != 5; ++Round) {
    lookupHeavy(Ctx, 5);
    Ctx.evaluate();
  }
  // Stable workload: one switch, then the choice holds.
  EXPECT_EQ(Ctx.switchCount(), 1u);
  EXPECT_EQ(Ctx.currentVariant().name(), "HashArrayList");
}

} // namespace
