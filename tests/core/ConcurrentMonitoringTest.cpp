//===- ConcurrentMonitoringTest.cpp - Lock-free window stress tests ----------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic witnesses for the lock-free monitoring window: N threads
/// hammer one context with create/destroy churn while evaluate() rotates
/// rounds concurrently, and the monitored/finished/discarded counter
/// invariants must hold exactly. Run under TSan in CI to validate the
/// memory-ordering contract (DESIGN.md §4).
///
//===----------------------------------------------------------------------===//

#include "core/Switch.h"
#include "model/DefaultModel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <optional>
#include <thread>
#include <vector>

using namespace cswitch;

namespace {

std::shared_ptr<const PerformanceModel> defaultModel() {
  static auto Model =
      std::make_shared<const PerformanceModel>(defaultPerformanceModel());
  return Model;
}

ContextOptions quietOptions(size_t Window, double Ratio = 0.5) {
  ContextOptions Options;
  Options.WindowSize = Window;
  Options.FinishedRatio = Ratio;
  Options.LogEvents = false;
  return Options;
}

/// The shared counter invariants after all workers joined and the dust
/// settled.
void expectCounterInvariants(const AllocationContextBase &Ctx,
                             uint64_t ExpectedCreated) {
  EXPECT_EQ(Ctx.instancesCreated(), ExpectedCreated);
  EXPECT_LE(Ctx.instancesMonitored(), Ctx.instancesCreated());
  // Every monitored instance died, so its profile was either published
  // into its round's window or discarded as a stale straggler — exactly
  // one of the two.
  EXPECT_EQ(Ctx.instancesFinished() + Ctx.profilesDiscarded(),
            Ctx.instancesMonitored());
}

TEST(ConcurrentMonitoring, CountersConsistentUnderCreateDestroyChurn) {
  ListContext<int64_t> Ctx("stress:churn", ListVariant::ArrayList,
                           defaultModel(), SelectionRule::timeRule(),
                           quietOptions(64));
  constexpr int Threads = 4;
  constexpr int PerThread = 20000;

  std::atomic<bool> EvaluatorStop{false};
  std::thread Evaluator([&Ctx, &EvaluatorStop] {
    while (!EvaluatorStop.load(std::memory_order_relaxed))
      Ctx.evaluate();
  });

  std::vector<std::thread> Workers;
  for (int T = 0; T != Threads; ++T) {
    Workers.emplace_back([&Ctx] {
      for (int I = 0; I != PerThread; ++I) {
        List<int64_t> L = Ctx.createList();
        L.add(I);
        L.add(I + 1);
        (void)L.contains(I);
        // Workers evaluate too: rotation must interleave with churn
        // regardless of how the dedicated evaluator gets scheduled.
        if (I % 512 == 511)
          Ctx.evaluate();
      }
    });
  }
  for (std::thread &W : Workers)
    W.join();
  EvaluatorStop.store(true, std::memory_order_relaxed);
  Evaluator.join();

  expectCounterInvariants(Ctx, uint64_t(Threads) * PerThread);
  // The evaluator kept rotating rounds, so monitoring kept sampling.
  EXPECT_GT(Ctx.evaluationCount(), 0u);
  EXPECT_GT(Ctx.instancesMonitored(), 64u);
}

TEST(ConcurrentMonitoring, StragglersAcrossRoundsNeverCorruptCounters) {
  ListContext<int64_t> Ctx("stress:stragglers", ListVariant::ArrayList,
                           defaultModel(), SelectionRule::timeRule(),
                           quietOptions(16, 0.25));
  constexpr int Threads = 4;
  constexpr int PerThread = 4000;

  std::atomic<bool> EvaluatorStop{false};
  std::thread Evaluator([&Ctx, &EvaluatorStop] {
    while (!EvaluatorStop.load(std::memory_order_relaxed))
      Ctx.evaluate();
  });

  std::vector<std::thread> Workers;
  for (int T = 0; T != Threads; ++T) {
    Workers.emplace_back([&Ctx] {
      // Instances deliberately held across round boundaries: a bounded
      // backlog of live lists forces finishes to land in long-retired
      // rounds, exercising the discard path.
      std::vector<List<int64_t>> Backlog;
      for (int I = 0; I != PerThread; ++I) {
        Backlog.push_back(Ctx.createList());
        Backlog.back().add(I);
        if (Backlog.size() >= 32)
          Backlog.erase(Backlog.begin()); // drop the oldest straggler
        // Evaluate faster than the backlog drains: deaths lag 32
        // creations behind, so a rotation passing the finished-ratio
        // gate (4 of 16) always closes slots of still-live instances,
        // whose later deaths exercise the discard path.
        if (I % 8 == 7)
          Ctx.evaluate();
      }
    });
  }
  for (std::thread &W : Workers)
    W.join();
  EvaluatorStop.store(true, std::memory_order_relaxed);
  Evaluator.join();

  expectCounterInvariants(Ctx, uint64_t(Threads) * PerThread);
  EXPECT_GT(Ctx.profilesDiscarded(), 0u);
}

TEST(ConcurrentMonitoring, ImpossibleRuleNeverSwitchesUnderContention) {
  // The §5.3 configuration: every monitoring mechanism active, no
  // transition may ever fire — even with concurrent churn.
  ListContext<int64_t> Ctx("stress:impossible", ListVariant::ArrayList,
                           defaultModel(), SelectionRule::impossibleRule(),
                           quietOptions(32));
  std::atomic<bool> EvaluatorStop{false};
  std::thread Evaluator([&Ctx, &EvaluatorStop] {
    while (!EvaluatorStop.load(std::memory_order_relaxed))
      Ctx.evaluate();
  });
  std::vector<std::thread> Workers;
  for (int T = 0; T != 4; ++T) {
    Workers.emplace_back([&Ctx] {
      for (int I = 0; I != 5000; ++I) {
        List<int64_t> L = Ctx.createList();
        for (int64_t V = 0; V != 8; ++V)
          L.add(V);
        (void)L.contains(3);
        if (I % 256 == 255)
          Ctx.evaluate();
      }
    });
  }
  for (std::thread &W : Workers)
    W.join();
  EvaluatorStop.store(true, std::memory_order_relaxed);
  Evaluator.join();

  expectCounterInvariants(Ctx, 4u * 5000u);
  EXPECT_GT(Ctx.evaluationCount(), 0u);
  EXPECT_EQ(Ctx.switchCount(), 0u);
}

TEST(ConcurrentMonitoring, ParallelEvaluateAllMatchesSequentialDecisions) {
  // The same deterministic workloads must produce the same selection
  // decisions whether contexts are evaluated sequentially or fanned out
  // to the worker pool.
  auto RunWorkloads = [](SwitchEngine &Engine, size_t Threads,
                         std::vector<std::string> &ChosenVariants) {
    Engine.setEvaluationThreads(Threads);
    std::vector<std::unique_ptr<ListContext<int64_t>>> Contexts;
    for (int C = 0; C != 8; ++C) {
      Contexts.push_back(std::make_unique<ListContext<int64_t>>(
          "par:" + std::to_string(C), ListVariant::ArrayList,
          defaultModel(), SelectionRule::timeRule(), quietOptions(10, 0.6)));
      Engine.registerContext(Contexts.back().get());
      bool LookupHeavy = C % 2 == 0;
      for (int I = 0; I != 10; ++I) {
        List<int64_t> L = Contexts.back()->createList();
        for (int64_t V = 0; V != 400; ++V)
          L.add(V);
        for (int64_t V = 0; V != (LookupHeavy ? 2000 : 0); ++V)
          (void)L.contains(V);
      }
    }
    size_t Transitions = Engine.evaluateAll();
    for (auto &Ctx : Contexts) {
      ChosenVariants.push_back(Ctx->currentVariant().name());
      Engine.unregisterContext(Ctx.get());
    }
    return Transitions;
  };

  SwitchEngine Sequential;
  std::vector<std::string> SequentialChoices;
  size_t SequentialTransitions = RunWorkloads(Sequential, 1,
                                              SequentialChoices);

  SwitchEngine Parallel;
  std::vector<std::string> ParallelChoices;
  size_t ParallelTransitions = RunWorkloads(Parallel, 4, ParallelChoices);

  EXPECT_EQ(SequentialTransitions, 4u); // the lookup-heavy half switched
  EXPECT_EQ(ParallelTransitions, SequentialTransitions);
  EXPECT_EQ(ParallelChoices, SequentialChoices);
}

TEST(ConcurrentMonitoring, ParallelEvaluateAllUnderConcurrentChurn) {
  SwitchEngine Engine;
  Engine.setEvaluationThreads(3);
  ListContext<int64_t> A("par:churn:a", ListVariant::ArrayList,
                         defaultModel(), SelectionRule::impossibleRule(),
                         quietOptions(32));
  ListContext<int64_t> B("par:churn:b", ListVariant::ArrayList,
                         defaultModel(), SelectionRule::impossibleRule(),
                         quietOptions(32));
  Engine.registerContext(&A);
  Engine.registerContext(&B);

  std::atomic<bool> Stop{false};
  std::vector<std::thread> Workers;
  for (int T = 0; T != 4; ++T) {
    Workers.emplace_back([&A, &B, &Stop, T] {
      ListContext<int64_t> &Ctx = T % 2 ? A : B;
      while (!Stop.load(std::memory_order_relaxed)) {
        List<int64_t> L = Ctx.createList();
        L.add(1);
      }
    });
  }
  for (int I = 0; I != 300; ++I)
    Engine.evaluateAll();
  Stop.store(true, std::memory_order_relaxed);
  for (std::thread &W : Workers)
    W.join();
  Engine.evaluateAll();
  Engine.unregisterContext(&A);
  Engine.unregisterContext(&B);

  expectCounterInvariants(A, A.instancesCreated());
  expectCounterInvariants(B, B.instancesCreated());
  EXPECT_EQ(A.switchCount() + B.switchCount(), 0u);
}

TEST(ConcurrentMonitoring, EngineStatsAggregateAcrossShards) {
  SwitchEngine Engine;
  std::vector<std::unique_ptr<ListContext<int64_t>>> Contexts;
  for (int C = 0; C != 40; ++C) {
    Contexts.push_back(std::make_unique<ListContext<int64_t>>(
        "stats:" + std::to_string(C), ListVariant::ArrayList,
        defaultModel(), SelectionRule::timeRule(), quietOptions(4)));
    Engine.registerContext(Contexts.back().get());
    for (int I = 0; I != 3; ++I) {
      List<int64_t> L = Contexts.back()->createList();
      L.add(I);
    }
  }
  EngineStats Stats = Engine.stats();
  EXPECT_EQ(Stats.Contexts, 40u);
  EXPECT_EQ(Stats.InstancesCreated, 40u * 3u);
  EXPECT_EQ(Stats.InstancesMonitored, 40u * 3u);
  EXPECT_EQ(Stats.ProfilesPublished, 40u * 3u);
  EXPECT_EQ(Stats.ProfilesDiscarded, 0u);
  for (auto &Ctx : Contexts)
    Engine.unregisterContext(Ctx.get());
  EXPECT_EQ(Engine.contextCount(), 0u);
}

TEST(ConcurrentMonitoring, SetEvaluationThreadsIsIdempotentAndRevertible) {
  SwitchEngine Engine;
  EXPECT_EQ(Engine.evaluationThreads(), 1u);
  Engine.setEvaluationThreads(4);
  EXPECT_EQ(Engine.evaluationThreads(), 4u);
  Engine.setEvaluationThreads(4);
  Engine.setEvaluationThreads(0); // back to deterministic mode
  EXPECT_EQ(Engine.evaluationThreads(), 1u);
}

} // namespace
