//===- OfflineAdvisorTest.cpp - Offline advisor tests ------------------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//

#include "core/OfflineAdvisor.h"
#include "core/AllocationContext.h"
#include "model/DefaultModel.h"

#include <gtest/gtest.h>

using namespace cswitch;

namespace {

PerformanceModel &model() {
  static PerformanceModel Model = defaultPerformanceModel();
  return Model;
}

WorkloadProfile lookupHeavyProfile() {
  WorkloadProfile P;
  P.record(OperationKind::Populate, 400);
  P.record(OperationKind::Contains, 3000);
  P.recordSize(400);
  return P;
}

TEST(ProfileAggregator, CollectsProfiles) {
  ProfileAggregator Agg("site:a", AbstractionKind::Set,
                        static_cast<unsigned>(SetVariant::ChainedHashSet));
  EXPECT_EQ(Agg.instanceCount(), 0u);
  Agg.onInstanceFinished(0, lookupHeavyProfile());
  Agg.onInstanceFinished(1, lookupHeavyProfile());
  EXPECT_EQ(Agg.instanceCount(), 2u);
  EXPECT_EQ(Agg.profiles().size(), 2u);
  EXPECT_EQ(Agg.site(), "site:a");
}

TEST(OfflineAdvisor, RecommendsOpenHashForLookupHeavySets) {
  ProfileAggregator Agg("site:b", AbstractionKind::Set,
                        static_cast<unsigned>(SetVariant::ChainedHashSet));
  for (int I = 0; I != 10; ++I)
    Agg.onInstanceFinished(0, lookupHeavyProfile());
  std::vector<SiteRecommendation> Report =
      adviseOffline({&Agg}, model(), SelectionRule::timeRule());
  ASSERT_EQ(Report.size(), 1u);
  ASSERT_TRUE(Report[0].RecommendedVariantIndex.has_value());
  EXPECT_EQ(*Report[0].RecommendedVariantIndex,
            static_cast<unsigned>(SetVariant::OpenHashSet));
  EXPECT_LT(Report[0].improvementRatio(CostDimension::Time), 0.8);
  EXPECT_EQ(Report[0].InstancesProfiled, 10u);
}

TEST(OfflineAdvisor, KeepsDeclaredVariantWhenAlreadyBest) {
  ProfileAggregator Agg("site:c", AbstractionKind::Set,
                        static_cast<unsigned>(SetVariant::OpenHashSet));
  for (int I = 0; I != 5; ++I)
    Agg.onInstanceFinished(0, lookupHeavyProfile());
  std::vector<SiteRecommendation> Report =
      adviseOffline({&Agg}, model(), SelectionRule::timeRule());
  ASSERT_EQ(Report.size(), 1u);
  EXPECT_FALSE(Report[0].RecommendedVariantIndex.has_value());
  EXPECT_DOUBLE_EQ(Report[0].improvementRatio(CostDimension::Time), 1.0);
}

TEST(OfflineAdvisor, NoProfilesMeansNoRecommendation) {
  ProfileAggregator Agg("site:d", AbstractionKind::List,
                        static_cast<unsigned>(ListVariant::ArrayList));
  std::vector<SiteRecommendation> Report =
      adviseOffline({&Agg}, model(), SelectionRule::timeRule());
  ASSERT_EQ(Report.size(), 1u);
  EXPECT_FALSE(Report[0].RecommendedVariantIndex.has_value());
  EXPECT_EQ(Report[0].InstancesProfiled, 0u);
}

TEST(OfflineAdvisor, AgreesWithOnlineContextOnStableWorkloads) {
  // The central consistency property: offline advice computed from the
  // same profiles the online context analyzed must name the same
  // variant (the two differ only on *shifting* workloads).
  auto SharedModel =
      std::make_shared<const PerformanceModel>(defaultPerformanceModel());
  ContextOptions Options;
  Options.WindowSize = 10;
  Options.LogEvents = false;
  ListContext<int64_t> Ctx("site:e", ListVariant::ArrayList, SharedModel,
                           SelectionRule::timeRule(), Options);
  ProfileAggregator Agg("site:e", AbstractionKind::List,
                        static_cast<unsigned>(ListVariant::ArrayList));
  for (int I = 0; I != 10; ++I) {
    List<int64_t> L = Ctx.createList();
    for (int64_t V = 0; V != 400; ++V)
      L.add(V);
    for (int64_t V = 0; V != 3000; ++V)
      (void)L.contains(V);
    // Mirror the same workload into the offline aggregator.
    WorkloadProfile P;
    P.record(OperationKind::Populate, 400);
    P.record(OperationKind::Contains, 3000);
    P.recordSize(400);
    Agg.onInstanceFinished(0, P);
  }
  ASSERT_TRUE(Ctx.evaluate());
  std::vector<SiteRecommendation> Report =
      adviseOffline({&Agg}, *SharedModel, SelectionRule::timeRule());
  ASSERT_TRUE(Report[0].RecommendedVariantIndex.has_value());
  EXPECT_EQ(*Report[0].RecommendedVariantIndex,
            Ctx.currentVariantIndex());
}

TEST(OfflineAdvisor, SingleStaticChoiceCannotFollowPhases) {
  // The limitation the paper's online approach removes: over a workload
  // with two opposing phases, the offline advisor merges everything
  // into one compromise choice.
  ProfileAggregator Agg("site:f", AbstractionKind::List,
                        static_cast<unsigned>(ListVariant::ArrayList));
  // Phase 1: lookup-heavy (favors HashArrayList).
  for (int I = 0; I != 10; ++I)
    Agg.onInstanceFinished(0, lookupHeavyProfile());
  // Phase 2: remove-heavy (favors ArrayList).
  for (int I = 0; I != 10; ++I) {
    WorkloadProfile P;
    P.record(OperationKind::Populate, 300);
    P.record(OperationKind::Remove, 600);
    P.recordSize(300);
    Agg.onInstanceFinished(0, P);
  }
  std::vector<SiteRecommendation> Report =
      adviseOffline({&Agg}, model(), SelectionRule::timeRule());
  // Whatever it recommends, it is exactly one choice for both phases —
  // while the online framework switched per phase (see
  // AllocationContext.ContinuousAdaptationCanSwitchBack).
  ASSERT_EQ(Report.size(), 1u);
  SUCCEED();
}

TEST(OfflineAdvisor, RetentionCapMergesOverflow) {
  ProfileAggregator Agg("site:g", AbstractionKind::Set,
                        static_cast<unsigned>(SetVariant::ChainedHashSet));
  WorkloadProfile P;
  P.record(OperationKind::Contains, 1);
  P.recordSize(1);
  for (size_t I = 0; I != ProfileAggregator::MaxRetainedProfiles + 100;
       ++I)
    Agg.onInstanceFinished(0, P);
  EXPECT_EQ(Agg.instanceCount(),
            ProfileAggregator::MaxRetainedProfiles + 100);
  EXPECT_EQ(Agg.profiles().size(),
            ProfileAggregator::MaxRetainedProfiles);
}

TEST(SiteRecommendation, ToStringIsReadable) {
  ProfileAggregator Agg("Foo.cpp:12", AbstractionKind::Set,
                        static_cast<unsigned>(SetVariant::ChainedHashSet));
  for (int I = 0; I != 3; ++I)
    Agg.onInstanceFinished(0, lookupHeavyProfile());
  std::vector<SiteRecommendation> Report =
      adviseOffline({&Agg}, model(), SelectionRule::timeRule());
  std::string Line = Report[0].toString();
  EXPECT_NE(Line.find("Foo.cpp:12"), std::string::npos);
  EXPECT_NE(Line.find("ChainedHashSet -> OpenHashSet"),
            std::string::npos);
  EXPECT_NE(Line.find("3 instances"), std::string::npos);
}

} // namespace
