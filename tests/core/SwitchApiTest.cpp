//===- SwitchApiTest.cpp - Generic factory and observability API tests ----===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
//
// Tests of the unified public API: the generic Switch::makeContext<>
// factory (the sole construction path), the Switch::configure process
// defaults, the fluent ContextOptions builder, and the observability
// surface (telemetry snapshots matching engine stats exactly, JSON
// round-trip, drainEvents, the periodic reporter).
//
//===----------------------------------------------------------------------===//

#include "core/Switch.h"
#include "model/DefaultModel.h"
#include "support/MetricsExport.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>

using namespace cswitch;

namespace {

std::shared_ptr<const PerformanceModel> defaultModel() {
  static auto Model =
      std::make_shared<const PerformanceModel>(defaultPerformanceModel());
  return Model;
}

void lookupHeavyWorkload(ListContext<int64_t> &Ctx, int Instances) {
  for (int I = 0; I != Instances; ++I) {
    List<int64_t> L = Ctx.createList();
    for (int64_t V = 0; V != 400; ++V)
      L.add(V);
    for (int64_t V = 0; V != 2000; ++V)
      (void)L.contains(V);
  }
}

/// Extracts the first `"Key": <number>` occurrence — sufficient for the
/// engine object, which serializes before the per-context array.
uint64_t firstJsonField(const std::string &Json, const std::string &Key) {
  std::string Needle = "\"" + Key + "\": ";
  size_t Pos = Json.find(Needle);
  EXPECT_NE(Pos, std::string::npos) << Key;
  if (Pos == std::string::npos)
    return ~0ull;
  return std::strtoull(Json.c_str() + Pos + Needle.size(), nullptr, 10);
}

TEST(SwitchApi, MakeContextCoversEveryAbstraction) {
  size_t Before = SwitchEngine::global().contextCount();
  {
    auto L = Switch::makeContext<List<int64_t>>("api:mk-list",
                                                ListVariant::ArrayList);
    auto S = Switch::makeContext<Set<int64_t>>("api:mk-set",
                                               SetVariant::ChainedHashSet);
    auto M = Switch::makeContext<Map<int64_t, int64_t>>(
        "api:mk-map", MapVariant::ChainedHashMap);
    EXPECT_EQ(SwitchEngine::global().contextCount(), Before + 3);
    List<int64_t> AList = L->createList();
    AList.add(1);
    Set<int64_t> ASet = S->createSet();
    ASet.add(2);
    Map<int64_t, int64_t> AMap = M->createMap();
    AMap.put(3, 4);
    EXPECT_EQ(L->name(), "api:mk-list");
    EXPECT_EQ(L->instancesCreated(), 1u);
  }
  EXPECT_EQ(SwitchEngine::global().contextCount(), Before);
}

TEST(SwitchApi, ContextTypeSpellingAlsoResolves) {
  // makeContext<ListContext<T>> is the same factory as
  // makeContext<List<T>> — context types name themselves.
  auto Ctx = Switch::makeContext<ListContext<int64_t>>(
      "api:mk-ctx-type", ListVariant::LinkedList);
  EXPECT_EQ(Ctx->currentVariant().name(), std::string("LinkedList"));
}

TEST(SwitchApi, ConfigureInstallsContextDefaults) {
  ContextOptions Before = Switch::defaultContextOptions();
  SwitchConfig Config;
  Config.Context =
      ContextOptions{}.windowSize(25).logEvents(false).concurrency(
          Concurrency::Auto);
  Switch::configure(Config);
  // A context created without explicit options picks the defaults up...
  auto Defaulted = Switch::makeContext<Map<int64_t, int64_t>>(
      "api:configured", MapVariant::ChainedHashMap);
  EXPECT_EQ(Defaulted->options().WindowSize, 25u);
  EXPECT_FALSE(Defaulted->options().LogEvents);
  EXPECT_EQ(Defaulted->concurrencyMode(), Concurrency::Auto);
  // ...while an explicit ContextOptions still wins.
  auto Explicit = Switch::makeContext<Map<int64_t, int64_t>>(
      "api:explicit", MapVariant::ChainedHashMap,
      SelectionRule::timeRule(), ContextOptions{}.windowSize(75));
  EXPECT_EQ(Explicit->options().WindowSize, 75u);
  EXPECT_EQ(Explicit->concurrencyMode(), Concurrency::None);
  Switch::configure(
      SwitchConfig{EngineOptions{}, Before, FleetOptions{}, std::string()});
}

TEST(SwitchApi, FluentOptionsConfigureTheAggregate) {
  ContextOptions Options = ContextOptions{}
                               .windowSize(50)
                               .finishedRatio(0.5)
                               .logEvents(false)
                               .wideRangeFactor(8.0);
  EXPECT_EQ(Options.WindowSize, 50u);
  EXPECT_DOUBLE_EQ(Options.FinishedRatio, 0.5);
  EXPECT_FALSE(Options.LogEvents);
  EXPECT_DOUBLE_EQ(Options.WideRangeFactor, 8.0);

  auto Ctx = Switch::makeContext<List<int64_t>>(
      "api:fluent", ListVariant::ArrayList, SelectionRule::timeRule(),
      Options);
  EXPECT_EQ(Ctx->options().WindowSize, 50u);
  EXPECT_FALSE(Ctx->options().LogEvents);
}

TEST(SwitchApi, TelemetryMatchesEngineStatsExactly) {
  auto A = Switch::makeContext<List<int64_t>>(
      "api:tele-a", ListVariant::ArrayList, SelectionRule::timeRule(),
      ContextOptions{}.windowSize(10).logEvents(false));
  auto B = Switch::makeContext<Set<int64_t>>(
      "api:tele-b", SetVariant::ChainedHashSet, SelectionRule::timeRule(),
      ContextOptions{}.windowSize(10).logEvents(false));
  lookupHeavyWorkload(*A, 12);
  for (int I = 0; I != 5; ++I) {
    Set<int64_t> S = B->createSet();
    S.add(I);
  }
  SwitchEngine::global().evaluateAll();

  TelemetrySnapshot T = Switch::telemetry();
  EngineStats S = Switch::stats();
  EXPECT_TRUE(T.Engine == S);

  // The per-context rows sum to the aggregate of the same snapshot.
  EngineStats Sum;
  for (const ContextSnapshot &C : T.Contexts)
    Sum += C.Stats;
  EXPECT_TRUE(T.Engine == Sum);

  // Our contexts appear with their abstraction and live variant names.
  bool SawA = false, SawB = false;
  for (const ContextSnapshot &C : T.Contexts) {
    if (C.Name == "api:tele-a") {
      SawA = true;
      EXPECT_EQ(C.Abstraction, "list");
      EXPECT_FALSE(C.Variant.empty());
      EXPECT_EQ(C.Stats.InstancesCreated, 12u);
      EXPECT_GT(C.FootprintBytes, 0u);
    }
    if (C.Name == "api:tele-b") {
      SawB = true;
      EXPECT_EQ(C.Abstraction, "set");
      EXPECT_EQ(C.Stats.InstancesCreated, 5u);
    }
  }
  EXPECT_TRUE(SawA);
  EXPECT_TRUE(SawB);
  EXPECT_EQ(T.Events.Recorded, EventLog::global().totalRecorded());
}

TEST(SwitchApi, TelemetryJsonRoundTripsEngineStats) {
  auto Ctx = Switch::makeContext<List<int64_t>>(
      "api:json", ListVariant::ArrayList, SelectionRule::timeRule(),
      ContextOptions{}.windowSize(10).logEvents(false));
  lookupHeavyWorkload(*Ctx, 12);
  SwitchEngine::global().evaluateAll();

  TelemetrySnapshot T = Switch::telemetry();
  EngineStats S = Switch::stats();
  std::string Json = toJson(T);

  // The engine object serializes first, so first-occurrence extraction
  // reads exactly the aggregate the engine reported.
  EXPECT_EQ(firstJsonField(Json, "contexts"), S.Contexts);
  EXPECT_EQ(firstJsonField(Json, "instances_created"), S.InstancesCreated);
  EXPECT_EQ(firstJsonField(Json, "instances_monitored"),
            S.InstancesMonitored);
  EXPECT_EQ(firstJsonField(Json, "profiles_published"),
            S.ProfilesPublished);
  EXPECT_EQ(firstJsonField(Json, "profiles_discarded"),
            S.ProfilesDiscarded);
  EXPECT_EQ(firstJsonField(Json, "evaluations"), S.Evaluations);
  EXPECT_EQ(firstJsonField(Json, "switches"), S.Switches);
  EXPECT_EQ(firstJsonField(Json, "recorded"), T.Events.Recorded);

  // CSV carries one row per context of the same snapshot, preceded by
  // the six `#` loss/store/fleet/tuning/latency-counter comment lines
  // and the column header.
  std::string Csv = toCsv(T);
  size_t Rows = 0;
  for (char C : Csv)
    Rows += C == '\n';
  EXPECT_EQ(Rows, T.Contexts.size() + 7);
}

TEST(SwitchApi, DrainEventsHarvestsTransitions) {
  Switch::drainEvents(); // discard earlier activity
  auto Ctx = Switch::makeContext<List<int64_t>>(
      "api:drain", ListVariant::ArrayList, SelectionRule::timeRule(),
      ContextOptions{}.windowSize(10).logEvents(true));
  lookupHeavyWorkload(*Ctx, 12);
  SwitchEngine::global().evaluateAll();
  bool SawTransition = false;
  for (const Event &E : Switch::drainEvents())
    if (E.Kind == EventKind::Transition && E.Context == "api:drain") {
      SawTransition = true;
      EXPECT_NE(E.Detail.find(" -> "), std::string::npos);
    }
  EXPECT_TRUE(SawTransition);
  EXPECT_TRUE(Switch::drainEvents().empty()); // consumed
}

TEST(SwitchApi, ReporterEmitsPeriodically) {
  SwitchEngine Engine;
  ListContext<int64_t> Ctx("api:reporter", ListVariant::ArrayList,
                           defaultModel(), SelectionRule::timeRule(),
                           ContextOptions{}.windowSize(10).logEvents(false));
  Engine.registerContext(&Ctx);
  std::atomic<uint64_t> SinkCalls{0};
  std::atomic<uint64_t> SeenContexts{0};
  ReporterOptions Options;
  Options.Interval = std::chrono::milliseconds(1);
  Options.Sink = [&SinkCalls, &SeenContexts](const TelemetrySnapshot &T) {
    SinkCalls.fetch_add(1);
    SeenContexts.store(T.Contexts.size());
  };
  Engine.setReporter(std::move(Options));
  EXPECT_EQ(Engine.reportsEmitted(), 0u);
  Engine.start(std::chrono::milliseconds(1));
  for (int Spin = 0; Spin != 500 && Engine.reportsEmitted() < 2; ++Spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  Engine.stop();
  EXPECT_GE(Engine.reportsEmitted(), 2u);
  EXPECT_EQ(SinkCalls.load(), Engine.reportsEmitted());
  EXPECT_EQ(SeenContexts.load(), 1u);

  // After clearReporter no further reports flow.
  Engine.clearReporter();
  uint64_t Before = Engine.reportsEmitted();
  Engine.start(std::chrono::milliseconds(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  Engine.stop();
  EXPECT_EQ(Engine.reportsEmitted(), Before);
  Engine.unregisterContext(&Ctx);
}

// TSan stress: telemetry snapshots raced against instance churn and the
// background evaluator — snapshots must stay internally consistent
// (aggregate == sum of rows) while everything moves underneath.
TEST(SwitchApi, ConcurrentTelemetryCaptureIsSafe) {
  SwitchEngine Engine;
  ListContext<int64_t> Ctx("api:tele-stress", ListVariant::ArrayList,
                           defaultModel(), SelectionRule::timeRule(),
                           ContextOptions{}.windowSize(50).logEvents(false));
  Engine.registerContext(&Ctx);
  Engine.start(std::chrono::milliseconds(1));
  std::atomic<bool> Stop{false};
  std::vector<std::thread> Workers;
  for (int T = 0; T != 2; ++T)
    Workers.emplace_back([&Ctx, &Stop] {
      while (!Stop.load(std::memory_order_relaxed)) {
        List<int64_t> L = Ctx.createList();
        for (int64_t V = 0; V != 32; ++V)
          L.add(V);
        (void)L.contains(7);
      }
    });
  for (int I = 0; I != 50; ++I) {
    TelemetrySnapshot T = Engine.telemetry();
    EngineStats Sum;
    for (const ContextSnapshot &C : T.Contexts)
      Sum += C.Stats;
    EXPECT_EQ(T.Engine.Contexts, 1u);
    EXPECT_TRUE(T.Engine == Sum);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  Stop.store(true);
  for (std::thread &W : Workers)
    W.join();
  Engine.stop();
  Engine.unregisterContext(&Ctx);
}

} // namespace
