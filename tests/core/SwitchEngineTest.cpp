//===- SwitchEngineTest.cpp - Engine and top-level API tests ------------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//

#include "core/Switch.h"
#include "model/DefaultModel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

using namespace cswitch;

namespace {

std::shared_ptr<const PerformanceModel> defaultModel() {
  static auto Model =
      std::make_shared<const PerformanceModel>(defaultPerformanceModel());
  return Model;
}

ContextOptions quietOptions(size_t Window = 10) {
  ContextOptions Options;
  Options.WindowSize = Window;
  Options.FinishedRatio = 0.6;
  Options.LogEvents = false;
  return Options;
}

void lookupHeavyWorkload(ListContext<int64_t> &Ctx, int Instances) {
  for (int I = 0; I != Instances; ++I) {
    List<int64_t> L = Ctx.createList();
    for (int64_t V = 0; V != 400; ++V)
      L.add(V);
    for (int64_t V = 0; V != 2000; ++V)
      (void)L.contains(V);
  }
}

TEST(SwitchEngine, RegisterEvaluateUnregister) {
  SwitchEngine Engine;
  ListContext<int64_t> Ctx("e:reg", ListVariant::ArrayList,
                           defaultModel(), SelectionRule::timeRule(),
                           quietOptions());
  Engine.registerContext(&Ctx);
  EXPECT_EQ(Engine.contextCount(), 1u);
  lookupHeavyWorkload(Ctx, 10);
  EXPECT_EQ(Engine.evaluateAll(), 1u);
  EXPECT_EQ(Engine.totalSwitches(), 1u);
  Engine.unregisterContext(&Ctx);
  EXPECT_EQ(Engine.contextCount(), 0u);
  EXPECT_EQ(Engine.totalSwitches(), 0u);
}

TEST(SwitchEngine, EvaluateAllCountsTransitionsAcrossContexts) {
  SwitchEngine Engine;
  ListContext<int64_t> A("e:a", ListVariant::ArrayList, defaultModel(),
                         SelectionRule::timeRule(), quietOptions());
  ListContext<int64_t> B("e:b", ListVariant::ArrayList, defaultModel(),
                         SelectionRule::timeRule(), quietOptions());
  Engine.registerContext(&A);
  Engine.registerContext(&B);
  lookupHeavyWorkload(A, 10);
  // B gets no workload: evaluates to nothing.
  EXPECT_EQ(Engine.evaluateAll(), 1u);
  Engine.unregisterContext(&A);
  Engine.unregisterContext(&B);
}

TEST(SwitchEngine, UnregisterUnknownContextIsNoop) {
  SwitchEngine Engine;
  ListContext<int64_t> Ctx("e:unknown", ListVariant::ArrayList,
                           defaultModel(), SelectionRule::timeRule(),
                           quietOptions());
  Engine.unregisterContext(&Ctx); // never registered.
  EXPECT_EQ(Engine.contextCount(), 0u);
}

TEST(SwitchEngine, BackgroundThreadEvaluatesPeriodically) {
  SwitchEngine Engine;
  ListContext<int64_t> Ctx("e:bg", ListVariant::ArrayList,
                           defaultModel(), SelectionRule::timeRule(),
                           quietOptions());
  Engine.registerContext(&Ctx);
  lookupHeavyWorkload(Ctx, 10);
  Engine.start(std::chrono::milliseconds(5));
  EXPECT_TRUE(Engine.isRunning());
  // The paper's monitoring-rate task should pick the transition up.
  for (int Spin = 0; Spin != 200 && Ctx.switchCount() == 0; ++Spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  Engine.stop();
  EXPECT_FALSE(Engine.isRunning());
  EXPECT_EQ(Ctx.switchCount(), 1u);
  Engine.unregisterContext(&Ctx);
}

TEST(SwitchEngine, StartTwiceAndStopTwiceAreSafe) {
  SwitchEngine Engine;
  Engine.start(std::chrono::milliseconds(10));
  Engine.start(std::chrono::milliseconds(10));
  EXPECT_TRUE(Engine.isRunning());
  Engine.stop();
  Engine.stop();
  EXPECT_FALSE(Engine.isRunning());
}

TEST(SwitchEngine, ConcurrentCreationWhileEvaluating) {
  SwitchEngine Engine;
  ListContext<int64_t> Ctx("e:conc", ListVariant::ArrayList,
                           defaultModel(), SelectionRule::timeRule(),
                           quietOptions(50));
  Engine.registerContext(&Ctx);
  Engine.start(std::chrono::milliseconds(1));
  std::atomic<bool> Stop{false};
  std::vector<std::thread> Workers;
  for (int T = 0; T != 4; ++T) {
    Workers.emplace_back([&Ctx, &Stop] {
      while (!Stop.load(std::memory_order_relaxed)) {
        List<int64_t> L = Ctx.createList();
        for (int64_t V = 0; V != 64; ++V)
          L.add(V);
        for (int64_t V = 0; V != 128; ++V)
          (void)L.contains(V);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  Stop.store(true);
  for (std::thread &W : Workers)
    W.join();
  Engine.stop();
  Engine.unregisterContext(&Ctx);
  EXPECT_GT(Ctx.instancesCreated(), 100u);
  EXPECT_GT(Ctx.evaluationCount(), 0u);
}

TEST(SwitchApi, GlobalModelIsSharedAndReplaceable) {
  std::shared_ptr<const PerformanceModel> Before = Switch::model();
  ASSERT_NE(Before, nullptr);
  auto Custom = std::make_shared<const PerformanceModel>();
  Switch::setModel(Custom);
  EXPECT_EQ(Switch::model(), Custom);
  Switch::setModel(Before);
}

TEST(SwitchApi, ContextHandlesAutoUnregister) {
  size_t Before = SwitchEngine::global().contextCount();
  {
    auto Ctx = Switch::makeContext<Set<int64_t>>(
        "api:set", SetVariant::ChainedHashSet);
    EXPECT_EQ(SwitchEngine::global().contextCount(), Before + 1);
    Set<int64_t> S = Ctx->createSet();
    S.add(1);
  }
  EXPECT_EQ(SwitchEngine::global().contextCount(), Before);
}

} // namespace
