//===- SiteMacrosTest.cpp - Static-context macro tests -----------------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//

#include "core/SiteMacros.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

using namespace cswitch;

namespace {

List<int64_t> makeSiteList() {
  return CSWITCH_LIST(int64_t, ListVariant::ArrayList);
}

TEST(SiteMacros, CreatesWorkingCollections) {
  List<int64_t> L = CSWITCH_LIST(int64_t, ListVariant::ArrayList);
  L.add(1);
  L.add(2);
  EXPECT_EQ(L.size(), 2u);

  Set<int64_t> S = CSWITCH_SET(int64_t, SetVariant::ChainedHashSet);
  EXPECT_TRUE(S.add(7));
  EXPECT_TRUE(S.contains(7));

  auto M = CSWITCH_MAP(int64_t, int64_t, MapVariant::ChainedHashMap);
  M.put(1, 10);
  ASSERT_NE(M.get(1), nullptr);
  EXPECT_EQ(*M.get(1), 10);
}

TEST(SiteMacros, OneStaticContextPerSite) {
  size_t Before = SwitchEngine::global().contextCount();
  // Two calls through the same expansion point share one context...
  List<int64_t> A = makeSiteList();
  List<int64_t> B = makeSiteList();
  size_t AfterSame = SwitchEngine::global().contextCount();
  EXPECT_EQ(AfterSame, Before + (Before == AfterSame ? 0 : 1));
  // ...and both instances are monitored by it (first two window slots).
  EXPECT_TRUE(A.isMonitored());
  EXPECT_TRUE(B.isMonitored());
}

TEST(SiteMacros, DistinctSitesGetDistinctContexts) {
  size_t Before = SwitchEngine::global().contextCount();
  {
    List<int64_t> A = CSWITCH_LIST(int64_t, ListVariant::ArrayList);
    List<int64_t> B = CSWITCH_LIST(int64_t, ListVariant::LinkedList);
    EXPECT_EQ(A.variant(), ListVariant::ArrayList);
    EXPECT_EQ(B.variant(), ListVariant::LinkedList);
  }
  // Two new sites registered (statics persist after scope exit).
  EXPECT_EQ(SwitchEngine::global().contextCount(), Before + 2);
}

TEST(SiteMacros, SiteNameEncodesFileAndLine) {
  std::string Name = CSWITCH_SITE_NAME;
  EXPECT_NE(Name.find("SiteMacrosTest.cpp"), std::string::npos);
  EXPECT_NE(Name.find(':'), std::string::npos);
}

TEST(SiteMacros, ConcurrentFirstUseIsSafe) {
  // C++11 magic statics: concurrent first execution of the expansion
  // must initialize exactly one context.
  std::vector<std::thread> Workers;
  std::atomic<uint64_t> Total{0};
  for (int T = 0; T != 4; ++T) {
    Workers.emplace_back([&Total] {
      for (int I = 0; I != 200; ++I) {
        Set<int64_t> S = CSWITCH_SET(int64_t, SetVariant::OpenHashSet);
        S.add(I);
        Total.fetch_add(S.size(), std::memory_order_relaxed);
      }
    });
  }
  for (std::thread &W : Workers)
    W.join();
  EXPECT_EQ(Total.load(), 4u * 200u);
}

} // namespace
