//===- WarmStartTest.cpp - Cross-run warm-start tests ---------------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
//
// End-to-end tests of the warm-start path: a context created with
// ContextOptions::warmStart seeds its initial variant from the
// persisted decision and shrinks its observation window; a store miss
// or a corrupt store leaves it exactly cold; the engine's
// loadStore/persistStore cycle carries a context's converged selection
// across "runs"; and the Switch facade exposes the same wiring.
//
//===----------------------------------------------------------------------===//

#include "core/Switch.h"
#include "core/SwitchEngine.h"
#include "model/DefaultModel.h"
#include "store/SelectionStore.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

using namespace cswitch;

namespace {

std::shared_ptr<const PerformanceModel> defaultModel() {
  static auto Model =
      std::make_shared<const PerformanceModel>(defaultPerformanceModel());
  return Model;
}

std::string tempStorePath(const char *Tag) {
  return ::testing::TempDir() + "/cswitch_warmstart_" + Tag +
         ".cswitchstore";
}

/// Writes a one-site store document seeding \p Decision for \p Name
/// under Rtime/List.
void writeSeedStore(const std::string &Path, const std::string &Name,
                    unsigned Decision) {
  StoreSite S;
  S.Name = Name;
  S.Rule = "Rtime";
  S.Kind = AbstractionKind::List;
  S.Decision = Decision;
  S.Runs = 2;
  S.Instances = 50;
  S.MaxSize = 1000;
  S.Counts[static_cast<size_t>(OperationKind::Contains)] = 5000;
  ASSERT_TRUE(writeStoreToFile(Path, {S}));
}

TEST(WarmStart, SeedsVariantAndShrinksWindow) {
  std::string Path = tempStorePath("seed");
  writeSeedStore(Path, "warm:seeded", 1);
  SelectionStore Store;
  ASSERT_TRUE(Store.load(Path));

  ContextOptions Options;
  Options.WindowSize = 100;
  Options.LogEvents = false;
  Options.WarmStart = true;
  Options.Store = &Store;
  ListContext<int64_t> Ctx("warm:seeded", ListVariant::ArrayList,
                           defaultModel(), SelectionRule::timeRule(),
                           Options);
  EXPECT_TRUE(Ctx.warmStarted());
  EXPECT_EQ(Ctx.currentVariantIndex(), 1u);
  // WarmWindowFactor 0.25 shrinks the first observation ramp.
  EXPECT_EQ(Ctx.options().WindowSize, 25u);
  EXPECT_EQ(Store.stats().WarmStarts, 1u);
  std::remove(Path.c_str());
}

TEST(WarmStart, StoreMissLeavesTheContextCold) {
  SelectionStore Store; // Nothing loaded: every lookup misses.
  ContextOptions Options;
  Options.WindowSize = 100;
  Options.LogEvents = false;
  Options.WarmStart = true;
  Options.Store = &Store;
  ListContext<int64_t> Ctx("warm:miss", ListVariant::ArrayList,
                           defaultModel(), SelectionRule::timeRule(),
                           Options);
  EXPECT_FALSE(Ctx.warmStarted());
  EXPECT_EQ(Ctx.currentVariantIndex(),
            static_cast<unsigned>(ListVariant::ArrayList));
  EXPECT_EQ(Ctx.options().WindowSize, 100u);
  EXPECT_EQ(Store.stats().WarmStarts, 0u);
}

TEST(WarmStart, RuleMismatchIsAMiss) {
  // A decision converged under Rtime must not seed an Ralloc context.
  std::string Path = tempStorePath("rule_miss");
  writeSeedStore(Path, "warm:rule", 1);
  SelectionStore Store;
  ASSERT_TRUE(Store.load(Path));

  ContextOptions Options;
  Options.LogEvents = false;
  Options.WarmStart = true;
  Options.Store = &Store;
  ListContext<int64_t> Ctx("warm:rule", ListVariant::ArrayList,
                           defaultModel(), SelectionRule::allocRule(),
                           Options);
  EXPECT_FALSE(Ctx.warmStarted());
  std::remove(Path.c_str());
}

TEST(WarmStart, CorruptStoreLeavesTheContextCold) {
  std::string Path = tempStorePath("corrupt");
  {
    std::ofstream OS(Path, std::ios::binary);
    OS << "cswitch-store-v1\x01\x02 torn";
  }
  SelectionStore Store;
  EXPECT_FALSE(Store.load(Path));

  ContextOptions Options;
  Options.LogEvents = false;
  Options.WarmStart = true;
  Options.Store = &Store;
  ListContext<int64_t> Ctx("warm:corrupt", ListVariant::ArrayList,
                           defaultModel(), SelectionRule::timeRule(),
                           Options);
  EXPECT_FALSE(Ctx.warmStarted());
  EXPECT_EQ(Ctx.options().WindowSize, 100u);
  EXPECT_EQ(Store.stats().LoadFailures, 1u);
  std::remove(Path.c_str());
}

TEST(WarmStart, EngineCarriesSelectionsAcrossRuns) {
  std::string Path = tempStorePath("engine");
  std::remove(Path.c_str());

  // "Run 1": a context lives, analyzes a window, and unregisters; the
  // engine folds its lifetime aggregate into the store and persists.
  {
    SwitchEngine Engine;
    ASSERT_TRUE(Engine.loadStore(Path));
    ContextOptions Options;
    Options.WindowSize = 10;
    Options.FinishedRatio = 0.6;
    Options.LogEvents = false;
    ListContext<int64_t> Ctx("engine:site", ListVariant::ArrayList,
                             defaultModel(), SelectionRule::timeRule(),
                             Options);
    Engine.registerContext(&Ctx);
    for (int I = 0; I != 10; ++I) {
      List<int64_t> L = Ctx.createList();
      for (int64_t V = 0; V != 50; ++V)
        L.add(V);
      for (int64_t V = 0; V != 100; ++V)
        (void)L.contains(V);
    }
    Ctx.evaluate();
    Engine.unregisterContext(&Ctx);
    ASSERT_TRUE(Engine.persistStore());

    TelemetrySnapshot Snapshot = Engine.telemetry();
    EXPECT_EQ(Snapshot.Store.Loads, 1u);
    EXPECT_GE(Snapshot.Store.Persists, 1u);
    Engine.closeStore();
  }

  // "Run 2": the persisted decision is found and seeds a warm context.
  {
    SwitchEngine Engine;
    ASSERT_TRUE(Engine.loadStore(Path));
    std::shared_ptr<SelectionStore> Store = Engine.store();
    ASSERT_NE(Store, nullptr);
    auto Site =
        Store->lookup("engine:site", "Rtime", AbstractionKind::List);
    ASSERT_TRUE(Site.has_value());
    EXPECT_GT(Site->Instances, 0u);
    EXPECT_GT(Site->Counts[static_cast<size_t>(OperationKind::Contains)],
              0u);

    ContextOptions Options;
    Options.WindowSize = 10;
    Options.LogEvents = false;
    Options.WarmStart = true;
    Options.Store = Store.get();
    ListContext<int64_t> Ctx("engine:site", ListVariant::ArrayList,
                             defaultModel(), SelectionRule::timeRule(),
                             Options);
    EXPECT_TRUE(Ctx.warmStarted());
    EXPECT_EQ(Ctx.currentVariantIndex(), Site->Decision);
    Engine.closeStore();
  }
  std::remove(Path.c_str());
  std::remove((Path + ".lock").c_str());
}

TEST(WarmStart, LiveContextsPersistWithoutUnregistering) {
  std::string Path = tempStorePath("live");
  std::remove(Path.c_str());

  SwitchEngine Engine;
  ASSERT_TRUE(Engine.loadStore(Path));
  ContextOptions Options;
  Options.WindowSize = 10;
  Options.FinishedRatio = 0.6;
  Options.LogEvents = false;
  ListContext<int64_t> Ctx("live:site", ListVariant::ArrayList,
                           defaultModel(), SelectionRule::timeRule(),
                           Options);
  Engine.registerContext(&Ctx);
  for (int I = 0; I != 10; ++I) {
    List<int64_t> L = Ctx.createList();
    for (int64_t V = 0; V != 20; ++V)
      L.add(V);
  }
  Ctx.evaluate();
  ASSERT_TRUE(Engine.persistStore()); // Context still registered.
  Engine.unregisterContext(&Ctx);

  SelectionStore Reader;
  ASSERT_TRUE(Reader.load(Path));
  EXPECT_TRUE(
      Reader.lookup("live:site", "Rtime", AbstractionKind::List)
          .has_value());
  std::remove(Path.c_str());
  std::remove((Path + ".lock").c_str());
}

TEST(WarmStart, SwitchFacadeRoundTrips) {
  std::string Path = tempStorePath("facade");
  std::remove(Path.c_str());
  ASSERT_TRUE(Switch::loadStore(Path));
  EXPECT_NE(Switch::store(), nullptr);
  EXPECT_TRUE(Switch::persistStore());
  Switch::closeStore();
  EXPECT_EQ(Switch::store(), nullptr);
  std::remove(Path.c_str());
  std::remove((Path + ".lock").c_str());
}

} // namespace
