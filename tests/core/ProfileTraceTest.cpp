//===- ProfileTraceTest.cpp - Trace persistence tests ------------------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//

#include "core/ProfileTrace.h"
#include "model/DefaultModel.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

using namespace cswitch;

namespace {

WorkloadProfile sampleProfile(uint64_t Seed) {
  WorkloadProfile P;
  P.record(OperationKind::Populate, 10 + Seed);
  P.record(OperationKind::Contains, 100 * Seed);
  P.record(OperationKind::Remove, Seed % 3);
  P.recordSize(10 + Seed);
  return P;
}

TEST(ProfileTrace, RoundTripsSitesAndProfiles) {
  ProfileAggregator SetSite("App.cpp:10", AbstractionKind::Set,
                            static_cast<unsigned>(SetVariant::ChainedHashSet));
  ProfileAggregator MapSite("App.cpp:20 with spaces", AbstractionKind::Map,
                            static_cast<unsigned>(MapVariant::ArrayMap));
  for (uint64_t I = 1; I <= 5; ++I)
    SetSite.onInstanceFinished(0, sampleProfile(I));
  MapSite.onInstanceFinished(0, sampleProfile(9));

  std::ostringstream OS;
  saveTrace(OS, {&SetSite, &MapSite});

  std::vector<SiteTrace> Loaded;
  std::istringstream IS(OS.str());
  ASSERT_TRUE(loadTrace(IS, Loaded));
  ASSERT_EQ(Loaded.size(), 2u);
  EXPECT_EQ(Loaded[0].Site, "App.cpp:10");
  EXPECT_EQ(Loaded[0].Kind, AbstractionKind::Set);
  EXPECT_EQ(Loaded[0].DeclaredVariantIndex,
            static_cast<unsigned>(SetVariant::ChainedHashSet));
  ASSERT_EQ(Loaded[0].Profiles.size(), 5u);
  EXPECT_EQ(Loaded[0].Profiles[0], sampleProfile(1));
  EXPECT_EQ(Loaded[0].Profiles[4], sampleProfile(5));
  EXPECT_EQ(Loaded[1].Site, "App.cpp:20 with spaces");
  ASSERT_EQ(Loaded[1].Profiles.size(), 1u);
  EXPECT_EQ(Loaded[1].Profiles[0], sampleProfile(9));
}

TEST(ProfileTrace, FileRoundTrip) {
  std::string Path = ::testing::TempDir() + "/cswitch_trace_test.txt";
  ProfileAggregator Site("F.cpp:1", AbstractionKind::List,
                         static_cast<unsigned>(ListVariant::ArrayList));
  Site.onInstanceFinished(0, sampleProfile(3));
  ASSERT_TRUE(saveTraceToFile(Path, {&Site}));
  std::vector<SiteTrace> Loaded;
  ASSERT_TRUE(loadTraceFromFile(Path, Loaded));
  ASSERT_EQ(Loaded.size(), 1u);
  EXPECT_EQ(Loaded[0].Profiles[0], sampleProfile(3));
  std::remove(Path.c_str());
}

TEST(ProfileTrace, RejectsMalformedDocuments) {
  for (const char *Bad :
       {"", "wrong header\n",
        "cswitch-profile-trace v1\nprofile 1 1 1 1 1 1 1\n", // before site
        "cswitch-profile-trace v1\nsite bogus ArrayList a\n",
        "cswitch-profile-trace v1\nsite list Bogus a\n",
        "cswitch-profile-trace v1\nsite list ArrayList\n", // no name
        "cswitch-profile-trace v1\nsite list ArrayList a\nprofile 1 2\n",
        "cswitch-profile-trace v1\nunknown line\n"}) {
    std::vector<SiteTrace> Out;
    std::istringstream IS(Bad);
    EXPECT_FALSE(loadTrace(IS, Out)) << Bad;
  }
}

TEST(ProfileTrace, RejectsTruncatedProfileLines) {
  // Every way a profile line can end early: too few counts, a count cut
  // mid-token into garbage, and a missing max-size.
  const std::string Prefix =
      "cswitch-profile-trace v1\nsite set ChainedHashSet S.cpp:1\n";
  for (const char *Bad :
       {"profile\n",                    // no max size
        "profile 10\n",                 // no counts at all
        "profile 10 1 2 3 4 5\n",       // five of six counts
        "profile 10 1 2 3 4 5 x\n",     // last count is not a number
        "profile ten 1 2 3 4 5 6\n"}) { // max size is not a number
    std::vector<SiteTrace> Out;
    std::istringstream IS(Prefix + Bad);
    EXPECT_FALSE(loadTrace(IS, Out)) << Bad;
  }
}

TEST(ProfileTrace, RejectsDocumentTruncatedMidHeader) {
  // A partially-written file that lost the end of its header line.
  for (const char *Bad : {"cswitch-profile", "cswitch-profile-trace v"}) {
    std::vector<SiteTrace> Out;
    std::istringstream IS(Bad);
    EXPECT_FALSE(loadTrace(IS, Out)) << Bad;
  }
}

TEST(ProfileTrace, SkipsCommentsAndBlankLines) {
  std::vector<SiteTrace> Out;
  std::istringstream IS("cswitch-profile-trace v1\n"
                        "# produced by a test\n"
                        "\n"
                        "site list ArrayList L.cpp:1\n"
                        "# mid-document comment\n"
                        "profile 4 1 0 2 0 0 0\n");
  ASSERT_TRUE(loadTrace(IS, Out));
  ASSERT_EQ(Out.size(), 1u);
  ASSERT_EQ(Out[0].Profiles.size(), 1u);
  EXPECT_EQ(Out[0].Profiles[0].MaxSize, 4u);
}

TEST(ProfileTrace, FailureLeavesNoPartialSiteBehindTheError) {
  // A good site followed by a corrupt line: the parse fails as a whole;
  // callers must not use Out (documented contract), but the good prefix
  // having been appended must not crash or loop.
  std::vector<SiteTrace> Out;
  std::istringstream IS("cswitch-profile-trace v1\n"
                        "site list ArrayList good.cpp:1\n"
                        "profile 2 1 1 1 1 1 1\n"
                        "site bogus Bogus bad.cpp:2\n");
  EXPECT_FALSE(loadTrace(IS, Out));
}

TEST(ProfileTrace, HeaderOnlyIsEmptyTrace) {
  std::vector<SiteTrace> Out;
  std::istringstream IS("cswitch-profile-trace v1\n");
  ASSERT_TRUE(loadTrace(IS, Out));
  EXPECT_TRUE(Out.empty());
}

TEST(ProfileTrace, LoadedTraceAdvisesLikeLiveAggregator) {
  PerformanceModel Model = defaultPerformanceModel();
  ProfileAggregator Live("S.cpp:7", AbstractionKind::Set,
                         static_cast<unsigned>(SetVariant::ChainedHashSet));
  for (uint64_t I = 1; I <= 8; ++I) {
    WorkloadProfile P;
    P.record(OperationKind::Populate, 300);
    P.record(OperationKind::Contains, 2000);
    P.recordSize(300);
    Live.onInstanceFinished(0, P);
  }
  std::vector<SiteRecommendation> Direct =
      adviseOffline({&Live}, Model, SelectionRule::timeRule());

  std::ostringstream OS;
  saveTrace(OS, {&Live});
  std::vector<SiteTrace> Loaded;
  std::istringstream IS(OS.str());
  ASSERT_TRUE(loadTrace(IS, Loaded));
  std::vector<SiteRecommendation> ViaTrace =
      adviseOffline(Loaded, Model, SelectionRule::timeRule());

  ASSERT_EQ(Direct.size(), ViaTrace.size());
  ASSERT_TRUE(Direct[0].RecommendedVariantIndex.has_value());
  ASSERT_TRUE(ViaTrace[0].RecommendedVariantIndex.has_value());
  EXPECT_EQ(*Direct[0].RecommendedVariantIndex,
            *ViaTrace[0].RecommendedVariantIndex);
  EXPECT_EQ(Direct[0].Site, ViaTrace[0].Site);
}

} // namespace
