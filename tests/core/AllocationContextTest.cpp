//===- AllocationContextTest.cpp - Allocation context tests ------------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests of the allocation-site adaptation machinery (paper §3.1, §4.3):
/// window-based monitoring, the finished-ratio gate, total-cost-driven
/// switching, the adaptive-variant eligibility gate, and round isolation.
///
//===----------------------------------------------------------------------===//

#include "core/AllocationContext.h"
#include "model/DefaultModel.h"

#include <gtest/gtest.h>

#include <optional>
#include <vector>

using namespace cswitch;

namespace {

std::shared_ptr<const PerformanceModel> defaultModel() {
  static auto Model =
      std::make_shared<const PerformanceModel>(defaultPerformanceModel());
  return Model;
}

ContextOptions quietOptions(size_t Window = 10, double Ratio = 0.6) {
  ContextOptions Options;
  Options.WindowSize = Window;
  Options.FinishedRatio = Ratio;
  Options.LogEvents = false;
  return Options;
}

/// Runs N instances through the context with the given per-instance
/// workload.
template <typename ContextT, typename Fn>
void runInstances(ContextT &Ctx, int N, Fn &&Workload) {
  for (int I = 0; I != N; ++I) {
    auto Collection = Ctx.createList();
    Workload(Collection);
  }
}

TEST(AllocationContext, MonitorsExactlyWindowSize) {
  ListContext<int64_t> Ctx("t:window", ListVariant::ArrayList,
                           defaultModel(), SelectionRule::timeRule(),
                           quietOptions(5));
  std::vector<List<int64_t>> Held;
  for (int I = 0; I != 12; ++I)
    Held.push_back(Ctx.createList());
  int Monitored = 0;
  for (const List<int64_t> &L : Held)
    Monitored += L.isMonitored();
  EXPECT_EQ(Monitored, 5);
  EXPECT_EQ(Ctx.instancesCreated(), 12u);
  EXPECT_EQ(Ctx.instancesMonitored(), 5u);
}

TEST(AllocationContext, EvaluateNeedsFinishedRatio) {
  ListContext<int64_t> Ctx("t:ratio", ListVariant::ArrayList,
                           defaultModel(), SelectionRule::timeRule(),
                           quietOptions(10, 0.6));
  // Keep 5 of 10 monitored instances alive: 50% finished < 60% ratio.
  std::vector<List<int64_t>> Alive;
  for (int I = 0; I != 10; ++I) {
    List<int64_t> L = Ctx.createList();
    for (int64_t V = 0; V != 300; ++V)
      L.add(V);
    for (int64_t V = 0; V != 500; ++V)
      (void)L.contains(V);
    if (I % 2 == 0)
      Alive.push_back(std::move(L));
  }
  EXPECT_FALSE(Ctx.evaluate());
  EXPECT_EQ(Ctx.evaluationCount(), 0u);
  // Finish one more: 60% reached.
  Alive.pop_back();
  EXPECT_TRUE(Ctx.evaluate());
  EXPECT_EQ(Ctx.evaluationCount(), 1u);
}

TEST(AllocationContext, EmptyContextNeverEvaluates) {
  ListContext<int64_t> Ctx("t:empty", ListVariant::ArrayList,
                           defaultModel(), SelectionRule::timeRule(),
                           quietOptions());
  EXPECT_FALSE(Ctx.evaluate());
  EXPECT_EQ(Ctx.evaluationCount(), 0u);
}

TEST(AllocationContext, SwitchesToHashForLookupHeavyLists) {
  ListContext<int64_t> Ctx("t:lookup", ListVariant::ArrayList,
                           defaultModel(), SelectionRule::timeRule(),
                           quietOptions());
  runInstances(Ctx, 10, [](List<int64_t> &L) {
    for (int64_t I = 0; I != 400; ++I)
      L.add(I);
    for (int64_t I = 0; I != 2000; ++I)
      (void)L.contains(I);
  });
  EXPECT_TRUE(Ctx.evaluate());
  EXPECT_EQ(Ctx.currentVariant().name(), "HashArrayList");
  EXPECT_EQ(Ctx.switchCount(), 1u);
}

TEST(AllocationContext, KeepsArrayListForAppendIterateWorkloads) {
  ListContext<int64_t> Ctx("t:append", ListVariant::ArrayList,
                           defaultModel(), SelectionRule::timeRule(),
                           quietOptions());
  runInstances(Ctx, 10, [](List<int64_t> &L) {
    for (int64_t I = 0; I != 200; ++I)
      L.add(I);
    for (int I = 0; I != 5; ++I)
      L.forEach([](const int64_t &) {});
  });
  EXPECT_FALSE(Ctx.evaluate());
  EXPECT_EQ(Ctx.currentVariantIndex(),
            static_cast<unsigned>(ListVariant::ArrayList));
}

TEST(AllocationContext, LinkedListIndexWorkloadMovesToArrayList) {
  // The paper's bloat finding (Table 6 Rtime: LL -> AL).
  ListContext<int64_t> Ctx("t:index", ListVariant::LinkedList,
                           defaultModel(), SelectionRule::timeRule(),
                           quietOptions());
  runInstances(Ctx, 10, [](List<int64_t> &L) {
    for (int64_t I = 0; I != 200; ++I)
      L.add(I);
    for (size_t I = 0; I != 600; ++I)
      (void)L.get(I % 200);
  });
  EXPECT_TRUE(Ctx.evaluate());
  EXPECT_EQ(Ctx.currentVariant().name(), "ArrayList");
}

TEST(AllocationContext, SetContextSwitchesChainedToOpenHash) {
  SetContext<int64_t> Ctx("t:set", SetVariant::ChainedHashSet,
                          defaultModel(), SelectionRule::timeRule(),
                          quietOptions());
  for (int I = 0; I != 10; ++I) {
    Set<int64_t> S = Ctx.createSet();
    for (int64_t V = 0; V != 300; ++V)
      S.add(V);
    for (int64_t V = 0; V != 1500; ++V)
      (void)S.contains(V % 600);
  }
  EXPECT_TRUE(Ctx.evaluate());
  EXPECT_EQ(Ctx.currentVariant().name(), "OpenHashSet");
}

TEST(AllocationContext, MapContextUnderRallocPrefersCompactVariants) {
  MapContext<int64_t, int64_t> Ctx("t:map", MapVariant::ChainedHashMap,
                                   defaultModel(),
                                   SelectionRule::allocRule(),
                                   quietOptions());
  for (int I = 0; I != 10; ++I) {
    Map<int64_t, int64_t> M = Ctx.createMap();
    for (int64_t V = 0; V != 200; ++V)
      M.put(V, V);
    for (int64_t V = 0; V != 400; ++V)
      (void)M.get(V % 400);
  }
  EXPECT_TRUE(Ctx.evaluate());
  // ChainedHashMap allocates 70 B/op in the default model; both
  // CompactHashMap (34) and AdaptiveMap (45, if eligible) qualify, and
  // the lowest-alloc eligible candidate must win.
  EXPECT_EQ(Ctx.currentVariant().name(), "CompactHashMap");
}

TEST(AllocationContext, AdaptiveGateRequiresWideSizeRange) {
  // All instances the same small size: adaptive variants are not
  // eligible candidates (§3.2), even when their model costs are low.
  SetContext<int64_t> Narrow("t:narrow", SetVariant::ChainedHashSet,
                             defaultModel(), SelectionRule::allocRule(),
                             quietOptions());
  for (int I = 0; I != 10; ++I) {
    Set<int64_t> S = Narrow.createSet();
    for (int64_t V = 0; V != 20; ++V)
      S.add(V);
    for (int64_t V = 0; V != 40; ++V)
      (void)S.contains(V);
  }
  EXPECT_TRUE(Narrow.evaluate());
  EXPECT_NE(Narrow.currentVariant().name(), "AdaptiveSet");

  // Wide-ranging sizes straddling the adaptive threshold (40): the
  // adaptive variant becomes eligible and wins on allocation.
  SetContext<int64_t> Wide("t:wide", SetVariant::ChainedHashSet,
                           defaultModel(), SelectionRule::allocRule(),
                           quietOptions());
  for (int I = 0; I != 10; ++I) {
    Set<int64_t> S = Wide.createSet();
    int64_t Size = I % 2 == 0 ? 10 : 200;
    for (int64_t V = 0; V != Size; ++V)
      S.add(V);
    for (int64_t V = 0; V != 100; ++V)
      (void)S.contains(V);
  }
  EXPECT_TRUE(Wide.evaluate());
  // CompactHashSet (22 B/op) still beats AdaptiveSet (30 B/op) on pure
  // allocation, so check eligibility via a rule preferring adaptive:
  // with alloc 22 vs 30 both < 0.8 * 60; Compact wins the primary
  // criterion. The gate itself is observable through the Narrow case
  // above plus the different candidate sets; assert the switch happened
  // to an alloc-improving variant.
  std::string Name = Wide.currentVariant().name();
  EXPECT_TRUE(Name == "CompactHashSet" || Name == "AdaptiveSet" ||
              Name == "SortedArraySet")
      << Name;
}

TEST(AllocationContext, ImpossibleRuleEvaluatesButNeverSwitches) {
  ListContext<int64_t> Ctx("t:impossible", ListVariant::ArrayList,
                           defaultModel(),
                           SelectionRule::impossibleRule(),
                           quietOptions());
  runInstances(Ctx, 10, [](List<int64_t> &L) {
    for (int64_t I = 0; I != 400; ++I)
      L.add(I);
    for (int64_t I = 0; I != 2000; ++I)
      (void)L.contains(I);
  });
  EXPECT_FALSE(Ctx.evaluate());
  EXPECT_EQ(Ctx.evaluationCount(), 1u);
  EXPECT_EQ(Ctx.switchCount(), 0u);
}

TEST(AllocationContext, NewRoundStartsAfterEvaluation) {
  ListContext<int64_t> Ctx("t:rounds", ListVariant::ArrayList,
                           defaultModel(), SelectionRule::timeRule(),
                           quietOptions(5, 0.6));
  runInstances(Ctx, 5, [](List<int64_t> &L) { L.add(1); });
  EXPECT_TRUE(Ctx.evaluate() || true); // evaluation ran (maybe no switch)
  EXPECT_EQ(Ctx.evaluationCount(), 1u);
  // The window is recycled: new instances are monitored again.
  List<int64_t> L = Ctx.createList();
  EXPECT_TRUE(L.isMonitored());
  EXPECT_EQ(Ctx.instancesMonitored(), 6u);
}

TEST(AllocationContext, StaleInstancesFromOldRoundsAreDiscarded) {
  ListContext<int64_t> Ctx("t:stale", ListVariant::ArrayList,
                           defaultModel(), SelectionRule::timeRule(),
                           quietOptions(4, 0.5));
  // Hold one monitored instance across the round boundary.
  std::optional<List<int64_t>> Straggler = Ctx.createList();
  Straggler->add(1);
  runInstances(Ctx, 3, [](List<int64_t> &L) {
    for (int64_t I = 0; I != 50; ++I)
      L.add(I);
  });
  EXPECT_TRUE(Ctx.evaluate() || true);
  ASSERT_EQ(Ctx.evaluationCount(), 1u);
  // Straggler dies in round 1 with a round-0 slot: must be ignored, not
  // corrupt the fresh window.
  Straggler.reset();
  EXPECT_FALSE(Ctx.evaluate());
  EXPECT_EQ(Ctx.evaluationCount(), 1u);
}

TEST(AllocationContext, ContinuousAdaptationCanSwitchBack) {
  // Phase 1: lookup-heavy -> HashArrayList. Phase 2: index-access heavy
  // -> back to ArrayList (the paper's multi-phase behaviour, Fig. 6).
  ListContext<int64_t> Ctx("t:phases", ListVariant::ArrayList,
                           defaultModel(), SelectionRule::timeRule(),
                           quietOptions());
  runInstances(Ctx, 10, [](List<int64_t> &L) {
    for (int64_t I = 0; I != 400; ++I)
      L.add(I);
    for (int64_t I = 0; I != 3000; ++I)
      (void)L.contains(I);
  });
  ASSERT_TRUE(Ctx.evaluate());
  ASSERT_EQ(Ctx.currentVariant().name(), "HashArrayList");

  runInstances(Ctx, 10, [](List<int64_t> &L) {
    for (int64_t I = 0; I != 300; ++I)
      L.add(I);
    for (size_t I = 0; I != 2000; ++I)
      (void)L.get(I % 300);
  });
  ASSERT_TRUE(Ctx.evaluate());
  EXPECT_EQ(Ctx.currentVariant().name(), "ArrayList");
  EXPECT_EQ(Ctx.switchCount(), 2u);
}

TEST(AllocationContext, RemovePhaseKeepsHashArrayListLikeThePaper) {
  // The paper observed (§5.1) that in the "search and remove" phase the
  // framework kept HashArrayList instead of the optimal ArrayList — the
  // model gap between the two removal costs is below the 0.8 switching
  // threshold. Our default model reproduces that stickiness.
  ListContext<int64_t> Ctx("t:removephase", ListVariant::ArrayList,
                           defaultModel(), SelectionRule::timeRule(),
                           quietOptions());
  runInstances(Ctx, 10, [](List<int64_t> &L) {
    for (int64_t I = 0; I != 400; ++I)
      L.add(I);
    for (int64_t I = 0; I != 3000; ++I)
      (void)L.contains(I);
  });
  ASSERT_TRUE(Ctx.evaluate());
  ASSERT_EQ(Ctx.currentVariant().name(), "HashArrayList");

  runInstances(Ctx, 10, [](List<int64_t> &L) {
    for (int64_t I = 0; I != 300; ++I)
      L.add(I);
    for (int64_t I = 0; I != 600; ++I)
      (void)L.remove(I % 300);
  });
  EXPECT_FALSE(Ctx.evaluate());
  EXPECT_EQ(Ctx.currentVariant().name(), "HashArrayList");
}

TEST(AllocationContext, MemoryFootprintIsAboutOneKilobyte) {
  // Paper §5.3: "each allocation context has a footprint of ~1 KB".
  ContextOptions Options = quietOptions(100);
  ListContext<int64_t> Ctx("t:footprint", ListVariant::ArrayList,
                           defaultModel(), SelectionRule::timeRule(),
                           Options);
  size_t Bytes = Ctx.memoryFootprint();
  EXPECT_GT(Bytes, 256u);
  EXPECT_LT(Bytes, 16384u);
}

TEST(AllocationContext, FootprintAccountsForDoubleBufferedWindow) {
  // Regression pin for the lock-free rework: the window is
  // double-buffered, and both buffers must be visible in the footprint
  // report. Slots store compact fixed-width profiles, so the doubled
  // window still fits the same §5.3 budget the single-buffered design
  // reported.
  auto FootprintAt = [](size_t Window) {
    ListContext<int64_t> Ctx("t:fp" + std::to_string(Window),
                             ListVariant::ArrayList, defaultModel(),
                             SelectionRule::timeRule(),
                             quietOptions(Window));
    return Ctx.memoryFootprint();
  };
  size_t At100 = FootprintAt(100);
  size_t At1000 = FootprintAt(1000);
  // Both buffers scale with the window: the delta over 900 extra slots
  // must cover 2 x 900 compact slots (>= 36 bytes each).
  EXPECT_GE(At1000 - At100, 2u * 900u * 36u);
  // Paper-window footprint stays within the seed's reported budget.
  EXPECT_LT(At100, 12u * 1024u);
}

TEST(AllocationContext, ReportsIdentity) {
  MapContext<int64_t, int64_t> Ctx("site:42", MapVariant::ArrayMap,
                                   defaultModel(),
                                   SelectionRule::allocRule(),
                                   quietOptions());
  EXPECT_EQ(Ctx.name(), "site:42");
  EXPECT_EQ(Ctx.abstraction(), AbstractionKind::Map);
  EXPECT_EQ(Ctx.currentVariant().name(), "ArrayMap");
  EXPECT_EQ(Ctx.rule().Name, "Ralloc");
  EXPECT_EQ(Ctx.options().WindowSize, 10u);
}

} // namespace
