//===- VariantSelectionTest.cpp - Selection algorithm tests ------------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//

#include "core/VariantSelection.h"

#include <gtest/gtest.h>

using namespace cswitch;

namespace {

VariantCosts costs(double Time, double Alloc, bool Eligible = true) {
  VariantCosts C;
  C.Total[static_cast<size_t>(CostDimension::Time)] = Time;
  C.Total[static_cast<size_t>(CostDimension::Alloc)] = Alloc;
  C.Eligible = Eligible;
  return C;
}

TEST(SelectionRulePresets, MatchPaperTable4) {
  SelectionRule Rtime = SelectionRule::timeRule();
  EXPECT_EQ(Rtime.Name, "Rtime");
  ASSERT_EQ(Rtime.Criteria.size(), 1u);
  EXPECT_EQ(Rtime.Criteria[0].Dimension, CostDimension::Time);
  EXPECT_DOUBLE_EQ(Rtime.Criteria[0].Threshold, 0.8);
  EXPECT_EQ(Rtime.primaryDimension(), CostDimension::Time);

  SelectionRule Ralloc = SelectionRule::allocRule();
  EXPECT_EQ(Ralloc.Name, "Ralloc");
  ASSERT_EQ(Ralloc.Criteria.size(), 2u);
  EXPECT_EQ(Ralloc.Criteria[0].Dimension, CostDimension::Alloc);
  EXPECT_DOUBLE_EQ(Ralloc.Criteria[0].Threshold, 0.8);
  EXPECT_EQ(Ralloc.Criteria[1].Dimension, CostDimension::Time);
  EXPECT_DOUBLE_EQ(Ralloc.Criteria[1].Threshold, 1.2);
  EXPECT_EQ(Ralloc.primaryDimension(), CostDimension::Alloc);

  SelectionRule Impossible = SelectionRule::impossibleRule();
  EXPECT_LT(Impossible.Criteria[0].Threshold, 0.01);
}

TEST(SelectVariant, PicksClearImprovement) {
  std::vector<VariantCosts> C = {costs(1000, 0), costs(100, 0)};
  auto Choice = selectVariant(C, 0, SelectionRule::timeRule());
  ASSERT_TRUE(Choice.has_value());
  EXPECT_EQ(*Choice, 1u);
}

TEST(SelectVariant, KeepsCurrentWhenNothingQualifies) {
  std::vector<VariantCosts> C = {costs(100, 0), costs(90, 0)};
  // 90/100 = 0.9 > 0.8 threshold.
  EXPECT_FALSE(selectVariant(C, 0, SelectionRule::timeRule()).has_value());
}

TEST(SelectVariant, ThresholdBoundaryIsInclusive) {
  std::vector<VariantCosts> C = {costs(100, 0), costs(80, 0)};
  // Exactly at the 0.8 ratio qualifies (<=).
  auto Choice = selectVariant(C, 0, SelectionRule::timeRule());
  ASSERT_TRUE(Choice.has_value());
  EXPECT_EQ(*Choice, 1u);
}

TEST(SelectVariant, BestOfManyWinsOnPrimaryDimension) {
  std::vector<VariantCosts> C = {costs(1000, 0), costs(500, 0),
                                 costs(200, 0), costs(300, 0)};
  auto Choice = selectVariant(C, 0, SelectionRule::timeRule());
  ASSERT_TRUE(Choice.has_value());
  EXPECT_EQ(*Choice, 2u);
}

TEST(SelectVariant, IneligibleCandidatesAreSkipped) {
  std::vector<VariantCosts> C = {costs(1000, 0),
                                 costs(100, 0, /*Eligible=*/false),
                                 costs(300, 0)};
  auto Choice = selectVariant(C, 0, SelectionRule::timeRule());
  ASSERT_TRUE(Choice.has_value());
  EXPECT_EQ(*Choice, 2u);
}

TEST(SelectVariant, PenaltyCriterionVetoesFastAllocButSlowTime) {
  // Ralloc: alloc < 0.8 AND time < 1.2. Candidate 1 halves the
  // allocation but doubles the time: rejected.
  std::vector<VariantCosts> C = {costs(100, 1000), costs(200, 500),
                                 costs(110, 600)};
  auto Choice = selectVariant(C, 0, SelectionRule::allocRule());
  ASSERT_TRUE(Choice.has_value());
  EXPECT_EQ(*Choice, 2u);
}

TEST(SelectVariant, AllocRulePrimaryIsAlloc) {
  // Both qualify; candidate 2 has lower alloc though higher time.
  std::vector<VariantCosts> C = {costs(100, 1000), costs(90, 700),
                                 costs(115, 500)};
  auto Choice = selectVariant(C, 0, SelectionRule::allocRule());
  ASSERT_TRUE(Choice.has_value());
  EXPECT_EQ(*Choice, 2u);
}

TEST(SelectVariant, ImpossibleRuleNeverSelects) {
  std::vector<VariantCosts> C = {costs(1000, 1000), costs(2, 2),
                                 costs(900, 900)};
  EXPECT_FALSE(
      selectVariant(C, 0, SelectionRule::impossibleRule()).has_value());
}

TEST(SelectVariant, ZeroCurrentCostBlocksImprovementCriteria) {
  // Current time cost 0: nothing can strictly improve.
  std::vector<VariantCosts> C = {costs(0, 100), costs(0, 10)};
  EXPECT_FALSE(selectVariant(C, 0, SelectionRule::timeRule()).has_value());
}

TEST(SelectVariant, ZeroCurrentCostPenaltyAllowsFreeCandidates) {
  // Ralloc with current alloc 100 and time 0: the time penalty cap
  // (1.2 >= 1) passes only for candidates with zero time cost.
  std::vector<VariantCosts> Free = {costs(0, 100), costs(0, 50)};
  auto Choice = selectVariant(Free, 0, SelectionRule::allocRule());
  ASSERT_TRUE(Choice.has_value());
  EXPECT_EQ(*Choice, 1u);

  std::vector<VariantCosts> NotFree = {costs(0, 100), costs(5, 50)};
  EXPECT_FALSE(
      selectVariant(NotFree, 0, SelectionRule::allocRule()).has_value());
}

TEST(SelectVariant, CurrentVariantIsNeverReturned) {
  std::vector<VariantCosts> C = {costs(100, 0), costs(1000, 0)};
  // Current is already the cheapest; no candidate qualifies.
  EXPECT_FALSE(selectVariant(C, 0, SelectionRule::timeRule()).has_value());
}

TEST(SelectVariant, SingleVariantPoolNeverSwitches) {
  std::vector<VariantCosts> C = {costs(100, 100)};
  EXPECT_FALSE(selectVariant(C, 0, SelectionRule::timeRule()).has_value());
}

TEST(SelectVariant, CustomMultiCriteriaRule) {
  SelectionRule Rule{"Rboth",
                     {{CostDimension::Time, 0.9},
                      {CostDimension::Alloc, 0.9}}};
  // Candidate 1 improves time but not alloc; candidate 2 improves both.
  std::vector<VariantCosts> C = {costs(100, 100), costs(50, 95),
                                 costs(80, 80)};
  auto Choice = selectVariant(C, 0, Rule);
  ASSERT_TRUE(Choice.has_value());
  EXPECT_EQ(*Choice, 2u);
}

} // namespace
