//===- ListVariantsTest.cpp - Parameterized list variant tests -------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Every list variant must satisfy the identical semantic contract — the
/// property the selection framework relies on to swap variants freely.
/// These tests run each variant through the same suite, including a
/// randomized differential test against std::vector as the reference
/// semantics.
///
//===----------------------------------------------------------------------===//

#include "collections/Factory.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

using namespace cswitch;

namespace {

class ListVariantTest : public ::testing::TestWithParam<ListVariant> {
protected:
  std::unique_ptr<ListImpl<int64_t>> make() {
    return makeListImpl<int64_t>(GetParam());
  }
};

TEST_P(ListVariantTest, StartsEmpty) {
  auto L = make();
  EXPECT_EQ(L->size(), 0u);
  EXPECT_TRUE(L->empty());
  EXPECT_FALSE(L->contains(0));
}

TEST_P(ListVariantTest, PushBackAppendsInOrder) {
  auto L = make();
  for (int64_t I = 0; I != 10; ++I)
    L->push_back(I * 5);
  EXPECT_EQ(L->size(), 10u);
  for (size_t I = 0; I != 10; ++I)
    EXPECT_EQ(L->at(I), static_cast<int64_t>(I) * 5);
}

TEST_P(ListVariantTest, AllowsDuplicates) {
  auto L = make();
  L->push_back(7);
  L->push_back(7);
  L->push_back(7);
  EXPECT_EQ(L->size(), 3u);
  EXPECT_TRUE(L->contains(7));
  EXPECT_TRUE(L->removeValue(7));
  EXPECT_EQ(L->size(), 2u);
  EXPECT_TRUE(L->contains(7));
}

TEST_P(ListVariantTest, InsertAtFrontMiddleBack) {
  auto L = make();
  L->push_back(1);
  L->push_back(3);
  L->insertAt(1, 2);      // middle
  L->insertAt(0, 0);      // front
  L->insertAt(L->size(), 4); // back
  ASSERT_EQ(L->size(), 5u);
  for (size_t I = 0; I != 5; ++I)
    EXPECT_EQ(L->at(I), static_cast<int64_t>(I));
}

TEST_P(ListVariantTest, RemoveAtShiftsElements) {
  auto L = make();
  for (int64_t I = 0; I != 5; ++I)
    L->push_back(I);
  L->removeAt(2);
  ASSERT_EQ(L->size(), 4u);
  EXPECT_EQ(L->at(0), 0);
  EXPECT_EQ(L->at(1), 1);
  EXPECT_EQ(L->at(2), 3);
  EXPECT_EQ(L->at(3), 4);
}

TEST_P(ListVariantTest, RemoveValueFirstOccurrenceOnly) {
  auto L = make();
  L->push_back(1);
  L->push_back(2);
  L->push_back(1);
  EXPECT_TRUE(L->removeValue(1));
  ASSERT_EQ(L->size(), 2u);
  EXPECT_EQ(L->at(0), 2);
  EXPECT_EQ(L->at(1), 1);
  EXPECT_FALSE(L->removeValue(42));
}

TEST_P(ListVariantTest, SetReplacesElement) {
  auto L = make();
  L->push_back(10);
  L->push_back(20);
  L->set(1, 99);
  EXPECT_EQ(L->at(1), 99);
  EXPECT_TRUE(L->contains(99));
  EXPECT_FALSE(L->contains(20));
  EXPECT_TRUE(L->contains(10));
}

TEST_P(ListVariantTest, ContainsReflectsMutations) {
  auto L = make();
  EXPECT_FALSE(L->contains(5));
  L->push_back(5);
  EXPECT_TRUE(L->contains(5));
  L->removeValue(5);
  EXPECT_FALSE(L->contains(5));
}

TEST_P(ListVariantTest, ClearEmptiesAndStaysUsable) {
  auto L = make();
  for (int64_t I = 0; I != 100; ++I)
    L->push_back(I);
  L->clear();
  EXPECT_EQ(L->size(), 0u);
  EXPECT_FALSE(L->contains(50));
  L->push_back(7);
  EXPECT_EQ(L->size(), 1u);
  EXPECT_TRUE(L->contains(7));
}

TEST_P(ListVariantTest, ForEachVisitsInListOrder) {
  auto L = make();
  std::vector<int64_t> Expected;
  for (int64_t I = 0; I != 50; ++I) {
    L->push_back(I * 3);
    Expected.push_back(I * 3);
  }
  std::vector<int64_t> Seen;
  L->forEach([&Seen](const int64_t &V) { Seen.push_back(V); });
  EXPECT_EQ(Seen, Expected);
}

TEST_P(ListVariantTest, ReserveDoesNotChangeContents) {
  auto L = make();
  L->push_back(1);
  L->reserve(1000);
  EXPECT_EQ(L->size(), 1u);
  EXPECT_EQ(L->at(0), 1);
}

TEST_P(ListVariantTest, MemoryFootprintGrowsWithContents) {
  auto L = make();
  size_t Empty = L->memoryFootprint();
  EXPECT_GE(Empty, sizeof(void *));
  for (int64_t I = 0; I != 1000; ++I)
    L->push_back(I);
  EXPECT_GT(L->memoryFootprint(), Empty);
  // At least the payload bytes must be accounted for.
  EXPECT_GE(L->memoryFootprint(), 1000 * sizeof(int64_t));
}

TEST_P(ListVariantTest, VariantAndCloneEmpty) {
  auto L = make();
  EXPECT_EQ(L->variant(), GetParam());
  L->push_back(1);
  auto Clone = L->cloneEmpty();
  EXPECT_EQ(Clone->variant(), GetParam());
  EXPECT_EQ(Clone->size(), 0u);
}

TEST_P(ListVariantTest, DifferentialAgainstStdVector) {
  // Randomized op sequences; std::vector is the reference semantics.
  for (uint64_t Seed : {1u, 2u, 3u, 4u, 5u}) {
    SplitMix64 Rng(Seed);
    auto L = make();
    std::vector<int64_t> Ref;
    for (int Op = 0; Op != 600; ++Op) {
      switch (Rng.nextBelow(8)) {
      case 0:
      case 1: { // push_back (weighted up so lists grow)
        int64_t V = static_cast<int64_t>(Rng.nextBelow(40));
        L->push_back(V);
        Ref.push_back(V);
        break;
      }
      case 2: { // insertAt
        size_t Index = Rng.nextBelow(Ref.size() + 1);
        int64_t V = static_cast<int64_t>(Rng.nextBelow(40));
        L->insertAt(Index, V);
        Ref.insert(Ref.begin() + static_cast<ptrdiff_t>(Index), V);
        break;
      }
      case 3: { // removeAt
        if (Ref.empty())
          break;
        size_t Index = Rng.nextBelow(Ref.size());
        L->removeAt(Index);
        Ref.erase(Ref.begin() + static_cast<ptrdiff_t>(Index));
        break;
      }
      case 4: { // removeValue
        int64_t V = static_cast<int64_t>(Rng.nextBelow(40));
        bool RemovedRef = false;
        auto It = std::find(Ref.begin(), Ref.end(), V);
        if (It != Ref.end()) {
          Ref.erase(It);
          RemovedRef = true;
        }
        EXPECT_EQ(L->removeValue(V), RemovedRef);
        break;
      }
      case 5: { // set
        if (Ref.empty())
          break;
        size_t Index = Rng.nextBelow(Ref.size());
        int64_t V = static_cast<int64_t>(Rng.nextBelow(40));
        L->set(Index, V);
        Ref[Index] = V;
        break;
      }
      case 6: { // contains
        int64_t V = static_cast<int64_t>(Rng.nextBelow(40));
        EXPECT_EQ(L->contains(V),
                  std::find(Ref.begin(), Ref.end(), V) != Ref.end());
        break;
      }
      case 7: { // positional read
        if (Ref.empty())
          break;
        size_t Index = Rng.nextBelow(Ref.size());
        EXPECT_EQ(L->at(Index), Ref[Index]);
        break;
      }
      }
      ASSERT_EQ(L->size(), Ref.size());
    }
    // Final full-content comparison, in order.
    std::vector<int64_t> Snapshot;
    L->forEach([&Snapshot](const int64_t &V) { Snapshot.push_back(V); });
    EXPECT_EQ(Snapshot, Ref);
  }
}

TEST_P(ListVariantTest, LargeGrowthKeepsIntegrity) {
  auto L = make();
  constexpr int64_t N = 5000;
  for (int64_t I = 0; I != N; ++I)
    L->push_back(I);
  EXPECT_EQ(L->size(), static_cast<size_t>(N));
  EXPECT_EQ(L->at(0), 0);
  EXPECT_EQ(L->at(static_cast<size_t>(N) - 1), N - 1);
  EXPECT_TRUE(L->contains(N / 2));
  EXPECT_FALSE(L->contains(N));
  uint64_t Sum = 0;
  L->forEach([&Sum](const int64_t &V) { Sum += static_cast<uint64_t>(V); });
  EXPECT_EQ(Sum, static_cast<uint64_t>(N) * (N - 1) / 2);
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, ListVariantTest, ::testing::ValuesIn(AllListVariants),
    [](const ::testing::TestParamInfo<ListVariant> &Info) {
      return listVariantName(Info.param);
    });

} // namespace
