//===- ConcurrentCollectionsTest.cpp - Concurrent tier tests ----------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests of the concurrent collection tier (DESIGN.md §11): linearizable
/// operation smoke over the thread-safe implementations, snapshot
/// isolation of the copy-on-write list, shard-count edges, the
/// contention sketch, the contention cost dimension, and the
/// Concurrency mode helpers. The multi-threaded tests double as the
/// TSan surface of the tier (run in CI under -fsanitize=thread).
///
//===----------------------------------------------------------------------===//

#include "collections/Factory.h"
#include "collections/concurrent/ShardedHashMap.h"
#include "collections/concurrent/Sharding.h"
#include "collections/concurrent/SnapshotList.h"
#include "collections/concurrent/StripedHashSet.h"
#include "core/Switch.h"
#include "model/DefaultModel.h"
#include "profile/ContentionSketch.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace cswitch;

namespace {

//===--------------------------------------------------------------------===//
// Linearizable operation smoke
//===--------------------------------------------------------------------===//

TEST(ConcurrentCollections, ShardedHashMapKeepsEveryDisjointWrite) {
  auto Map = makeMapImpl<int64_t, int64_t>(MapVariant::ShardedHashMap);
  constexpr int Threads = 4;
  constexpr int64_t PerThread = 4000;
  std::vector<std::thread> Workers;
  for (int T = 0; T != Threads; ++T) {
    Workers.emplace_back([&Map, T] {
      for (int64_t I = 0; I != PerThread; ++I) {
        int64_t Key = T * PerThread + I;
        Map->put(Key, Key * 2);
      }
    });
  }
  for (std::thread &W : Workers)
    W.join();
  EXPECT_EQ(Map->size(), static_cast<size_t>(Threads) * PerThread);
  for (int64_t Key = 0; Key != Threads * PerThread; ++Key) {
    const int64_t *Value = Map->get(Key);
    ASSERT_NE(Value, nullptr) << "lost key " << Key;
    EXPECT_EQ(*Value, Key * 2);
  }
}

TEST(ConcurrentCollections, ShardedHashMapMixedChurnStaysConsistent) {
  auto Map = makeMapImpl<int64_t, int64_t>(MapVariant::ShardedHashMap);
  std::atomic<int64_t> NetPuts{0};
  std::vector<std::thread> Workers;
  for (int T = 0; T != 4; ++T) {
    Workers.emplace_back([&Map, &NetPuts, T] {
      SplitMix64 Rng(static_cast<uint64_t>(T) + 11);
      for (int I = 0; I != 6000; ++I) {
        int64_t Key = static_cast<int64_t>(Rng.nextBelow(512));
        if (Rng.nextBool(0.6)) {
          // put() returns true only on a fresh insertion.
          if (Map->put(Key, Key))
            NetPuts.fetch_add(1, std::memory_order_relaxed);
        } else {
          if (Map->remove(Key))
            NetPuts.fetch_sub(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread &W : Workers)
    W.join();
  EXPECT_EQ(static_cast<int64_t>(Map->size()),
            NetPuts.load(std::memory_order_relaxed));
}

TEST(ConcurrentCollections, StripedHashSetChurnStaysConsistent) {
  auto Set = makeSetImpl<int64_t>(SetVariant::StripedHashSet);
  std::atomic<int64_t> NetAdds{0};
  std::vector<std::thread> Workers;
  for (int T = 0; T != 4; ++T) {
    Workers.emplace_back([&Set, &NetAdds, T] {
      SplitMix64 Rng(static_cast<uint64_t>(T) + 3);
      for (int I = 0; I != 6000; ++I) {
        int64_t V = static_cast<int64_t>(Rng.nextBelow(256));
        if (Rng.nextBool(0.55)) {
          if (Set->add(V))
            NetAdds.fetch_add(1, std::memory_order_relaxed);
        } else {
          if (Set->remove(V))
            NetAdds.fetch_sub(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread &W : Workers)
    W.join();
  EXPECT_EQ(static_cast<int64_t>(Set->size()),
            NetAdds.load(std::memory_order_relaxed));
}

TEST(ConcurrentCollections, MutexTierVariantsSurviveConcurrentUse) {
  auto List = makeListImpl<int64_t>(ListVariant::MutexList);
  auto Set = makeSetImpl<int64_t>(SetVariant::MutexHashSet);
  auto Map = makeMapImpl<int64_t, int64_t>(MapVariant::MutexHashMap);
  std::vector<std::thread> Workers;
  for (int T = 0; T != 4; ++T) {
    Workers.emplace_back([&, T] {
      for (int64_t I = 0; I != 2000; ++I) {
        int64_t V = T * 2000 + I;
        List->push_back(V);
        Set->add(V);
        Map->put(V, V);
      }
    });
  }
  for (std::thread &W : Workers)
    W.join();
  EXPECT_EQ(List->size(), 8000u);
  EXPECT_EQ(Set->size(), 8000u);
  EXPECT_EQ(Map->size(), 8000u);
}

//===--------------------------------------------------------------------===//
// Snapshot isolation
//===--------------------------------------------------------------------===//

TEST(ConcurrentCollections, SnapshotListIterationSeesConsistentPrefix) {
  auto List = makeListImpl<int64_t>(ListVariant::SnapshotList);
  // One writer appends 0, 1, 2, ...; any snapshot a traversal takes is
  // therefore exactly the prefix 0..k-1. A torn traversal would show a
  // gap, a reordering, or an element appearing mid-sweep.
  std::atomic<bool> Stop{false};
  std::thread Writer([&List, &Stop] {
    int64_t V = 0;
    while (!Stop.load(std::memory_order_relaxed) && V < 60000)
      List->push_back(V++);
  });
  for (int Sweep = 0; Sweep != 400; ++Sweep) {
    int64_t Expected = 0;
    bool Consistent = true;
    List->forEach([&Expected, &Consistent](const int64_t &V) {
      Consistent = Consistent && V == Expected;
      ++Expected;
    });
    EXPECT_TRUE(Consistent) << "torn snapshot at sweep " << Sweep;
  }
  Stop.store(true);
  Writer.join();
}

//===--------------------------------------------------------------------===//
// Shard-count edges
//===--------------------------------------------------------------------===//

TEST(ConcurrentCollections, ResolveShardCountRoundsAndClamps) {
  EXPECT_EQ(concurrent::resolveShardCount(1), 1u);
  EXPECT_EQ(concurrent::resolveShardCount(2), 2u);
  EXPECT_EQ(concurrent::resolveShardCount(3), 4u);
  EXPECT_EQ(concurrent::resolveShardCount(64), 64u);
  EXPECT_EQ(concurrent::resolveShardCount(1000), concurrent::MaxShards);
  size_t Auto = concurrent::resolveShardCount(0);
  EXPECT_GE(Auto, 1u);
  EXPECT_LE(Auto, concurrent::MaxShards);
  EXPECT_EQ(Auto & (Auto - 1), 0u) << "shard counts are powers of two";
}

TEST(ConcurrentCollections, ShardEdgesOneAndMaxBehaveIdentically) {
  for (size_t Shards : {size_t(1), concurrent::MaxShards}) {
    ShardedHashMapImpl<int64_t, int64_t> Map(Shards);
    StripedHashSetImpl<int64_t> Set(Shards);
    ASSERT_EQ(Map.shardCount(), Shards);
    ASSERT_EQ(Set.shardCount(), Shards);
    std::vector<std::thread> Workers;
    for (int T = 0; T != 4; ++T) {
      Workers.emplace_back([&, T] {
        for (int64_t I = 0; I != 2000; ++I) {
          int64_t V = T * 2000 + I;
          Map.put(V, -V);
          Set.add(V);
        }
      });
    }
    for (std::thread &W : Workers)
      W.join();
    EXPECT_EQ(Map.size(), 8000u) << Shards << " shards";
    EXPECT_EQ(Set.size(), 8000u) << Shards << " shards";
    for (int64_t V = 0; V < 8000; V += 97) {
      const int64_t *Found = Map.get(V);
      ASSERT_NE(Found, nullptr) << Shards << " shards, key " << V;
      EXPECT_EQ(*Found, -V);
      EXPECT_TRUE(Set.contains(V)) << Shards << " shards, value " << V;
    }
  }
}

//===--------------------------------------------------------------------===//
// Contention sketch
//===--------------------------------------------------------------------===//

TEST(ContentionSketch, EstimatesDistinctThreads) {
  ContentionSketch Sketch;
  EXPECT_EQ(Sketch.estimateThreads(), 0.0);
  for (int I = 0; I != 300; ++I)
    Sketch.observe();
  EXPECT_GE(Sketch.operations(), 300u);
  double Solo = Sketch.estimateThreads();
  EXPECT_GE(Solo, 1.0);
  EXPECT_LT(Solo, 1.6);

  Sketch.reset();
  EXPECT_EQ(Sketch.operations(), 0u);
  std::vector<std::thread> Workers;
  for (int T = 0; T != 4; ++T)
    Workers.emplace_back([&Sketch] {
      for (int I = 0; I != 300; ++I)
        Sketch.observe();
    });
  for (std::thread &W : Workers)
    W.join();
  // Linear counting over 64 buckets: 4 distinct thread ids estimate
  // close to 4, lower only when ids collide into one bucket.
  double Crowd = Sketch.estimateThreads();
  EXPECT_GE(Crowd, 2.0);
  EXPECT_LE(Crowd, 8.0);
}

//===--------------------------------------------------------------------===//
// Contention cost dimension
//===--------------------------------------------------------------------===//

/// Per-op cost of \p V under the analysis fold: time at \p Size plus the
/// contention polynomial at \p Threads (what analyzeRound adds when the
/// context is contended).
double contendedCost(const PerformanceModel &Model, MapVariant V,
                     OperationKind Op, double Size, double Threads) {
  VariantId Id = VariantId::of(V);
  return Model.operationCost(Id, Op, CostDimension::Time, Size) +
         Model.operationCost(Id, Op, CostDimension::Contention, Threads);
}

TEST(ContentionModel, MutexWinsSequentiallyShardedWinsContended) {
  PerformanceModel Model = defaultPerformanceModel();
  // The session-server read-heavy mix: 80% lookups, 20% inserts.
  auto MixCost = [&](MapVariant V, double Threads) {
    return 0.8 * contendedCost(Model, V, OperationKind::Contains, 1024,
                               Threads) +
           0.2 * contendedCost(Model, V, OperationKind::Populate, 1024,
                               Threads);
  };
  // One thread: the striping overhead is pure waste, the mutex strategy
  // must win by enough that the 0.8 ratio rule keeps it.
  EXPECT_LT(MixCost(MapVariant::MutexHashMap, 1.0),
            0.8 * MixCost(MapVariant::ShardedHashMap, 1.0));
  // Two or more threads: the convoying mutex loses to striping, again
  // decisively enough for the ratio rule to switch.
  for (double Threads : {2.0, 4.0, 8.0, 16.0}) {
    EXPECT_LT(MixCost(MapVariant::ShardedHashMap, Threads),
              0.8 * MixCost(MapVariant::MutexHashMap, Threads))
        << Threads << " threads";
  }
}

TEST(ContentionModel, AugmentBackfillsConcurrentRows) {
  // A model calibrated before the concurrent tier existed (or by the
  // sequential-only ModelBuilder): no concurrent variants, no
  // contention cells.
  PerformanceModel Model;
  Model.setCost(VariantId::of(MapVariant::ChainedHashMap),
                OperationKind::Contains, CostDimension::Time,
                Polynomial({5.0}));
  ASSERT_FALSE(Model.hasVariant(VariantId::of(MapVariant::MutexHashMap)));
  augmentConcurrentCoverage(Model);
  for (MapVariant V : {MapVariant::MutexHashMap, MapVariant::ShardedHashMap})
    EXPECT_TRUE(Model.hasVariant(VariantId::of(V))) << mapVariantName(V);
  // The measured cell is untouched; the grafted contention polynomial
  // charges nothing at one thread and grows from two on.
  EXPECT_DOUBLE_EQ(
      Model.operationCost(VariantId::of(MapVariant::ChainedHashMap),
                          OperationKind::Contains, CostDimension::Time, 64),
      5.0);
  double AtOne = Model.operationCost(VariantId::of(MapVariant::MutexHashMap),
                                     OperationKind::Contains,
                                     CostDimension::Contention, 1.0);
  double AtFour = Model.operationCost(VariantId::of(MapVariant::MutexHashMap),
                                      OperationKind::Contains,
                                      CostDimension::Contention, 4.0);
  EXPECT_DOUBLE_EQ(AtOne, 0.0);
  EXPECT_GT(AtFour, 0.0);
}

//===--------------------------------------------------------------------===//
// Concurrency mode helpers
//===--------------------------------------------------------------------===//

TEST(ConcurrencyTier, CandidateMasksSelectTheRightPools) {
  for (AbstractionKind Kind :
       {AbstractionKind::List, AbstractionKind::Set, AbstractionKind::Map}) {
    unsigned Mutex = concurrentInitialVariant(Kind, Concurrency::Mutex);
    unsigned Sharded = concurrentInitialVariant(Kind, Concurrency::Sharded);
    EXPECT_EQ(Mutex, firstConcurrentVariant(Kind));
    EXPECT_EQ(Sharded, Mutex + 1);
    EXPECT_EQ(concurrencyCandidateMask(Kind, Concurrency::Mutex),
              1u << Mutex);
    EXPECT_EQ(concurrencyCandidateMask(Kind, Concurrency::Sharded),
              1u << Sharded);
    EXPECT_EQ(concurrencyCandidateMask(Kind, Concurrency::Auto),
              (1u << Mutex) | (1u << Sharded));
    // The sequential pool is exactly the variants below the tier, and
    // Auto starts on the mutex strategy (cheapest when uncontended).
    EXPECT_EQ(concurrencyCandidateMask(Kind, Concurrency::None),
              (1u << Mutex) - 1);
    EXPECT_EQ(concurrentInitialVariant(Kind, Concurrency::Auto), Mutex);
    for (unsigned V = 0; V != numVariantsOf(Kind); ++V)
      EXPECT_EQ(isConcurrentVariant(Kind, V), V >= Mutex);
  }
}

TEST(ConcurrencyTier, AutoContextSwitchesToShardedUnderContention) {
  ContextOptions Opts = ContextOptions{}
                            .windowSize(4)
                            .finishedRatio(0.5)
                            .logEvents(false)
                            .concurrency(Concurrency::Auto);
  auto Ctx = Switch::makeContext<Map<int64_t, int64_t>>(
      "test:contended-cache", MapVariant::ChainedHashMap,
      SelectionRule::timeRule(), Opts);
  // Auto coerces the sequential initial variant into the tier.
  EXPECT_EQ(static_cast<MapVariant>(Ctx->currentVariantIndex()),
            MapVariant::MutexHashMap);
  for (int Generation = 0; Generation != 4; ++Generation) {
    {
      auto Shared = Ctx->createMap();
      std::vector<std::thread> Workers;
      for (int T = 0; T != 4; ++T) {
        Workers.emplace_back([&Shared, T] {
          for (int64_t I = 0; I != 2000; ++I) {
            int64_t Key = T * 2000 + I;
            Shared.put(Key, Key);
            int64_t Out = 0;
            Shared.lookup(Key, Out);
          }
        });
      }
      for (std::thread &W : Workers)
        W.join();
    } // Retire the generation so its profile publishes.
    Ctx->evaluate();
  }
  EXPECT_GT(Ctx->contendedThreads(), 1.0);
  EXPECT_GE(Ctx->switchCount(), 1u);
  EXPECT_EQ(static_cast<MapVariant>(Ctx->currentVariantIndex()),
            MapVariant::ShardedHashMap);
}

} // namespace
