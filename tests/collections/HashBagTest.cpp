//===- HashBagTest.cpp - HashBag detail tests -------------------------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//

#include "collections/detail/HashBag.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <unordered_map>

using namespace cswitch;
using cswitch::detail::HashBag;

namespace {

TEST(HashBag, CountsMultiplicity) {
  HashBag<int64_t> Bag;
  Bag.addOne(5);
  Bag.addOne(5);
  Bag.addOne(5);
  EXPECT_TRUE(Bag.contains(5));
  EXPECT_EQ(Bag.distinctSize(), 1u);
  EXPECT_TRUE(Bag.removeOne(5));
  EXPECT_TRUE(Bag.contains(5)); // two occurrences left.
  EXPECT_TRUE(Bag.removeOne(5));
  EXPECT_TRUE(Bag.removeOne(5));
  EXPECT_FALSE(Bag.contains(5));
  EXPECT_FALSE(Bag.removeOne(5));
  EXPECT_EQ(Bag.distinctSize(), 0u);
}

TEST(HashBag, EmptyBagBehaves) {
  HashBag<int64_t> Bag;
  EXPECT_FALSE(Bag.contains(1));
  EXPECT_FALSE(Bag.removeOne(1));
  EXPECT_EQ(Bag.distinctSize(), 0u);
  EXPECT_EQ(Bag.memoryFootprint(), 0u);
}

TEST(HashBag, GrowsAcrossRehashes) {
  HashBag<int64_t> Bag;
  for (int64_t I = 0; I != 2000; ++I)
    Bag.addOne(I);
  EXPECT_EQ(Bag.distinctSize(), 2000u);
  for (int64_t I = 0; I != 2000; ++I)
    EXPECT_TRUE(Bag.contains(I));
  EXPECT_FALSE(Bag.contains(2000));
  EXPECT_GT(Bag.memoryFootprint(), 2000 * sizeof(int64_t));
}

TEST(HashBag, ClearReleasesEverything) {
  int64_t LiveBefore = MemoryTracker::liveBytes();
  HashBag<int64_t> Bag;
  for (int64_t I = 0; I != 100; ++I)
    Bag.addOne(I);
  Bag.clear();
  EXPECT_EQ(Bag.distinctSize(), 0u);
  EXPECT_FALSE(Bag.contains(50));
  EXPECT_EQ(MemoryTracker::liveBytes(), LiveBefore);
  // Usable after clear.
  Bag.addOne(7);
  EXPECT_TRUE(Bag.contains(7));
}

TEST(HashBag, DifferentialAgainstUnorderedMapOfCounts) {
  SplitMix64 Rng(77);
  HashBag<int64_t> Bag;
  std::unordered_map<int64_t, int> Ref;
  for (int Op = 0; Op != 5000; ++Op) {
    int64_t V = static_cast<int64_t>(Rng.nextBelow(64));
    if (Rng.nextBelow(2) == 0) {
      Bag.addOne(V);
      ++Ref[V];
    } else {
      bool Removed = Bag.removeOne(V);
      auto It = Ref.find(V);
      if (It == Ref.end()) {
        EXPECT_FALSE(Removed);
      } else {
        EXPECT_TRUE(Removed);
        if (--It->second == 0)
          Ref.erase(It);
      }
    }
    if (Op % 512 == 0) {
      for (int64_t K = 0; K != 64; ++K)
        ASSERT_EQ(Bag.contains(K), Ref.count(K) > 0);
      ASSERT_EQ(Bag.distinctSize(), Ref.size());
    }
  }
}

} // namespace
