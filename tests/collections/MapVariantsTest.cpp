//===- MapVariantsTest.cpp - Parameterized map variant tests ----------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Every map variant must satisfy the identical semantic contract. Runs
/// each variant through the same suite, including a randomized
/// differential test against std::map.
///
//===----------------------------------------------------------------------===//

#include "collections/Factory.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

using namespace cswitch;

namespace {

class MapVariantTest : public ::testing::TestWithParam<MapVariant> {
protected:
  std::unique_ptr<MapImpl<int64_t, int64_t>> make() {
    return makeMapImpl<int64_t, int64_t>(GetParam());
  }
};

TEST_P(MapVariantTest, StartsEmpty) {
  auto M = make();
  EXPECT_EQ(M->size(), 0u);
  EXPECT_TRUE(M->empty());
  EXPECT_EQ(M->get(0), nullptr);
  EXPECT_FALSE(M->containsKey(0));
  EXPECT_FALSE(M->remove(0));
}

TEST_P(MapVariantTest, PutReportsNoveltyAndOverwrites) {
  auto M = make();
  EXPECT_TRUE(M->put(1, 100));
  EXPECT_FALSE(M->put(1, 200));
  EXPECT_EQ(M->size(), 1u);
  const int64_t *V = M->get(1);
  ASSERT_NE(V, nullptr);
  EXPECT_EQ(*V, 200);
}

TEST_P(MapVariantTest, GetMutableWritesThrough) {
  auto M = make();
  M->put(5, 50);
  int64_t *V = M->getMutable(5);
  ASSERT_NE(V, nullptr);
  *V = 99;
  EXPECT_EQ(*M->get(5), 99);
  EXPECT_EQ(M->getMutable(6), nullptr);
}

TEST_P(MapVariantTest, RemoveErasesMapping) {
  auto M = make();
  M->put(1, 10);
  M->put(2, 20);
  EXPECT_TRUE(M->remove(1));
  EXPECT_FALSE(M->remove(1));
  EXPECT_EQ(M->size(), 1u);
  EXPECT_EQ(M->get(1), nullptr);
  EXPECT_NE(M->get(2), nullptr);
}

TEST_P(MapVariantTest, ClearEmptiesAndStaysUsable) {
  auto M = make();
  for (int64_t I = 0; I != 200; ++I)
    M->put(I, I);
  M->clear();
  EXPECT_EQ(M->size(), 0u);
  EXPECT_EQ(M->get(100), nullptr);
  EXPECT_TRUE(M->put(100, 1));
  EXPECT_EQ(M->size(), 1u);
}

TEST_P(MapVariantTest, ForEachVisitsExactlyTheMappings) {
  auto M = make();
  std::map<int64_t, int64_t> Expected;
  SplitMix64 Rng(41);
  for (int I = 0; I != 300; ++I) {
    int64_t K = static_cast<int64_t>(Rng.nextBelow(500));
    int64_t V = static_cast<int64_t>(Rng.nextBelow(1000));
    M->put(K, V);
    Expected[K] = V;
  }
  std::vector<std::pair<int64_t, int64_t>> Seen;
  M->forEach([&Seen](const int64_t &K, const int64_t &V) {
    Seen.emplace_back(K, V);
  });
  std::sort(Seen.begin(), Seen.end());
  std::vector<std::pair<int64_t, int64_t>> ExpectedSorted(
      Expected.begin(), Expected.end());
  EXPECT_EQ(Seen, ExpectedSorted);
}

TEST_P(MapVariantTest, GrowthAcrossRehashesKeepsAllMappings) {
  auto M = make();
  constexpr int64_t N = 4000;
  for (int64_t I = 0; I != N; ++I)
    EXPECT_TRUE(M->put(I * 3, I));
  EXPECT_EQ(M->size(), static_cast<size_t>(N));
  for (int64_t I = 0; I != N; ++I) {
    const int64_t *V = M->get(I * 3);
    ASSERT_NE(V, nullptr);
    EXPECT_EQ(*V, I);
  }
  EXPECT_EQ(M->get(-3), nullptr);
}

TEST_P(MapVariantTest, TombstoneChurnKeepsLookupsCorrect) {
  auto M = make();
  for (int64_t I = 0; I != 64; ++I)
    M->put(I, I * 2);
  SplitMix64 Rng(42);
  for (int Round = 0; Round != 3000; ++Round) {
    int64_t Victim = static_cast<int64_t>(Rng.nextBelow(64));
    EXPECT_TRUE(M->remove(Victim));
    EXPECT_EQ(M->get(Victim), nullptr);
    EXPECT_TRUE(M->put(Victim, Victim * 2));
    ASSERT_EQ(M->size(), 64u);
  }
  for (int64_t I = 0; I != 64; ++I) {
    const int64_t *V = M->get(I);
    ASSERT_NE(V, nullptr);
    EXPECT_EQ(*V, I * 2);
  }
}

TEST_P(MapVariantTest, ReservePreservesContents) {
  auto M = make();
  for (int64_t I = 0; I != 10; ++I)
    M->put(I, I);
  M->reserve(10000);
  EXPECT_EQ(M->size(), 10u);
  for (int64_t I = 0; I != 10; ++I)
    EXPECT_NE(M->get(I), nullptr);
}

TEST_P(MapVariantTest, MemoryFootprintGrowsWithContents) {
  auto M = make();
  size_t Empty = M->memoryFootprint();
  for (int64_t I = 0; I != 1000; ++I)
    M->put(I, I);
  EXPECT_GT(M->memoryFootprint(), Empty);
  EXPECT_GE(M->memoryFootprint(), 1000 * 2 * sizeof(int64_t));
}

TEST_P(MapVariantTest, VariantAndCloneEmpty) {
  auto M = make();
  EXPECT_EQ(M->variant(), GetParam());
  M->put(1, 1);
  auto Clone = M->cloneEmpty();
  EXPECT_EQ(Clone->variant(), GetParam());
  EXPECT_EQ(Clone->size(), 0u);
}

TEST_P(MapVariantTest, NegativeAndExtremeKeys) {
  auto M = make();
  std::vector<int64_t> Keys = {0, -1, INT64_MIN, INT64_MAX, -42};
  for (size_t I = 0; I != Keys.size(); ++I)
    EXPECT_TRUE(M->put(Keys[I], static_cast<int64_t>(I)));
  for (size_t I = 0; I != Keys.size(); ++I) {
    const int64_t *V = M->get(Keys[I]);
    ASSERT_NE(V, nullptr);
    EXPECT_EQ(*V, static_cast<int64_t>(I));
  }
}

TEST_P(MapVariantTest, DifferentialAgainstStdMap) {
  for (uint64_t Seed : {51u, 52u, 53u, 54u, 55u}) {
    SplitMix64 Rng(Seed);
    auto M = make();
    std::map<int64_t, int64_t> Ref;
    for (int Op = 0; Op != 800; ++Op) {
      int64_t K = static_cast<int64_t>(Rng.nextBelow(100));
      switch (Rng.nextBelow(4)) {
      case 0:
      case 1: { // put (weighted)
        int64_t V = static_cast<int64_t>(Rng.nextBelow(1000));
        bool New = Ref.find(K) == Ref.end();
        EXPECT_EQ(M->put(K, V), New);
        Ref[K] = V;
        break;
      }
      case 2: { // remove
        EXPECT_EQ(M->remove(K), Ref.erase(K) > 0);
        break;
      }
      case 3: { // get
        const int64_t *V = M->get(K);
        auto It = Ref.find(K);
        if (It == Ref.end()) {
          EXPECT_EQ(V, nullptr);
        } else {
          ASSERT_NE(V, nullptr);
          EXPECT_EQ(*V, It->second);
        }
        EXPECT_EQ(M->containsKey(K), It != Ref.end());
        break;
      }
      }
      ASSERT_EQ(M->size(), Ref.size());
    }
    std::vector<std::pair<int64_t, int64_t>> Snapshot;
    M->forEach([&Snapshot](const int64_t &K, const int64_t &V) {
      Snapshot.emplace_back(K, V);
    });
    std::sort(Snapshot.begin(), Snapshot.end());
    std::vector<std::pair<int64_t, int64_t>> Expected(Ref.begin(),
                                                      Ref.end());
    EXPECT_EQ(Snapshot, Expected);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, MapVariantTest, ::testing::ValuesIn(AllMapVariants),
    [](const ::testing::TestParamInfo<MapVariant> &Info) {
      return mapVariantName(Info.param);
    });

// Order- and footprint-specific behaviour beyond the common contract.

TEST(LinkedHashMap, IteratesInInsertionOrder) {
  auto M = makeMapImpl<int64_t, int64_t>(MapVariant::LinkedHashMap);
  std::vector<int64_t> Keys = {9, 2, 7, 4};
  for (int64_t K : Keys)
    M->put(K, K * 10);
  M->put(2, 222); // overwrite must not disturb the order.
  std::vector<int64_t> Seen;
  M->forEach([&Seen](const int64_t &K, const int64_t &) {
    Seen.push_back(K);
  });
  EXPECT_EQ(Seen, Keys);
  EXPECT_EQ(*M->get(2), 222);
}

TEST(ArrayMap, IteratesInInsertionOrder) {
  auto M = makeMapImpl<int64_t, int64_t>(MapVariant::ArrayMap);
  std::vector<int64_t> Keys = {5, 1, 3};
  for (int64_t K : Keys)
    M->put(K, K);
  std::vector<int64_t> Seen;
  M->forEach([&Seen](const int64_t &K, const int64_t &) {
    Seen.push_back(K);
  });
  EXPECT_EQ(Seen, Keys);
}

TEST(ArrayMap, SmallestFootprintAtSmallSizes) {
  // The paper's premise (§3.1.2): ArrayMap is the memory-efficient map.
  for (MapVariant Other :
       {MapVariant::ChainedHashMap, MapVariant::OpenHashMap,
        MapVariant::LinkedHashMap}) {
    auto Array = makeMapImpl<int64_t, int64_t>(MapVariant::ArrayMap);
    auto Rival = makeMapImpl<int64_t, int64_t>(Other);
    for (int64_t I = 0; I != 16; ++I) {
      Array->put(I, I);
      Rival->put(I, I);
    }
    EXPECT_LT(Array->memoryFootprint(), Rival->memoryFootprint())
        << "vs " << mapVariantName(Other);
  }
}

} // namespace
