//===- AdaptiveCollectionsTest.cpp - Instance-level adaptivity tests --------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests of the instance-level adaptation (paper §3.2): the adaptive
/// variants must migrate their representation exactly when the size
/// crosses the threshold, preserve all contents across the migration,
/// and count migrations in the global statistics.
///
//===----------------------------------------------------------------------===//

#include "collections/AdaptiveList.h"
#include "collections/AdaptiveMap.h"
#include "collections/AdaptiveSet.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

using namespace cswitch;

namespace {

TEST(AdaptiveList, MigratesExactlyAboveThreshold) {
  AdaptiveListImpl<int64_t> L(10);
  for (int64_t I = 0; I != 10; ++I)
    L.push_back(I);
  EXPECT_FALSE(L.hasMigrated());
  L.push_back(10); // size 11 > threshold 10.
  EXPECT_TRUE(L.hasMigrated());
}

TEST(AdaptiveList, ContentsSurviveMigration) {
  AdaptiveListImpl<int64_t> L(16);
  for (int64_t I = 0; I != 40; ++I)
    L.push_back(I * 3);
  EXPECT_TRUE(L.hasMigrated());
  ASSERT_EQ(L.size(), 40u);
  for (size_t I = 0; I != 40; ++I)
    EXPECT_EQ(L.at(I), static_cast<int64_t>(I) * 3);
  for (int64_t I = 0; I != 40; ++I)
    EXPECT_TRUE(L.contains(I * 3));
  EXPECT_FALSE(L.contains(1));
}

TEST(AdaptiveList, IndexStaysConsistentAfterMigration) {
  AdaptiveListImpl<int64_t> L(8);
  for (int64_t I = 0; I != 20; ++I)
    L.push_back(I);
  // Mutations after migration must maintain the hash index.
  L.set(0, 100);
  EXPECT_FALSE(L.contains(0));
  EXPECT_TRUE(L.contains(100));
  EXPECT_TRUE(L.removeValue(100));
  EXPECT_FALSE(L.contains(100));
  L.removeAt(0); // removes value 1.
  EXPECT_FALSE(L.contains(1));
  EXPECT_EQ(L.size(), 18u);
}

TEST(AdaptiveList, ClearResetsToArrayRepresentation) {
  AdaptiveListImpl<int64_t> L(4);
  for (int64_t I = 0; I != 10; ++I)
    L.push_back(I);
  EXPECT_TRUE(L.hasMigrated());
  L.clear();
  EXPECT_FALSE(L.hasMigrated());
  EXPECT_EQ(L.size(), 0u);
  L.push_back(1);
  EXPECT_TRUE(L.contains(1));
}

TEST(AdaptiveList, InsertAtTriggersMigrationToo) {
  AdaptiveListImpl<int64_t> L(5);
  for (int64_t I = 0; I != 5; ++I)
    L.push_back(I);
  L.insertAt(2, 99);
  EXPECT_TRUE(L.hasMigrated());
  EXPECT_TRUE(L.contains(99));
  EXPECT_EQ(L.at(2), 99);
}

TEST(AdaptiveSet, MigratesExactlyAboveThreshold) {
  AdaptiveSetImpl<int64_t> S(6);
  for (int64_t I = 0; I != 6; ++I)
    S.add(I);
  EXPECT_FALSE(S.hasMigrated());
  // Duplicate adds do not grow the set and must not migrate it.
  S.add(3);
  EXPECT_FALSE(S.hasMigrated());
  S.add(6);
  EXPECT_TRUE(S.hasMigrated());
  EXPECT_EQ(S.size(), 7u);
}

TEST(AdaptiveSet, ContentsSurviveMigration) {
  AdaptiveSetImpl<int64_t> S(10);
  for (int64_t I = 0; I != 50; ++I)
    S.add(I * 2);
  EXPECT_TRUE(S.hasMigrated());
  EXPECT_EQ(S.size(), 50u);
  for (int64_t I = 0; I != 50; ++I) {
    EXPECT_TRUE(S.contains(I * 2));
    EXPECT_FALSE(S.contains(I * 2 + 1));
  }
}

TEST(AdaptiveSet, RemoveWorksInBothRepresentations) {
  AdaptiveSetImpl<int64_t> S(10);
  for (int64_t I = 0; I != 5; ++I)
    S.add(I);
  EXPECT_TRUE(S.remove(3));
  EXPECT_FALSE(S.remove(3));
  for (int64_t I = 10; I != 40; ++I)
    S.add(I);
  EXPECT_TRUE(S.hasMigrated());
  EXPECT_TRUE(S.remove(20));
  EXPECT_FALSE(S.contains(20));
}

TEST(AdaptiveSet, ForEachCoversBothRepresentations) {
  AdaptiveSetImpl<int64_t> Small(100);
  Small.add(1);
  Small.add(2);
  std::vector<int64_t> SeenSmall;
  Small.forEach([&SeenSmall](const int64_t &V) { SeenSmall.push_back(V); });
  EXPECT_EQ(SeenSmall, (std::vector<int64_t>{1, 2}));

  AdaptiveSetImpl<int64_t> Big(2);
  for (int64_t I = 0; I != 10; ++I)
    Big.add(I);
  std::vector<int64_t> SeenBig;
  Big.forEach([&SeenBig](const int64_t &V) { SeenBig.push_back(V); });
  std::sort(SeenBig.begin(), SeenBig.end());
  ASSERT_EQ(SeenBig.size(), 10u);
  for (int64_t I = 0; I != 10; ++I)
    EXPECT_EQ(SeenBig[static_cast<size_t>(I)], I);
}

TEST(AdaptiveMap, MigratesExactlyAboveThreshold) {
  AdaptiveMapImpl<int64_t, int64_t> M(4);
  for (int64_t I = 0; I != 4; ++I)
    M.put(I, I);
  EXPECT_FALSE(M.hasMigrated());
  M.put(0, 99); // overwrite: no growth, no migration.
  EXPECT_FALSE(M.hasMigrated());
  M.put(4, 4);
  EXPECT_TRUE(M.hasMigrated());
  EXPECT_EQ(*M.get(0), 99);
}

TEST(AdaptiveMap, ContentsSurviveMigration) {
  AdaptiveMapImpl<int64_t, int64_t> M(12);
  for (int64_t I = 0; I != 60; ++I)
    M.put(I, I * I);
  EXPECT_TRUE(M.hasMigrated());
  EXPECT_EQ(M.size(), 60u);
  for (int64_t I = 0; I != 60; ++I) {
    const int64_t *V = M.get(I);
    ASSERT_NE(V, nullptr);
    EXPECT_EQ(*V, I * I);
  }
}

TEST(AdaptiveMap, GetMutableInBothRepresentations) {
  AdaptiveMapImpl<int64_t, int64_t> M(10);
  M.put(1, 1);
  *M.getMutable(1) = 5;
  EXPECT_EQ(*M.get(1), 5);
  for (int64_t I = 2; I != 30; ++I)
    M.put(I, I);
  EXPECT_TRUE(M.hasMigrated());
  *M.getMutable(1) = 7;
  EXPECT_EQ(*M.get(1), 7);
}

TEST(AdaptiveConfigStats, MigrationsAreCounted) {
  AdaptiveConfig::global().resetStats();
  {
    AdaptiveSetImpl<int64_t> S(3);
    for (int64_t I = 0; I != 5; ++I)
      S.add(I);
  }
  {
    AdaptiveMapImpl<int64_t, int64_t> M(3);
    for (int64_t I = 0; I != 5; ++I)
      M.put(I, I);
  }
  EXPECT_EQ(AdaptiveConfig::global().migrationCount(), 2u);
  AdaptiveConfig::global().resetStats();
  EXPECT_EQ(AdaptiveConfig::global().migrationCount(), 0u);
}

TEST(AdaptiveConfigStats, GlobalThresholdsMatchPaperTable1ByDefault) {
  AdaptiveThresholds T = AdaptiveConfig::global().thresholds();
  EXPECT_EQ(T.List, 80u);
  EXPECT_EQ(T.Set, 40u);
  EXPECT_EQ(T.Map, 50u);
}

TEST(AdaptiveConfigStats, InstalledThresholdsReachNewInstances) {
  AdaptiveThresholds Old = AdaptiveConfig::global().thresholds();
  AdaptiveThresholds Custom{7, 8, 9};
  AdaptiveConfig::global().setThresholds(Custom);
  AdaptiveListImpl<int64_t> L;
  AdaptiveSetImpl<int64_t> S;
  AdaptiveMapImpl<int64_t, int64_t> M;
  EXPECT_EQ(L.threshold(), 7u);
  EXPECT_EQ(S.threshold(), 8u);
  EXPECT_EQ(M.threshold(), 9u);
  AdaptiveConfig::global().setThresholds(Old);
}

TEST(AdaptiveFootprint, HashIndexCostAppearsOnlyAfterMigration) {
  AdaptiveSetImpl<int64_t> Small(1000);
  AdaptiveSetImpl<int64_t> Big(10);
  for (int64_t I = 0; I != 100; ++I) {
    Small.add(I);
    Big.add(I);
  }
  EXPECT_FALSE(Small.hasMigrated());
  EXPECT_TRUE(Big.hasMigrated());
  // Same contents; the migrated instance pays for the hash table.
  EXPECT_GT(Big.memoryFootprint(), 100 * sizeof(int64_t));
}

} // namespace
