//===- SetVariantsTest.cpp - Parameterized set variant tests ----------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Every set variant must satisfy the identical semantic contract. Runs
/// each variant through the same suite, including a randomized
/// differential test against std::set and a tombstone-churn stress test
/// that targets the open-addressing deletion path.
///
//===----------------------------------------------------------------------===//

#include "collections/Factory.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

using namespace cswitch;

namespace {

class SetVariantTest : public ::testing::TestWithParam<SetVariant> {
protected:
  std::unique_ptr<SetImpl<int64_t>> make() {
    return makeSetImpl<int64_t>(GetParam());
  }
};

TEST_P(SetVariantTest, StartsEmpty) {
  auto S = make();
  EXPECT_EQ(S->size(), 0u);
  EXPECT_TRUE(S->empty());
  EXPECT_FALSE(S->contains(0));
  EXPECT_FALSE(S->remove(0));
}

TEST_P(SetVariantTest, AddReportsNovelty) {
  auto S = make();
  EXPECT_TRUE(S->add(5));
  EXPECT_FALSE(S->add(5));
  EXPECT_EQ(S->size(), 1u);
  EXPECT_TRUE(S->add(6));
  EXPECT_EQ(S->size(), 2u);
}

TEST_P(SetVariantTest, ContainsTracksMembership) {
  auto S = make();
  S->add(10);
  EXPECT_TRUE(S->contains(10));
  EXPECT_FALSE(S->contains(11));
  EXPECT_TRUE(S->remove(10));
  EXPECT_FALSE(S->contains(10));
  EXPECT_FALSE(S->remove(10));
}

TEST_P(SetVariantTest, ClearEmptiesAndStaysUsable) {
  auto S = make();
  for (int64_t I = 0; I != 200; ++I)
    S->add(I);
  S->clear();
  EXPECT_EQ(S->size(), 0u);
  EXPECT_FALSE(S->contains(100));
  EXPECT_TRUE(S->add(100));
  EXPECT_EQ(S->size(), 1u);
}

TEST_P(SetVariantTest, ForEachVisitsExactlyTheElements) {
  auto S = make();
  std::set<int64_t> Expected;
  SplitMix64 Rng(21);
  for (int I = 0; I != 300; ++I) {
    int64_t V = static_cast<int64_t>(Rng.nextBelow(1000));
    S->add(V);
    Expected.insert(V);
  }
  std::vector<int64_t> Seen;
  S->forEach([&Seen](const int64_t &V) { Seen.push_back(V); });
  std::sort(Seen.begin(), Seen.end());
  std::vector<int64_t> ExpectedSorted(Expected.begin(), Expected.end());
  EXPECT_EQ(Seen, ExpectedSorted);
}

TEST_P(SetVariantTest, ReservePreservesContents) {
  auto S = make();
  for (int64_t I = 0; I != 10; ++I)
    S->add(I);
  S->reserve(10000);
  EXPECT_EQ(S->size(), 10u);
  for (int64_t I = 0; I != 10; ++I)
    EXPECT_TRUE(S->contains(I));
}

TEST_P(SetVariantTest, GrowthAcrossRehashesKeepsAllElements) {
  auto S = make();
  constexpr int64_t N = 4000;
  for (int64_t I = 0; I != N; ++I)
    EXPECT_TRUE(S->add(I * 7));
  EXPECT_EQ(S->size(), static_cast<size_t>(N));
  for (int64_t I = 0; I != N; ++I)
    EXPECT_TRUE(S->contains(I * 7));
  EXPECT_FALSE(S->contains(-1));
}

TEST_P(SetVariantTest, TombstoneChurnKeepsLookupsCorrect) {
  // Repeated add/remove at stable size exercises tombstone reuse in the
  // open-addressing variants (and is harmless for the others).
  auto S = make();
  for (int64_t I = 0; I != 64; ++I)
    S->add(I);
  SplitMix64 Rng(22);
  for (int Round = 0; Round != 3000; ++Round) {
    int64_t Victim = static_cast<int64_t>(Rng.nextBelow(64));
    EXPECT_TRUE(S->remove(Victim));
    EXPECT_FALSE(S->contains(Victim));
    EXPECT_TRUE(S->add(Victim));
    EXPECT_TRUE(S->contains(Victim));
    ASSERT_EQ(S->size(), 64u);
  }
  for (int64_t I = 0; I != 64; ++I)
    EXPECT_TRUE(S->contains(I));
}

TEST_P(SetVariantTest, MemoryFootprintGrowsWithContents) {
  auto S = make();
  size_t Empty = S->memoryFootprint();
  for (int64_t I = 0; I != 1000; ++I)
    S->add(I);
  EXPECT_GT(S->memoryFootprint(), Empty);
  EXPECT_GE(S->memoryFootprint(), 1000 * sizeof(int64_t));
}

TEST_P(SetVariantTest, VariantAndCloneEmpty) {
  auto S = make();
  EXPECT_EQ(S->variant(), GetParam());
  S->add(1);
  auto Clone = S->cloneEmpty();
  EXPECT_EQ(Clone->variant(), GetParam());
  EXPECT_EQ(Clone->size(), 0u);
}

TEST_P(SetVariantTest, NegativeAndExtremeKeys) {
  auto S = make();
  std::vector<int64_t> Keys = {0, -1, INT64_MIN, INT64_MAX, -123456789,
                               987654321};
  for (int64_t K : Keys)
    EXPECT_TRUE(S->add(K));
  EXPECT_EQ(S->size(), Keys.size());
  for (int64_t K : Keys)
    EXPECT_TRUE(S->contains(K));
  for (int64_t K : Keys)
    EXPECT_TRUE(S->remove(K));
  EXPECT_TRUE(S->empty());
}

TEST_P(SetVariantTest, DifferentialAgainstStdSet) {
  for (uint64_t Seed : {31u, 32u, 33u, 34u, 35u}) {
    SplitMix64 Rng(Seed);
    auto S = make();
    std::set<int64_t> Ref;
    for (int Op = 0; Op != 800; ++Op) {
      int64_t V = static_cast<int64_t>(Rng.nextBelow(120));
      switch (Rng.nextBelow(4)) {
      case 0:
      case 1: { // add (weighted)
        EXPECT_EQ(S->add(V), Ref.insert(V).second);
        break;
      }
      case 2: { // remove
        EXPECT_EQ(S->remove(V), Ref.erase(V) > 0);
        break;
      }
      case 3: { // contains
        EXPECT_EQ(S->contains(V), Ref.count(V) > 0);
        break;
      }
      }
      ASSERT_EQ(S->size(), Ref.size());
    }
    std::vector<int64_t> Snapshot;
    S->forEach([&Snapshot](const int64_t &V) { Snapshot.push_back(V); });
    std::sort(Snapshot.begin(), Snapshot.end());
    std::vector<int64_t> Expected(Ref.begin(), Ref.end());
    EXPECT_EQ(Snapshot, Expected);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, SetVariantTest, ::testing::ValuesIn(AllSetVariants),
    [](const ::testing::TestParamInfo<SetVariant> &Info) {
      return setVariantName(Info.param);
    });

// Order-specific behaviour beyond the common contract.

TEST(LinkedHashSet, IteratesInInsertionOrder) {
  auto S = makeSetImpl<int64_t>(SetVariant::LinkedHashSet);
  std::vector<int64_t> Inserted = {5, 3, 9, 1, 7};
  for (int64_t V : Inserted)
    S->add(V);
  S->add(3); // duplicate must not disturb the order.
  std::vector<int64_t> Seen;
  S->forEach([&Seen](const int64_t &V) { Seen.push_back(V); });
  EXPECT_EQ(Seen, Inserted);
}

TEST(LinkedHashSet, OrderSurvivesRemovalAndRehash) {
  auto S = makeSetImpl<int64_t>(SetVariant::LinkedHashSet);
  for (int64_t I = 0; I != 100; ++I)
    S->add(I);
  S->remove(0);
  S->remove(50);
  S->remove(99);
  std::vector<int64_t> Seen;
  S->forEach([&Seen](const int64_t &V) { Seen.push_back(V); });
  ASSERT_EQ(Seen.size(), 97u);
  EXPECT_TRUE(std::is_sorted(Seen.begin(), Seen.end()));
  EXPECT_EQ(Seen.front(), 1);
  EXPECT_EQ(Seen.back(), 98);
}

TEST(ArraySet, IteratesInInsertionOrder) {
  auto S = makeSetImpl<int64_t>(SetVariant::ArraySet);
  std::vector<int64_t> Inserted = {42, 17, 99};
  for (int64_t V : Inserted)
    S->add(V);
  std::vector<int64_t> Seen;
  S->forEach([&Seen](const int64_t &V) { Seen.push_back(V); });
  EXPECT_EQ(Seen, Inserted);
}

TEST(CompactHashSet, SmallerFootprintThanOpenHashSet) {
  auto Compact = makeSetImpl<int64_t>(SetVariant::CompactHashSet);
  auto Open = makeSetImpl<int64_t>(SetVariant::OpenHashSet);
  for (int64_t I = 0; I != 10000; ++I) {
    Compact->add(I);
    Open->add(I);
  }
  EXPECT_LT(Compact->memoryFootprint(), Open->memoryFootprint());
}

TEST(ChainedHashSet, HigherFootprintThanOpenHashSet) {
  auto Chained = makeSetImpl<int64_t>(SetVariant::ChainedHashSet);
  auto Compact = makeSetImpl<int64_t>(SetVariant::CompactHashSet);
  for (int64_t I = 0; I != 10000; ++I) {
    Chained->add(I);
    Compact->add(I);
  }
  // Node-based chaining pays per-element pointer overhead.
  EXPECT_GT(Chained->memoryFootprint(), Compact->memoryFootprint());
}

} // namespace
