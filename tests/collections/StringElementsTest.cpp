//===- StringElementsTest.cpp - Non-integer element types --------------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The library is generic over element types even though the performance
/// model is calibrated on integers (paper Table 3 models Integer only
/// and argues the variant-level differences dwarf the data-type effect).
/// These tests instantiate every variant with std::string to pin the
/// genericity: hashing through DefaultHash<std::string>, ordering via
/// operator<, and deep-copy semantics.
///
//===----------------------------------------------------------------------===//

#include "collections/Factory.h"
#include "core/Switch.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>

using namespace cswitch;

namespace {

std::string keyOf(uint64_t I) {
  return "key-" + std::to_string(I * 7919 % 1000) + "-" +
         std::to_string(I);
}

class StringSetTest : public ::testing::TestWithParam<SetVariant> {};

TEST_P(StringSetTest, BasicSemanticsWithStrings) {
  auto S = makeSetImpl<std::string>(GetParam());
  EXPECT_TRUE(S->add("alpha"));
  EXPECT_FALSE(S->add("alpha"));
  EXPECT_TRUE(S->add("beta"));
  EXPECT_TRUE(S->contains("alpha"));
  EXPECT_FALSE(S->contains("gamma"));
  EXPECT_TRUE(S->remove("alpha"));
  EXPECT_FALSE(S->contains("alpha"));
  EXPECT_EQ(S->size(), 1u);
}

TEST_P(StringSetTest, DifferentialWithStrings) {
  SplitMix64 Rng(61);
  auto S = makeSetImpl<std::string>(GetParam());
  std::set<std::string> Ref;
  for (int Op = 0; Op != 400; ++Op) {
    std::string K = keyOf(Rng.nextBelow(80));
    switch (Rng.nextBelow(3)) {
    case 0:
      EXPECT_EQ(S->add(K), Ref.insert(K).second);
      break;
    case 1:
      EXPECT_EQ(S->remove(K), Ref.erase(K) > 0);
      break;
    case 2:
      EXPECT_EQ(S->contains(K), Ref.count(K) > 0);
      break;
    }
    ASSERT_EQ(S->size(), Ref.size());
  }
  std::vector<std::string> Seen;
  S->forEach([&Seen](const std::string &V) { Seen.push_back(V); });
  std::sort(Seen.begin(), Seen.end());
  std::vector<std::string> Expected(Ref.begin(), Ref.end());
  EXPECT_EQ(Seen, Expected);
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, StringSetTest, ::testing::ValuesIn(AllSetVariants),
    [](const ::testing::TestParamInfo<SetVariant> &Info) {
      return setVariantName(Info.param);
    });

class StringMapTest : public ::testing::TestWithParam<MapVariant> {};

TEST_P(StringMapTest, StringKeysToIntValues) {
  auto M = makeMapImpl<std::string, int64_t>(GetParam());
  EXPECT_TRUE(M->put("one", 1));
  EXPECT_TRUE(M->put("two", 2));
  EXPECT_FALSE(M->put("one", 11));
  const int64_t *V = M->get("one");
  ASSERT_NE(V, nullptr);
  EXPECT_EQ(*V, 11);
  EXPECT_EQ(M->get("three"), nullptr);
  EXPECT_TRUE(M->remove("one"));
  EXPECT_EQ(M->size(), 1u);
}

TEST_P(StringMapTest, DifferentialWithStringKeys) {
  SplitMix64 Rng(62);
  auto M = makeMapImpl<std::string, int64_t>(GetParam());
  std::map<std::string, int64_t> Ref;
  for (int Op = 0; Op != 400; ++Op) {
    std::string K = keyOf(Rng.nextBelow(60));
    switch (Rng.nextBelow(3)) {
    case 0: {
      auto V = static_cast<int64_t>(Rng.nextBelow(1000));
      bool New = Ref.find(K) == Ref.end();
      EXPECT_EQ(M->put(K, V), New);
      Ref[K] = V;
      break;
    }
    case 1:
      EXPECT_EQ(M->remove(K), Ref.erase(K) > 0);
      break;
    case 2: {
      const int64_t *V = M->get(K);
      auto It = Ref.find(K);
      if (It == Ref.end()) {
        EXPECT_EQ(V, nullptr);
      } else {
        ASSERT_NE(V, nullptr);
        EXPECT_EQ(*V, It->second);
      }
      break;
    }
    }
    ASSERT_EQ(M->size(), Ref.size());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, StringMapTest, ::testing::ValuesIn(AllMapVariants),
    [](const ::testing::TestParamInfo<MapVariant> &Info) {
      return mapVariantName(Info.param);
    });

class StringListTest : public ::testing::TestWithParam<ListVariant> {};

TEST_P(StringListTest, StringsKeepOrderAndIdentity) {
  auto L = makeListImpl<std::string>(GetParam());
  L->push_back("first");
  L->push_back("second");
  L->push_back("first"); // duplicates allowed in lists
  EXPECT_EQ(L->size(), 3u);
  EXPECT_EQ(L->at(0), "first");
  EXPECT_EQ(L->at(2), "first");
  EXPECT_TRUE(L->contains("second"));
  EXPECT_TRUE(L->removeValue("first"));
  EXPECT_EQ(L->at(0), "second");
  EXPECT_TRUE(L->contains("first")); // the second copy survives
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, StringListTest, ::testing::ValuesIn(AllListVariants),
    [](const ::testing::TestParamInfo<ListVariant> &Info) {
      return listVariantName(Info.param);
    });

TEST(StringFacades, MonitoredStringMapWorksEndToEnd) {
  auto Ctx = Switch::makeContext<Map<std::string, int64_t>>(
      "strings:map", MapVariant::ChainedHashMap);
  Map<std::string, int64_t> M = Ctx->createMap();
  for (int I = 0; I != 50; ++I)
    M.put(keyOf(static_cast<uint64_t>(I)), I);
  EXPECT_EQ(M.size(), 50u);
  EXPECT_EQ(M.profile().count(OperationKind::Populate), 50u);
}

} // namespace
