//===- FacadeMonitoringTest.cpp - Facade profiling tests --------------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The facades are the paper's "monitor" layer (§4.3): they count every
/// critical operation into the instance's workload profile and report it
/// to the allocation context exactly once, when the instance finishes its
/// life-cycle.
///
//===----------------------------------------------------------------------===//

#include "collections/Factory.h"

#include <gtest/gtest.h>

#include <optional>

using namespace cswitch;

namespace {

/// Captures finished-instance reports.
class RecordingSink : public ProfileSink {
public:
  void onInstanceFinished(size_t Slot,
                          const WorkloadProfile &Profile) override {
    ++Reports;
    LastSlot = Slot;
    LastProfile = Profile;
  }

  int Reports = 0;
  size_t LastSlot = 0;
  std::optional<WorkloadProfile> LastProfile;
};

TEST(ListFacade, CountsEveryOperationKind) {
  List<int64_t> L(makeListImpl<int64_t>(ListVariant::ArrayList));
  L.add(1);
  L.add(2);
  L.add(3);
  L.insert(1, 9);
  L.removeAt(1);
  (void)L.remove(3);
  (void)L.get(0);
  L.set(0, 5);
  (void)L.contains(5);
  L.forEach([](const int64_t &) {});

  const WorkloadProfile &P = L.profile();
  EXPECT_EQ(P.count(OperationKind::Populate), 3u);
  EXPECT_EQ(P.count(OperationKind::Middle), 2u); // insert + removeAt
  EXPECT_EQ(P.count(OperationKind::Remove), 1u);
  EXPECT_EQ(P.count(OperationKind::IndexAccess), 2u); // get + set
  EXPECT_EQ(P.count(OperationKind::Contains), 1u);
  EXPECT_EQ(P.count(OperationKind::Iterate), 1u);
  EXPECT_EQ(P.MaxSize, 4u); // 3 adds + 1 insert before the removals.
}

TEST(ListFacade, SnapshotCountsAsIterate) {
  List<int64_t> L(makeListImpl<int64_t>(ListVariant::ArrayList));
  L.add(1);
  L.add(2);
  std::vector<int64_t> V = L.snapshot();
  EXPECT_EQ(V, (std::vector<int64_t>{1, 2}));
  EXPECT_EQ(L.profile().count(OperationKind::Iterate), 1u);
}

TEST(SetFacade, CountsOperations) {
  Set<int64_t> S(makeSetImpl<int64_t>(SetVariant::OpenHashSet));
  S.add(1);
  S.add(1); // duplicate still counts as a populate call.
  (void)S.contains(1);
  (void)S.remove(1);
  S.forEach([](const int64_t &) {});
  const WorkloadProfile &P = S.profile();
  EXPECT_EQ(P.count(OperationKind::Populate), 2u);
  EXPECT_EQ(P.count(OperationKind::Contains), 1u);
  EXPECT_EQ(P.count(OperationKind::Remove), 1u);
  EXPECT_EQ(P.count(OperationKind::Iterate), 1u);
  EXPECT_EQ(P.MaxSize, 1u);
}

TEST(MapFacade, CountsOperations) {
  Map<int64_t, int64_t> M(
      makeMapImpl<int64_t, int64_t>(MapVariant::ArrayMap));
  M.put(1, 10);
  M.put(2, 20);
  (void)M.get(1);
  (void)M.getMutable(2);
  (void)M.containsKey(3);
  (void)M.remove(1);
  M.forEach([](const int64_t &, const int64_t &) {});
  const WorkloadProfile &P = M.profile();
  EXPECT_EQ(P.count(OperationKind::Populate), 2u);
  EXPECT_EQ(P.count(OperationKind::Contains), 3u); // get+getMutable+containsKey
  EXPECT_EQ(P.count(OperationKind::Remove), 1u);
  EXPECT_EQ(P.count(OperationKind::Iterate), 1u);
  EXPECT_EQ(P.MaxSize, 2u);
}

TEST(Monitoring, ReportsProfileOnDestruction) {
  RecordingSink Sink;
  {
    List<int64_t> L(makeListImpl<int64_t>(ListVariant::ArrayList), &Sink,
                    17);
    EXPECT_TRUE(L.isMonitored());
    L.add(1);
    (void)L.contains(1);
  }
  EXPECT_EQ(Sink.Reports, 1);
  EXPECT_EQ(Sink.LastSlot, 17u);
  ASSERT_TRUE(Sink.LastProfile.has_value());
  EXPECT_EQ(Sink.LastProfile->count(OperationKind::Populate), 1u);
  EXPECT_EQ(Sink.LastProfile->count(OperationKind::Contains), 1u);
}

TEST(Monitoring, UnmonitoredNeverReports) {
  List<int64_t> L(makeListImpl<int64_t>(ListVariant::ArrayList));
  EXPECT_FALSE(L.isMonitored());
}

TEST(Monitoring, MoveTransfersReportingDuty) {
  RecordingSink Sink;
  {
    List<int64_t> A(makeListImpl<int64_t>(ListVariant::ArrayList), &Sink,
                    3);
    A.add(1);
    List<int64_t> B = std::move(A);
    EXPECT_FALSE(A.isMonitored()); // NOLINT(bugprone-use-after-move)
    EXPECT_TRUE(B.isMonitored());
    B.add(2);
    // A dying here must not report.
  }
  EXPECT_EQ(Sink.Reports, 1);
  EXPECT_EQ(Sink.LastProfile->count(OperationKind::Populate), 2u);
}

TEST(Monitoring, MoveAssignmentReportsOverwrittenInstance) {
  RecordingSink Sink;
  {
    Set<int64_t> A(makeSetImpl<int64_t>(SetVariant::ArraySet), &Sink, 1);
    A.add(10);
    Set<int64_t> B(makeSetImpl<int64_t>(SetVariant::ArraySet), &Sink, 2);
    B.add(20);
    B.add(21);
    // Overwriting B finishes its original instance (slot 2)...
    B = std::move(A);
    EXPECT_EQ(Sink.Reports, 1);
    EXPECT_EQ(Sink.LastSlot, 2u);
    EXPECT_EQ(Sink.LastProfile->count(OperationKind::Populate), 2u);
  }
  // ...and slot 1 reports when B (now holding A's instance) dies.
  EXPECT_EQ(Sink.Reports, 2);
  EXPECT_EQ(Sink.LastSlot, 1u);
}

TEST(Monitoring, MapFacadeReportsToo) {
  RecordingSink Sink;
  {
    Map<int64_t, int64_t> M(
        makeMapImpl<int64_t, int64_t>(MapVariant::OpenHashMap), &Sink, 8);
    for (int64_t I = 0; I != 30; ++I)
      M.put(I, I);
  }
  EXPECT_EQ(Sink.Reports, 1);
  EXPECT_EQ(Sink.LastProfile->MaxSize, 30u);
}

TEST(Monitoring, SelfMoveAssignmentIsSafe) {
  RecordingSink Sink;
  {
    List<int64_t> L(makeListImpl<int64_t>(ListVariant::ArrayList), &Sink,
                    4);
    L.add(1);
    List<int64_t> &Ref = L;
    L = std::move(Ref);
    EXPECT_TRUE(L.isMonitored());
    EXPECT_EQ(Sink.Reports, 0);
  }
  EXPECT_EQ(Sink.Reports, 1);
}

} // namespace
