//===- SynchronizedTest.cpp - Thread-safe decorator tests --------------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//

#include "collections/Factory.h"
#include "collections/Synchronized.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace cswitch;

namespace {

TEST(SynchronizedList, ForwardsBasicOperations) {
  SynchronizedList<int64_t> L(
      makeListImpl<int64_t>(ListVariant::ArrayList));
  L.add(1);
  L.add(2);
  L.insert(1, 9);
  EXPECT_EQ(L.size(), 3u);
  EXPECT_EQ(L.get(1), 9);
  EXPECT_TRUE(L.contains(9));
  L.set(1, 5);
  EXPECT_TRUE(L.remove(5));
  L.removeAt(0);
  EXPECT_EQ(L.size(), 1u);
  EXPECT_EQ(L.variant(), ListVariant::ArrayList);
  EXPECT_GT(L.memoryFootprint(), 0u);
  L.clear();
  EXPECT_EQ(L.size(), 0u);
}

TEST(SynchronizedList, ConcurrentAppendsLoseNothing) {
  SynchronizedList<int64_t> L(
      makeListImpl<int64_t>(ListVariant::ArrayList));
  constexpr int Threads = 4;
  constexpr int PerThread = 2000;
  std::vector<std::thread> Workers;
  for (int T = 0; T != Threads; ++T) {
    Workers.emplace_back([&L, T] {
      for (int I = 0; I != PerThread; ++I)
        L.add(static_cast<int64_t>(T) * PerThread + I);
    });
  }
  for (std::thread &W : Workers)
    W.join();
  EXPECT_EQ(L.size(), static_cast<size_t>(Threads) * PerThread);
  uint64_t Sum = 0;
  L.forEachLocked(
      [&Sum](const int64_t &V) { Sum += static_cast<uint64_t>(V); });
  uint64_t N = static_cast<uint64_t>(Threads) * PerThread;
  EXPECT_EQ(Sum, N * (N - 1) / 2);
}

TEST(SynchronizedSet, ConcurrentChurnKeepsConsistency) {
  SynchronizedSet<int64_t> S(
      makeSetImpl<int64_t>(SetVariant::OpenHashSet));
  std::atomic<int64_t> NetAdds{0};
  std::vector<std::thread> Workers;
  for (int T = 0; T != 4; ++T) {
    Workers.emplace_back([&S, &NetAdds, T] {
      SplitMix64 Rng(static_cast<uint64_t>(T) + 1);
      for (int I = 0; I != 4000; ++I) {
        int64_t V = static_cast<int64_t>(Rng.nextBelow(256));
        if (Rng.nextBool(0.6)) {
          if (S.add(V))
            NetAdds.fetch_add(1, std::memory_order_relaxed);
        } else {
          if (S.remove(V))
            NetAdds.fetch_sub(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread &W : Workers)
    W.join();
  // Successful adds minus successful removes must equal the final size.
  EXPECT_EQ(static_cast<int64_t>(S.size()),
            NetAdds.load(std::memory_order_relaxed));
}

TEST(SynchronizedMap, GetCopiesUnderLock) {
  SynchronizedMap<int64_t, int64_t> M(
      makeMapImpl<int64_t, int64_t>(MapVariant::ChainedHashMap));
  EXPECT_TRUE(M.put(1, 10));
  int64_t Out = 0;
  EXPECT_TRUE(M.get(1, Out));
  EXPECT_EQ(Out, 10);
  EXPECT_FALSE(M.get(2, Out));
  EXPECT_TRUE(M.containsKey(1));
  EXPECT_TRUE(M.remove(1));
  EXPECT_EQ(M.size(), 0u);
}

TEST(SynchronizedMap, UpdateIsAtomicReadModifyWrite) {
  SynchronizedMap<int64_t, int64_t> M(
      makeMapImpl<int64_t, int64_t>(MapVariant::OpenHashMap));
  constexpr int Threads = 4;
  constexpr int PerThread = 5000;
  std::vector<std::thread> Workers;
  for (int T = 0; T != Threads; ++T) {
    Workers.emplace_back([&M] {
      for (int I = 0; I != PerThread; ++I)
        M.update(/*Key=*/7, /*Initial=*/0,
                 [](const int64_t &V) { return V + 1; });
    });
  }
  for (std::thread &W : Workers)
    W.join();
  int64_t Count = 0;
  ASSERT_TRUE(M.get(7, Count));
  // Every increment must be observed: lost updates would show here.
  EXPECT_EQ(Count, static_cast<int64_t>(Threads) * PerThread);
}

TEST(SynchronizedSet, ForEachLockedTraversesAtomically) {
  SynchronizedSet<int64_t> S(
      makeSetImpl<int64_t>(SetVariant::OpenHashSet));
  // A writer inserts V then V + 1000; a locked traversal owns the
  // mutex end to end, so it can only ever observe complete pairs plus
  // at most the single low element whose partner is still in flight
  // between the writer's two locked adds.
  std::atomic<bool> Stop{false};
  std::thread Writer([&S, &Stop] {
    int64_t V = 0;
    while (!Stop.load(std::memory_order_relaxed)) {
      S.add(V);
      S.add(V + 1000);
      V = (V + 1) % 1000;
    }
  });
  for (int Sweep = 0; Sweep != 200; ++Sweep) {
    size_t Low = 0, High = 0;
    S.forEachLocked(
        [&Low, &High](const int64_t &V) { (V < 1000 ? Low : High) += 1; });
    EXPECT_LE(High, Low);
    EXPECT_LE(Low - High, 1u);
  }
  Stop.store(true);
  Writer.join();
}

TEST(SynchronizedMap, ForEachLockedVisitsEveryEntry) {
  SynchronizedMap<int64_t, int64_t> M(
      makeMapImpl<int64_t, int64_t>(MapVariant::ChainedHashMap));
  for (int64_t I = 0; I != 64; ++I)
    M.put(I, I * 3);
  uint64_t Entries = 0;
  uint64_t Mismatches = 0;
  M.forEachLocked([&](const int64_t &K, const int64_t &V) {
    ++Entries;
    Mismatches += V != K * 3;
  });
  EXPECT_EQ(Entries, 64u);
  EXPECT_EQ(Mismatches, 0u);
}

TEST(SynchronizedMap, WorksOverEveryVariant) {
  for (MapVariant V : AllMapVariants) {
    SynchronizedMap<int64_t, int64_t> M(makeMapImpl<int64_t, int64_t>(V));
    M.put(1, 2);
    int64_t Out = 0;
    EXPECT_TRUE(M.get(1, Out)) << mapVariantName(V);
    EXPECT_EQ(M.variant(), V);
  }
}

} // namespace
