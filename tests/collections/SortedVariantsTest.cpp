//===- SortedVariantsTest.cpp - Sorted variant and AVL tests -----------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests specific to the sorted collection variants (the paper's §7
/// future-work extension): sorted iteration order, and the AVL tree's
/// balance/ordering invariants under randomized churn.
///
//===----------------------------------------------------------------------===//

#include "collections/Factory.h"
#include "collections/detail/AVLTree.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

using namespace cswitch;
using cswitch::detail::AVLTree;

namespace {

TEST(AVLTree, InsertFindEraseBasics) {
  AVLTree<int64_t, int64_t> Tree;
  EXPECT_EQ(Tree.size(), 0u);
  EXPECT_EQ(Tree.find(1), nullptr);
  EXPECT_TRUE(Tree.insertOrAssign(1, 10));
  EXPECT_FALSE(Tree.insertOrAssign(1, 20)); // overwrite
  ASSERT_NE(Tree.find(1), nullptr);
  EXPECT_EQ(*Tree.find(1), 20);
  EXPECT_TRUE(Tree.erase(1));
  EXPECT_FALSE(Tree.erase(1));
  EXPECT_EQ(Tree.size(), 0u);
}

TEST(AVLTree, StaysBalancedUnderSequentialInsertion) {
  // Sequential insertion is the classic BST degeneration case.
  AVLTree<int64_t, int64_t> Tree;
  for (int64_t I = 0; I != 4096; ++I) {
    Tree.insertOrAssign(I, I);
    if (I % 512 == 0) {
      ASSERT_TRUE(Tree.verifyInvariants());
    }
  }
  EXPECT_TRUE(Tree.verifyInvariants());
  EXPECT_EQ(Tree.size(), 4096u);
}

TEST(AVLTree, StaysBalancedUnderRandomChurn) {
  SplitMix64 Rng(91);
  AVLTree<int64_t, int64_t> Tree;
  std::map<int64_t, int64_t> Ref;
  for (int Op = 0; Op != 20000; ++Op) {
    int64_t K = static_cast<int64_t>(Rng.nextBelow(512));
    if (Rng.nextBelow(3) != 0) {
      int64_t V = static_cast<int64_t>(Rng.next());
      bool New = Ref.find(K) == Ref.end();
      EXPECT_EQ(Tree.insertOrAssign(K, V), New);
      Ref[K] = V;
    } else {
      EXPECT_EQ(Tree.erase(K), Ref.erase(K) > 0);
    }
    if (Op % 2048 == 0) {
      ASSERT_TRUE(Tree.verifyInvariants());
    }
  }
  ASSERT_TRUE(Tree.verifyInvariants());
  ASSERT_EQ(Tree.size(), Ref.size());
  // Full in-order comparison.
  auto It = Ref.begin();
  Tree.inorder([&It, &Ref](const int64_t &K, const int64_t &V) {
    ASSERT_NE(It, Ref.end());
    EXPECT_EQ(K, It->first);
    EXPECT_EQ(V, It->second);
    ++It;
  });
  EXPECT_EQ(It, Ref.end());
}

TEST(AVLTree, EraseTwoChildrenNodes) {
  AVLTree<int64_t, int64_t> Tree;
  for (int64_t K : {50, 25, 75, 12, 37, 62, 87})
    Tree.insertOrAssign(K, K);
  // 50 has two children; its successor 62 replaces it.
  EXPECT_TRUE(Tree.erase(50));
  EXPECT_EQ(Tree.find(50), nullptr);
  ASSERT_NE(Tree.find(62), nullptr);
  EXPECT_TRUE(Tree.verifyInvariants());
  EXPECT_EQ(Tree.size(), 6u);
}

TEST(AVLTree, MemoryIsReleasedOnClear) {
  int64_t LiveBefore = MemoryTracker::liveBytes();
  {
    AVLTree<int64_t, int64_t> Tree;
    for (int64_t I = 0; I != 1000; ++I)
      Tree.insertOrAssign(I, I);
    EXPECT_GT(MemoryTracker::liveBytes(), LiveBefore);
    Tree.clear();
    EXPECT_EQ(MemoryTracker::liveBytes(), LiveBefore);
    Tree.insertOrAssign(1, 1); // usable after clear
  }
  EXPECT_EQ(MemoryTracker::liveBytes(), LiveBefore);
}

TEST(TreeSet, IteratesInAscendingOrder) {
  auto S = makeSetImpl<int64_t>(SetVariant::TreeSet);
  SplitMix64 Rng(92);
  std::set<int64_t> Ref;
  for (int I = 0; I != 500; ++I) {
    int64_t V = static_cast<int64_t>(Rng.nextBelow(10000));
    S->add(V);
    Ref.insert(V);
  }
  std::vector<int64_t> Seen;
  S->forEach([&Seen](const int64_t &V) { Seen.push_back(V); });
  EXPECT_TRUE(std::is_sorted(Seen.begin(), Seen.end()));
  EXPECT_EQ(Seen.size(), Ref.size());
}

TEST(SortedArraySet, IteratesInAscendingOrder) {
  auto S = makeSetImpl<int64_t>(SetVariant::SortedArraySet);
  for (int64_t V : {9, 1, 5, 3, 7})
    S->add(V);
  std::vector<int64_t> Seen;
  S->forEach([&Seen](const int64_t &V) { Seen.push_back(V); });
  EXPECT_EQ(Seen, (std::vector<int64_t>{1, 3, 5, 7, 9}));
}

TEST(TreeMap, IteratesInAscendingKeyOrder) {
  auto M = makeMapImpl<int64_t, int64_t>(MapVariant::TreeMap);
  for (int64_t K : {40, 10, 30, 20})
    M->put(K, K * 2);
  std::vector<int64_t> Keys;
  M->forEach([&Keys](const int64_t &K, const int64_t &) {
    Keys.push_back(K);
  });
  EXPECT_EQ(Keys, (std::vector<int64_t>{10, 20, 30, 40}));
}

TEST(SortedArrayMap, IteratesInAscendingKeyOrder) {
  auto M = makeMapImpl<int64_t, int64_t>(MapVariant::SortedArrayMap);
  for (int64_t K : {40, 10, 30, 20})
    M->put(K, K * 2);
  std::vector<int64_t> Keys;
  M->forEach([&Keys](const int64_t &K, const int64_t &) {
    Keys.push_back(K);
  });
  EXPECT_EQ(Keys, (std::vector<int64_t>{10, 20, 30, 40}));
  EXPECT_EQ(*M->get(30), 60);
}

TEST(SortedArraySet, FootprintMatchesPlainArraySet) {
  auto Sorted = makeSetImpl<int64_t>(SetVariant::SortedArraySet);
  auto Plain = makeSetImpl<int64_t>(SetVariant::ArraySet);
  for (int64_t I = 0; I != 1000; ++I) {
    Sorted->add(I * 3);
    Plain->add(I * 3);
  }
  // Both are bare arrays: same asymptotic footprint.
  EXPECT_NEAR(static_cast<double>(Sorted->memoryFootprint()),
              static_cast<double>(Plain->memoryFootprint()),
              static_cast<double>(Plain->memoryFootprint()) * 0.05);
}

TEST(TreeSet, HigherFootprintThanSortedArray) {
  auto Tree = makeSetImpl<int64_t>(SetVariant::TreeSet);
  auto Sorted = makeSetImpl<int64_t>(SetVariant::SortedArraySet);
  for (int64_t I = 0; I != 1000; ++I) {
    Tree->add(I);
    Sorted->add(I);
  }
  EXPECT_GT(Tree->memoryFootprint(), 2 * Sorted->memoryFootprint());
}

} // namespace
