//===- VariantsTest.cpp - Variant identity tests -----------------------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//

#include "collections/Variants.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

using namespace cswitch;

namespace {

TEST(Variants, CountsMatchEnumArrays) {
  EXPECT_EQ(AllListVariants.size(), NumListVariants);
  EXPECT_EQ(AllSetVariants.size(), NumSetVariants);
  EXPECT_EQ(AllMapVariants.size(), NumMapVariants);
  EXPECT_EQ(numVariantsOf(AbstractionKind::List), NumListVariants);
  EXPECT_EQ(numVariantsOf(AbstractionKind::Set), NumSetVariants);
  EXPECT_EQ(numVariantsOf(AbstractionKind::Map), NumMapVariants);
}

TEST(Variants, NamesAreUniqueAndRoundTrip) {
  std::set<std::string> Names;
  for (ListVariant V : AllListVariants) {
    Names.insert(listVariantName(V));
    ListVariant Out;
    ASSERT_TRUE(parseListVariant(listVariantName(V), Out));
    EXPECT_EQ(Out, V);
  }
  EXPECT_EQ(Names.size(), NumListVariants);
  Names.clear();
  for (SetVariant V : AllSetVariants) {
    Names.insert(setVariantName(V));
    SetVariant Out;
    ASSERT_TRUE(parseSetVariant(setVariantName(V), Out));
    EXPECT_EQ(Out, V);
  }
  EXPECT_EQ(Names.size(), NumSetVariants);
  Names.clear();
  for (MapVariant V : AllMapVariants) {
    Names.insert(mapVariantName(V));
    MapVariant Out;
    ASSERT_TRUE(parseMapVariant(mapVariantName(V), Out));
    EXPECT_EQ(Out, V);
  }
  EXPECT_EQ(Names.size(), NumMapVariants);
}

TEST(Variants, ParseRejectsUnknownNames) {
  ListVariant L;
  SetVariant S;
  MapVariant M;
  EXPECT_FALSE(parseListVariant("NoSuchList", L));
  EXPECT_FALSE(parseSetVariant("", S));
  EXPECT_FALSE(parseMapVariant("ArrayList", M)); // wrong abstraction.
}

TEST(VariantId, TagsAbstractions) {
  VariantId L = VariantId::of(ListVariant::AdaptiveList);
  EXPECT_EQ(L.Abstraction, AbstractionKind::List);
  EXPECT_EQ(L.name(), "AdaptiveList");
  VariantId S = VariantId::of(SetVariant::CompactHashSet);
  EXPECT_EQ(S.name(), "CompactHashSet");
  VariantId M = VariantId::of(MapVariant::ArrayMap);
  EXPECT_EQ(M.name(), "ArrayMap");
  EXPECT_FALSE(L == S);
  EXPECT_TRUE(L == VariantId::of(ListVariant::AdaptiveList));
}

TEST(Variants, AbstractionKindNames) {
  EXPECT_STREQ(abstractionKindName(AbstractionKind::List), "list");
  EXPECT_STREQ(abstractionKindName(AbstractionKind::Set), "set");
  EXPECT_STREQ(abstractionKindName(AbstractionKind::Map), "map");
}

} // namespace
