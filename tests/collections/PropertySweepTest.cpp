//===- PropertySweepTest.cpp - Parameterized property sweeps -----------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property-style sweeps over (variant × size) combinations: invariants
/// that must hold for every variant at every scale — exactness of
/// size(), conservation of elements across churn, footprint sanity, and
/// snapshot/forEach agreement. Complements the randomized differential
/// suites with explicit scale coverage.
///
//===----------------------------------------------------------------------===//

#include "collections/Factory.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

using namespace cswitch;

namespace {

using SetSweepParam = std::tuple<SetVariant, size_t>;

class SetSweepTest : public ::testing::TestWithParam<SetSweepParam> {
protected:
  SetVariant variant() const { return std::get<0>(GetParam()); }
  size_t size() const { return std::get<1>(GetParam()); }
};

TEST_P(SetSweepTest, ExactMembershipAtScale) {
  auto S = makeSetImpl<int64_t>(variant());
  size_t N = size();
  // Insert evens; probe evens (hits) and odds (misses).
  for (size_t I = 0; I != N; ++I)
    ASSERT_TRUE(S->add(static_cast<int64_t>(I * 2)));
  ASSERT_EQ(S->size(), N);
  for (size_t I = 0; I != N; ++I) {
    EXPECT_TRUE(S->contains(static_cast<int64_t>(I * 2)));
    EXPECT_FALSE(S->contains(static_cast<int64_t>(I * 2 + 1)));
  }
}

TEST_P(SetSweepTest, ElementsConservedAcrossChurn) {
  SplitMix64 Rng(1234 + size());
  auto S = makeSetImpl<int64_t>(variant());
  size_t N = size();
  for (size_t I = 0; I != N; ++I)
    S->add(static_cast<int64_t>(I));
  // Churn half the elements out and back.
  for (size_t Round = 0; Round != 2; ++Round) {
    for (size_t I = 0; I < N; I += 2) {
      ASSERT_TRUE(S->remove(static_cast<int64_t>(I)));
      ASSERT_TRUE(S->add(static_cast<int64_t>(I)));
    }
  }
  ASSERT_EQ(S->size(), N);
  uint64_t Sum = 0;
  S->forEach([&Sum](const int64_t &V) { Sum += static_cast<uint64_t>(V); });
  EXPECT_EQ(Sum, static_cast<uint64_t>(N) * (N - 1) / 2);
}

TEST_P(SetSweepTest, FootprintAtLeastPayloadAndBounded) {
  auto S = makeSetImpl<int64_t>(variant());
  size_t N = size();
  for (size_t I = 0; I != N; ++I)
    S->add(static_cast<int64_t>(I));
  size_t Footprint = S->memoryFootprint();
  EXPECT_GE(Footprint, N * sizeof(int64_t));
  // No variant should need more than 64 bytes per 8-byte element plus a
  // fixed overhead — a loose sanity ceiling that catches accounting bugs.
  EXPECT_LE(Footprint, N * 64 + 4096);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SetSweepTest,
    ::testing::Combine(::testing::ValuesIn(AllSetVariants),
                       ::testing::Values<size_t>(3, 47, 1024)),
    [](const ::testing::TestParamInfo<SetSweepParam> &Info) {
      return std::string(setVariantName(std::get<0>(Info.param))) + "_" +
             std::to_string(std::get<1>(Info.param));
    });

using MapSweepParam = std::tuple<MapVariant, size_t>;

class MapSweepTest : public ::testing::TestWithParam<MapSweepParam> {
protected:
  MapVariant variant() const { return std::get<0>(GetParam()); }
  size_t size() const { return std::get<1>(GetParam()); }
};

TEST_P(MapSweepTest, ValuesSurviveOverwriteChurn) {
  auto M = makeMapImpl<int64_t, int64_t>(variant());
  size_t N = size();
  for (size_t I = 0; I != N; ++I)
    M->put(static_cast<int64_t>(I), -1);
  // Overwrite everything twice; the last write wins.
  for (int Round = 0; Round != 2; ++Round)
    for (size_t I = 0; I != N; ++I)
      M->put(static_cast<int64_t>(I),
             static_cast<int64_t>(I * (Round + 2)));
  ASSERT_EQ(M->size(), N);
  for (size_t I = 0; I != N; ++I) {
    const int64_t *V = M->get(static_cast<int64_t>(I));
    ASSERT_NE(V, nullptr);
    EXPECT_EQ(*V, static_cast<int64_t>(I * 3));
  }
}

TEST_P(MapSweepTest, ForEachVisitsEachMappingOnce) {
  auto M = makeMapImpl<int64_t, int64_t>(variant());
  size_t N = size();
  for (size_t I = 0; I != N; ++I)
    M->put(static_cast<int64_t>(I), 1);
  uint64_t Visits = 0;
  uint64_t KeySum = 0;
  M->forEach([&](const int64_t &K, const int64_t &V) {
    ++Visits;
    KeySum += static_cast<uint64_t>(K);
    EXPECT_EQ(V, 1);
  });
  EXPECT_EQ(Visits, N);
  EXPECT_EQ(KeySum, static_cast<uint64_t>(N) * (N - 1) / 2);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MapSweepTest,
    ::testing::Combine(::testing::ValuesIn(AllMapVariants),
                       ::testing::Values<size_t>(3, 47, 1024)),
    [](const ::testing::TestParamInfo<MapSweepParam> &Info) {
      return std::string(mapVariantName(std::get<0>(Info.param))) + "_" +
             std::to_string(std::get<1>(Info.param));
    });

using ListSweepParam = std::tuple<ListVariant, size_t>;

class ListSweepTest : public ::testing::TestWithParam<ListSweepParam> {
protected:
  ListVariant variant() const { return std::get<0>(GetParam()); }
  size_t size() const { return std::get<1>(GetParam()); }
};

TEST_P(ListSweepTest, PositionalIntegrityAfterInteriorChurn) {
  auto L = makeListImpl<int64_t>(variant());
  size_t N = size();
  for (size_t I = 0; I != N; ++I)
    L->push_back(static_cast<int64_t>(I));
  // Insert a sentinel in the middle and remove it again, repeatedly.
  for (int Round = 0; Round != 8; ++Round) {
    L->insertAt(N / 2, -7);
    ASSERT_EQ(L->at(N / 2), -7);
    L->removeAt(N / 2);
  }
  ASSERT_EQ(L->size(), N);
  for (size_t I = 0; I != N; ++I)
    ASSERT_EQ(L->at(I), static_cast<int64_t>(I));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ListSweepTest,
    ::testing::Combine(::testing::ValuesIn(AllListVariants),
                       ::testing::Values<size_t>(3, 47, 1024)),
    [](const ::testing::TestParamInfo<ListSweepParam> &Info) {
      return std::string(listVariantName(std::get<0>(Info.param))) + "_" +
             std::to_string(std::get<1>(Info.param));
    });

} // namespace
