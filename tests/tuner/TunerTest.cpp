//===- TunerTest.cpp - Offline autotuner tests ----------------------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
//
// Tests of the evolutionary tuner (DESIGN.md §13): determinism (same
// seed + corpus gives a byte-identical artifact; parallel evaluation
// equals serial), fitness sanity (the winner never loses to the paper
// defaults it starts from), the parameter space's clamping, the
// validated AdaptiveConfig setters, the per-context threshold override,
// and the runtime artifact-application path (Switch::applyTuning +
// telemetry provenance).
//
//===----------------------------------------------------------------------===//

#include "core/Switch.h"
#include "model/DefaultModel.h"
#include "replay/TraceRecorder.h"
#include "support/Random.h"
#include "tuner/Tuner.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <limits>

using namespace cswitch;
using namespace cswitch::tuner;

namespace {

std::shared_ptr<const PerformanceModel> testModel() {
  static std::shared_ptr<const PerformanceModel> Model =
      std::make_shared<const PerformanceModel>(defaultPerformanceModel());
  return Model;
}

/// Records a lookup-heavy list + churny set workload: enough signal for
/// the search to beat the defaults, small enough to keep tests fast.
OpTrace recordedTrace(size_t Instances, uint64_t Seed) {
  TraceRecorder Rec;
  ContextOptions Options;
  Options.LogEvents = false;
  Options.Recorder = &Rec;
  ListContext<int64_t> Lists("tuner-test:list", ListVariant::ArrayList,
                             testModel(), SelectionRule::timeRule(),
                             Options);
  SetContext<int64_t> Sets("tuner-test:set", SetVariant::SortedArraySet,
                           testModel(), SelectionRule::timeRule(), Options);
  SplitMix64 Rng(Seed);
  for (size_t I = 0; I != Instances; ++I) {
    List<int64_t> L = Lists.createList();
    Set<int64_t> S = Sets.createSet();
    size_t N = 40 + Rng.nextBelow(40);
    for (size_t Op = 0; Op != N; ++Op) {
      L.add(static_cast<int64_t>(Op));
      S.add(static_cast<int64_t>(Rng.nextBelow(32)));
    }
    for (size_t Op = 0; Op != 4 * N; ++Op)
      (void)L.contains(static_cast<int64_t>(Rng.nextBelow(2 * N)));
    (void)S.remove(static_cast<int64_t>(Rng.nextBelow(32)));
    if (I % 8 == 7) {
      Lists.evaluate();
      Sets.evaluate();
    }
  }
  return Rec.trace();
}

TunerOptions smallSearch() {
  TunerOptions Options;
  Options.Population = 8;
  Options.Generations = 4;
  return Options;
}

TEST(ParameterSpace, ClampsOnEveryWritePath) {
  ParameterSet Params;
  // Defaults are the paper values.
  EXPECT_EQ(Params.get(ParamId::AdaptiveListThreshold), 80.0);
  EXPECT_EQ(Params.get(ParamId::ContextWindow), 100.0);

  Params.set(ParamId::AdaptiveListThreshold, 1e18);
  EXPECT_EQ(Params.get(ParamId::AdaptiveListThreshold), 4096.0);
  Params.set(ParamId::AdaptiveListThreshold, -5.0);
  EXPECT_EQ(Params.get(ParamId::AdaptiveListThreshold), 8.0);
  // Integer parameters round to integral values.
  Params.set(ParamId::ContextWindow, 99.7);
  EXPECT_EQ(Params.get(ParamId::ContextWindow), 100.0);
  // Non-finite input falls back to the default, not garbage.
  Params.set(ParamId::StoreDecay,
             std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(Params.get(ParamId::StoreDecay), 0.5);

  // The typed slices reflect the genome.
  Params.set(ParamId::AdaptiveMapThreshold, 200);
  EXPECT_EQ(Params.thresholds().Map, 200u);
  Params.set(ParamId::ContentionShards, 32);
  EXPECT_EQ(Params.contention().Shards, 32u);
}

TEST(AdaptiveConfigValidation, RejectsOutOfRangeThresholds) {
  AdaptiveThresholds T;
  std::string Error;
  EXPECT_TRUE(validateThresholds(T, &Error)) << Error;

  T.List = 0;
  EXPECT_FALSE(validateThresholds(T, &Error));
  EXPECT_NE(Error.find("List"), std::string::npos);

  T.List = MaxAdaptiveThreshold + 1;
  EXPECT_FALSE(validateThresholds(T));

  // The checked setter refuses without touching the live config.
  AdaptiveThresholds Before = AdaptiveConfig::global().thresholds();
  EXPECT_FALSE(AdaptiveConfig::global().setThresholdsChecked(T));
  EXPECT_EQ(AdaptiveConfig::global().thresholds().List, Before.List);
}

TEST(AdaptiveConfigValidation, RejectsPathologicalContention) {
  ContentionPolicy P;
  std::string Error;
  EXPECT_TRUE(validateContention(P, &Error)) << Error;

  P.Smoothing = 0.0;
  EXPECT_FALSE(validateContention(P, &Error));
  P.Smoothing = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(validateContention(P));
  P.Smoothing = 0.5;
  P.Shards = 1 << 20;
  EXPECT_FALSE(validateContention(P, &Error));
  EXPECT_NE(Error.find("shards"), std::string::npos);
}

TEST(Tuner, SameSeedAndCorpusGiveByteIdenticalArtifacts) {
  OpTrace Trace = recordedTrace(48, 7);
  auto RunOnce = [&] {
    Tuner Search(testModel(), smallSearch());
    Search.addTrace(Trace);
    TunerResult Result = Search.run();
    return encodeTuningArtifact(Search.makeArtifact(Result));
  };
  std::string First = RunOnce();
  std::string Second = RunOnce();
  EXPECT_EQ(First, Second);
  EXPECT_FALSE(First.empty());
}

TEST(Tuner, ParallelEvaluationEqualsSerial) {
  OpTrace Trace = recordedTrace(48, 7);
  auto RunWith = [&](unsigned Threads) {
    TunerOptions Options = smallSearch();
    Options.Threads = Threads;
    Tuner Search(testModel(), Options);
    Search.addTrace(Trace);
    TunerResult Result = Search.run();
    return encodeTuningArtifact(Search.makeArtifact(Result));
  };
  EXPECT_EQ(RunWith(1), RunWith(4));
}

TEST(Tuner, WinnerNeverLosesToTheDefaults) {
  OpTrace Trace = recordedTrace(64, 11);
  Tuner Search(testModel(), smallSearch());
  Search.addTrace(Trace);
  TunerResult Result = Search.run();
  // Generation 0 contains the default genome and elitism never drops
  // the champion, so Best <= Baseline always holds.
  EXPECT_LE(Result.BestFitness, Result.BaselineFitness + 1e-12);
  EXPECT_GT(Result.GenerationsRun, 0u);
  EXPECT_EQ(Result.History.size(), Result.GenerationsRun);
  EXPECT_GT(Result.Evaluations, 0u);
}

TEST(Tuner, ArtifactCarriesProvenance) {
  OpTrace Trace = recordedTrace(32, 3);
  TunerOptions Options = smallSearch();
  Options.Seed = 0xfeed;
  Tuner Search(testModel(), Options);
  Search.addTrace(Trace);
  TunerResult Result = Search.run();
  TuningArtifact Artifact = Search.makeArtifact(Result);
  EXPECT_EQ(Artifact.Seed, 0xfeedu);
  EXPECT_EQ(Artifact.Population, Options.Population);
  EXPECT_EQ(Artifact.CorpusDigest, Search.corpusDigest());
  EXPECT_FALSE(Artifact.HostFingerprint.empty());
  EXPECT_EQ(Artifact.Rows.size(), NumTunableParams);
  EXPECT_DOUBLE_EQ(Artifact.WinnerFitness, Result.BestFitness);
  // The encoded artifact decodes back to the winning genome.
  ParameterSet Params;
  std::string Error;
  TuningArtifact Decoded;
  ASSERT_TRUE(decodeTuningArtifact(encodeTuningArtifact(Artifact), Decoded,
                                   &Error))
      << Error;
  ASSERT_TRUE(paramsFromArtifact(Decoded, Params, &Error)) << Error;
  EXPECT_EQ(Params, Result.Best);
}

TEST(Tuner, EvaluateIsMemoizedAndDeterministic) {
  OpTrace Trace = recordedTrace(24, 5);
  Tuner Search(testModel(), smallSearch());
  Search.addTrace(Trace);
  ParameterSet Defaults;
  double Baseline = Search.evaluate(Defaults);
  // The default genome scores 1.0 against itself (up to the
  // regularization term, which is zero at the defaults).
  EXPECT_NEAR(Baseline, 1.0, 1e-9);
  EXPECT_EQ(Search.evaluate(Defaults), Baseline);

  ParameterSet Other;
  Other.set(ParamId::ContextWindow, 16);
  double First = Search.evaluate(Other);
  EXPECT_EQ(Search.evaluate(Other), First);
}

TEST(ContextOptionsOverride, AdaptiveThresholdsApplyPerContext) {
  // A context with an AdaptiveOverride consults it instead of the
  // global AdaptiveConfig — the mechanism tuned genomes and simulated
  // policies rely on for race-free parallel evaluation.
  AdaptiveThresholds Tuned;
  Tuned.List = 16;
  ContextOptions Options;
  Options.LogEvents = false;
  Options.AdaptiveOverride = Tuned;
  ListContext<int64_t> Ctx("tuner-test:override", ListVariant::AdaptiveList,
                           testModel(), SelectionRule::timeRule(), Options);
  List<int64_t> L = Ctx.createList();
  for (int64_t V = 0; V != 32; ++V)
    L.add(V);
  // With the global default threshold (80) this stays an array; the
  // override (16) makes the adaptive impl transition to a hash at 32
  // elements, observable through the footprint jump.
  ListContext<int64_t> Global("tuner-test:noshadow", ListVariant::AdaptiveList,
                              testModel(), SelectionRule::timeRule(),
                              ContextOptions{}.logEvents(false));
  List<int64_t> G = Global.createList();
  for (int64_t V = 0; V != 32; ++V)
    G.add(V);
  EXPECT_EQ(L.size(), G.size());
  EXPECT_GT(L.memoryFootprint(), G.memoryFootprint());
}

TEST(SwitchApplyTuning, InstallsArtifactAndRecordsProvenance) {
  // Build a tuned artifact with a distinctive window size.
  ParameterSet Params;
  Params.set(ParamId::ContextWindow, 72);
  Params.set(ParamId::AdaptiveListThreshold, 96);
  TuningArtifact Artifact = artifactFromParams(Params);
  Artifact.HostFingerprint = "test/apply";
  Artifact.Seed = 42;
  Artifact.CorpusDigest = "crc32:00000000";
  const char *Path = "tuner_apply_test.cstune";
  std::string Error;
  ASSERT_TRUE(writeTuningArtifactToFile(Path, Artifact, &Error)) << Error;

  TuningStats Before = Switch::telemetry().Tuning;
  ASSERT_TRUE(Switch::applyTuning(Path, &Error)) << Error;
  EXPECT_EQ(Switch::defaultContextOptions().WindowSize, 72u);
  EXPECT_EQ(AdaptiveConfig::global().thresholds().List, 96u);
  TuningStats After = Switch::telemetry().Tuning;
  EXPECT_EQ(After.Loads, Before.Loads + 1);
  EXPECT_EQ(After.Source, Path);
  EXPECT_EQ(After.Fingerprint, "test/apply");
  EXPECT_EQ(After.Parameters, NumTunableParams);

  // A corrupt artifact is counted and rejected without changing the
  // installed configuration.
  FILE *F = std::fopen(Path, "wb");
  ASSERT_NE(F, nullptr);
  std::fputs("cswitch-tuning-v1 garbage", F);
  std::fclose(F);
  EXPECT_FALSE(Switch::applyTuning(Path, &Error));
  EXPECT_FALSE(Error.empty());
  TuningStats Failed = Switch::telemetry().Tuning;
  EXPECT_EQ(Failed.LoadFailures, After.LoadFailures + 1);
  EXPECT_EQ(Switch::defaultContextOptions().WindowSize, 72u);

  std::remove(Path);

  // Restore the process defaults for other tests.
  Switch::configure(SwitchConfig{});
  AdaptiveConfig::global().setThresholds(AdaptiveThresholds{});
  AdaptiveConfig::global().setContention(ContentionPolicy{});
}

} // namespace
