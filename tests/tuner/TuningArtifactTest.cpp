//===- TuningArtifactTest.cpp - cswitch-tuning-v1 codec tests -------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
//
// Fuzz-style totality tests of the tuned-configuration artifact codec,
// mirroring ModelArtifactTest: truncation at every offset, single-byte
// corruption, semantic validation (non-finite / out-of-range /
// non-integral values, unknown names, wrong row counts), and crash-safe
// file installs.
//
//===----------------------------------------------------------------------===//

#include "tuner/TuningArtifact.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <limits>
#include <string>

using namespace cswitch;
using namespace cswitch::tuner;

namespace {

/// Artifacts compare through their canonical encoding (the codec's own
/// definition of identity).
bool sameArtifact(const TuningArtifact &A, const TuningArtifact &B) {
  return encodeTuningArtifact(A) == encodeTuningArtifact(B);
}

TuningArtifact sampleArtifact() {
  ParameterSet Params;
  Params.set(ParamId::AdaptiveListThreshold, 128);
  Params.set(ParamId::ContextWindow, 64);
  Params.set(ParamId::ContextFinishedRatio, 0.45);
  Params.set(ParamId::RuleTimeThreshold, 0.7);
  TuningArtifact Artifact = artifactFromParams(Params);
  Artifact.HostFingerprint = "testhost/x86_64/c8";
  Artifact.Seed = 0x1905;
  Artifact.Generations = 12;
  Artifact.Population = 24;
  Artifact.Evaluations = 173;
  Artifact.CorpusDigest = "crc32:0badf00d";
  Artifact.TimeWeight = 1.0;
  Artifact.AllocWeight = 0.25;
  Artifact.WinnerFitness = 0.8125;
  Artifact.BaselineFitness = 1.0;
  return Artifact;
}

/// Replaces the value of the row named \p Name (present by
/// construction — artifactFromParams emits every parameter).
void setRow(TuningArtifact &Artifact, const std::string &Name,
            double Value) {
  for (TuningArtifact::Row &Row : Artifact.Rows)
    if (Row.Name == Name) {
      Row.Value = Value;
      return;
    }
  FAIL() << "no row named " << Name;
}

TEST(TuningArtifact, EncodeDecodeRoundTrips) {
  TuningArtifact Artifact = sampleArtifact();
  std::string Bytes = encodeTuningArtifact(Artifact);
  TuningArtifact Decoded;
  std::string Error;
  ASSERT_TRUE(decodeTuningArtifact(Bytes, Decoded, &Error)) << Error;
  EXPECT_TRUE(sameArtifact(Decoded, Artifact));
  EXPECT_EQ(Decoded.HostFingerprint, Artifact.HostFingerprint);
  EXPECT_EQ(Decoded.Seed, Artifact.Seed);
  EXPECT_EQ(Decoded.CorpusDigest, Artifact.CorpusDigest);
  EXPECT_EQ(Decoded.Rows.size(), NumTunableParams);
  // Canonical: re-encoding reproduces the exact bytes.
  EXPECT_EQ(encodeTuningArtifact(Decoded), Bytes);
}

TEST(TuningArtifact, EncodingIsCanonicalAcrossInputOrder) {
  TuningArtifact Artifact = sampleArtifact();
  TuningArtifact Shuffled = Artifact;
  std::reverse(Shuffled.Rows.begin(), Shuffled.Rows.end());
  EXPECT_EQ(encodeTuningArtifact(Shuffled), encodeTuningArtifact(Artifact));
}

TEST(TuningArtifact, ParamsRoundTripThroughArtifact) {
  ParameterSet Params;
  Params.set(ParamId::AdaptiveSetThreshold, 512);
  Params.set(ParamId::StoreDecay, 0.3);
  Params.set(ParamId::ContentionShards, 16);
  ParameterSet Out;
  std::string Error;
  ASSERT_TRUE(paramsFromArtifact(artifactFromParams(Params), Out, &Error))
      << Error;
  EXPECT_EQ(Out, Params);
}

// The decoder must be total: truncation at EVERY offset is rejected
// without crashing, and the output is left empty.
TEST(TuningArtifact, TruncationAtEveryOffsetIsRejected) {
  std::string Bytes = encodeTuningArtifact(sampleArtifact());
  for (size_t Len = 0; Len != Bytes.size(); ++Len) {
    TuningArtifact Out;
    EXPECT_FALSE(decodeTuningArtifact(Bytes.substr(0, Len), Out))
        << "accepted truncation at offset " << Len;
    EXPECT_TRUE(sameArtifact(Out, TuningArtifact()))
        << "output not cleared at " << Len;
  }
}

// Flipping any single byte must never be silently accepted as the
// original document (CRCs cover header and rows; the envelope fields
// are structurally checked).
TEST(TuningArtifact, SingleByteCorruptionNeverYieldsOriginal) {
  TuningArtifact Artifact = sampleArtifact();
  std::string Bytes = encodeTuningArtifact(Artifact);
  for (size_t I = 0; I != Bytes.size(); ++I) {
    std::string Corrupt = Bytes;
    Corrupt[I] = static_cast<char>(Corrupt[I] ^ 0x20);
    TuningArtifact Out;
    if (decodeTuningArtifact(Corrupt, Out)) {
      EXPECT_FALSE(sameArtifact(Out, Artifact))
          << "bit flip at " << I << " undetected";
    }
  }
}

// Whatever a mutated document decodes to must still be semantically
// valid — decode success implies a convertible, in-bounds ParameterSet.
TEST(TuningArtifact, EveryAcceptedMutationYieldsValidParams) {
  std::string Bytes = encodeTuningArtifact(sampleArtifact());
  for (size_t I = 17; I != Bytes.size(); ++I) {
    std::string Corrupt = Bytes;
    Corrupt[I] = static_cast<char>(0xFF);
    TuningArtifact Out;
    if (decodeTuningArtifact(Corrupt, Out)) {
      ParameterSet Params;
      EXPECT_TRUE(paramsFromArtifact(Out, Params))
          << "mutation at " << I << " decoded to inconvertible rows";
    }
  }
}

TEST(TuningArtifact, BadMagicAndVersionAreRejected) {
  std::string Bytes = encodeTuningArtifact(sampleArtifact());
  TuningArtifact Out;
  std::string Error;

  std::string WrongMagic = Bytes;
  WrongMagic[0] = 'X';
  EXPECT_FALSE(decodeTuningArtifact(WrongMagic, Out, &Error));
  EXPECT_NE(Error.find("magic"), std::string::npos);

  // Other cswitch documents are not tuning artifacts.
  EXPECT_FALSE(decodeTuningArtifact("cswitch-store-v1\x01\x00", Out, &Error));
  EXPECT_FALSE(decodeTuningArtifact("cswitch-model-v2\0\x01"
                                    "xxxx",
                                    Out, &Error));

  std::string WrongVersion = Bytes;
  WrongVersion[17] = 0x7f; // The version varint sits right after magic.
  EXPECT_FALSE(decodeTuningArtifact(WrongVersion, Out, &Error));
  EXPECT_NE(Error.find("version"), std::string::npos);
}

TEST(TuningArtifact, TrailingBytesAreRejected) {
  std::string Bytes = encodeTuningArtifact(sampleArtifact());
  TuningArtifact Out;
  std::string Error;
  EXPECT_FALSE(decodeTuningArtifact(Bytes + "x", Out, &Error));
  EXPECT_NE(Error.find("trailing"), std::string::npos);
}

TEST(TuningArtifact, NonFiniteValuesAreRejected) {
  TuningArtifact Artifact = sampleArtifact();
  setRow(Artifact, "store.decay",
         std::numeric_limits<double>::quiet_NaN());
  TuningArtifact Out;
  std::string Error;
  EXPECT_FALSE(
      decodeTuningArtifact(encodeTuningArtifact(Artifact), Out, &Error));
  EXPECT_NE(Error.find("non-finite"), std::string::npos);

  TuningArtifact BadHeader = sampleArtifact();
  BadHeader.WinnerFitness = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(
      decodeTuningArtifact(encodeTuningArtifact(BadHeader), Out, &Error));

  TuningArtifact BadWeight = sampleArtifact();
  BadWeight.AllocWeight = -1.0;
  EXPECT_FALSE(
      decodeTuningArtifact(encodeTuningArtifact(BadWeight), Out, &Error));
  EXPECT_NE(Error.find("weight"), std::string::npos);
}

TEST(TuningArtifact, OutOfRangeValuesAreRejected) {
  TuningArtifact Artifact = sampleArtifact();
  setRow(Artifact, "adaptive.list.threshold", 1 << 20); // Max is 4096.
  TuningArtifact Out;
  std::string Error;
  EXPECT_FALSE(
      decodeTuningArtifact(encodeTuningArtifact(Artifact), Out, &Error));
  EXPECT_NE(Error.find("outside"), std::string::npos);

  TuningArtifact Low = sampleArtifact();
  setRow(Low, "context.finished_ratio", 0.0); // Min is 0.1.
  EXPECT_FALSE(decodeTuningArtifact(encodeTuningArtifact(Low), Out, &Error));
  EXPECT_NE(Error.find("outside"), std::string::npos);
}

TEST(TuningArtifact, NonIntegralIntegerValuesAreRejected) {
  TuningArtifact Artifact = sampleArtifact();
  setRow(Artifact, "context.window", 64.5);
  TuningArtifact Out;
  std::string Error;
  EXPECT_FALSE(
      decodeTuningArtifact(encodeTuningArtifact(Artifact), Out, &Error));
  EXPECT_NE(Error.find("integral"), std::string::npos);
}

TEST(TuningArtifact, UnknownParameterNamesAreRejected) {
  TuningArtifact Artifact = sampleArtifact();
  Artifact.Rows[0].Name = "no.such.parameter";
  TuningArtifact Out;
  std::string Error;
  EXPECT_FALSE(
      decodeTuningArtifact(encodeTuningArtifact(Artifact), Out, &Error));
  EXPECT_NE(Error.find("unknown parameter"), std::string::npos);
}

TEST(TuningArtifact, WrongRowCountsAreRejected) {
  // A missing parameter row.
  TuningArtifact Missing = sampleArtifact();
  Missing.Rows.pop_back();
  TuningArtifact Out;
  std::string Error;
  EXPECT_FALSE(
      decodeTuningArtifact(encodeTuningArtifact(Missing), Out, &Error));
  EXPECT_NE(Error.find("rows"), std::string::npos);

  // A duplicated row (encoder sorts, so the duplicate lands adjacent
  // and trips the strict-ascending check — or the count check first).
  TuningArtifact Duplicate = sampleArtifact();
  Duplicate.Rows.push_back(Duplicate.Rows.front());
  EXPECT_FALSE(
      decodeTuningArtifact(encodeTuningArtifact(Duplicate), Out, &Error));
}

TEST(TuningArtifact, HandBuiltBadParamsAreReportedNotInstalled) {
  TuningArtifact Artifact = sampleArtifact();
  Artifact.Rows[0].Name = "no.such.parameter";
  ParameterSet Params;
  std::string Error;
  EXPECT_FALSE(paramsFromArtifact(Artifact, Params, &Error));
  EXPECT_NE(Error.find("unknown"), std::string::npos);
}

TEST(TuningArtifact, FileRoundTripIsAtomic) {
  TuningArtifact Artifact = sampleArtifact();
  const char *Path = "tuning_artifact_test.cstune";
  std::string Error;
  ASSERT_TRUE(writeTuningArtifactToFile(Path, Artifact, &Error)) << Error;
  TuningArtifact Read;
  ASSERT_TRUE(readTuningArtifactFromFile(Path, Read, &Error)) << Error;
  EXPECT_TRUE(sameArtifact(Read, Artifact));
  // Overwrite installs the new artifact completely (tmp+rename).
  Artifact.Seed += 1;
  ASSERT_TRUE(writeTuningArtifactToFile(Path, Artifact, &Error)) << Error;
  ASSERT_TRUE(readTuningArtifactFromFile(Path, Read, &Error)) << Error;
  EXPECT_EQ(Read.Seed, Artifact.Seed);
  std::remove(Path);
  EXPECT_FALSE(readTuningArtifactFromFile(Path, Read, &Error));
}

} // namespace
