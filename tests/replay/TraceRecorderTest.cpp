//===- TraceRecorderTest.cpp - Operation-trace recorder tests -------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
//
// Tests of the lock-free trace recorder: site registration idempotency,
// bounded-buffer drop accounting (the buffer never wraps — the recorded
// prefix stays replayable), per-instance sampling, concurrent recording,
// the facade integration (contexts + collections record through the
// monitoring hooks), and the RecorderRegistry telemetry integration.
//
//===----------------------------------------------------------------------===//

#include "core/AllocationContext.h"
#include "core/SwitchEngine.h"
#include "model/DefaultModel.h"
#include "replay/TraceRecorder.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

using namespace cswitch;

namespace {

std::shared_ptr<const PerformanceModel> testModel() {
  static std::shared_ptr<const PerformanceModel> Model =
      std::make_shared<const PerformanceModel>(defaultPerformanceModel());
  return Model;
}

TEST(TraceRecorder, RegisterSiteIsIdempotentByName) {
  TraceRecorder Rec;
  uint32_t A = Rec.registerSite("site-a", AbstractionKind::List, 0);
  uint32_t B = Rec.registerSite("site-b", AbstractionKind::Set, 1);
  EXPECT_NE(A, B);
  // Re-registration (harnesses reconstruct contexts per run) returns the
  // existing index even when kind/variant differ.
  EXPECT_EQ(Rec.registerSite("site-a", AbstractionKind::Map, 2), A);
  OpTrace Trace = Rec.trace();
  ASSERT_EQ(Trace.Sites.size(), 2u);
  EXPECT_EQ(Trace.Sites[A].Name, "site-a");
  EXPECT_EQ(Trace.Sites[A].Kind, AbstractionKind::List);
  EXPECT_EQ(Trace.Sites[B].Name, "site-b");
}

TEST(TraceRecorder, RecordsOpsInTicketOrder) {
  TraceRecorder Rec;
  uint32_t Site = Rec.registerSite("s", AbstractionKind::List, 0);
  uint32_t Instance = 0;
  ASSERT_TRUE(Rec.beginInstance(Site, Instance));
  // Direct record() users write the begin marker themselves (facades
  // get it from their TraceCursor).
  Rec.record(Site, Instance, TraceOpKind::InstanceBegin, OpClass::None, 0);
  Rec.record(Site, Instance, TraceOpKind::Populate, OpClass::None, 1);
  Rec.record(Site, Instance, TraceOpKind::Contains, OpClass::Hit, 1);
  Rec.record(Site, Instance, TraceOpKind::InstanceEnd, OpClass::None, 1);

  OpTrace Trace = Rec.trace();
  ASSERT_EQ(Trace.Ops.size(), 4u);
  EXPECT_EQ(Trace.Ops[0].Kind, TraceOpKind::InstanceBegin);
  EXPECT_EQ(Trace.Ops[1].Kind, TraceOpKind::Populate);
  EXPECT_EQ(Trace.Ops[2].Kind, TraceOpKind::Contains);
  EXPECT_EQ(Trace.Ops[2].Class, OpClass::Hit);
  EXPECT_EQ(Trace.Ops[3].Kind, TraceOpKind::InstanceEnd);
  for (const TraceOp &Op : Trace.Ops) {
    EXPECT_EQ(Op.Site, Site);
    EXPECT_EQ(Op.Instance, Instance);
  }
  // Timestamps are monotone in ticket order on a single thread.
  for (size_t I = 1; I != Trace.Ops.size(); ++I)
    EXPECT_GE(Trace.Ops[I].TimeNanos, Trace.Ops[I - 1].TimeNanos);
}

TEST(TraceRecorder, BoundedBufferDropsInsteadOfWrapping) {
  TraceRecorder Rec(TraceRecorderOptions{}.capacity(8));
  EXPECT_EQ(Rec.capacity(), 8u);
  uint32_t Site = Rec.registerSite("s", AbstractionKind::List, 0);
  for (uint64_t I = 0; I != 20; ++I)
    Rec.record(Site, 0, TraceOpKind::Populate, OpClass::None, I);
  EXPECT_EQ(Rec.opsRecorded(), 8u);
  EXPECT_EQ(Rec.opsDropped(), 12u);
  OpTrace Trace = Rec.trace();
  ASSERT_EQ(Trace.Ops.size(), 8u);
  EXPECT_EQ(Trace.OpsDropped, 12u);
  // The prefix survives, not an arbitrary window: sizes 0..7.
  for (uint32_t I = 0; I != 8; ++I)
    EXPECT_EQ(Trace.Ops[I].Size, I);
}

TEST(TraceRecorder, SamplesEveryNthInstance) {
  TraceRecorder Rec(TraceRecorderOptions{}.sampleEvery(3));
  uint32_t Site = Rec.registerSite("s", AbstractionKind::Set, 0);
  size_t Sampled = 0;
  for (int I = 0; I != 9; ++I) {
    uint32_t Instance = 0;
    if (Rec.beginInstance(Site, Instance))
      ++Sampled;
  }
  EXPECT_EQ(Sampled, 3u);
  EXPECT_EQ(Rec.instancesSampled(), 3u);
  EXPECT_EQ(Rec.instancesSkipped(), 6u);
  OpTrace Trace = Rec.trace();
  EXPECT_EQ(Trace.InstancesSampled, 3u);
  EXPECT_EQ(Trace.InstancesSkipped, 6u);
  // The sampling decision itself records nothing; markers come from the
  // attached cursor.
  EXPECT_EQ(Trace.Ops.size(), 0u);
}

TEST(TraceRecorder, SampledInstancesGetDistinctIds) {
  TraceRecorder Rec;
  uint32_t Site = Rec.registerSite("s", AbstractionKind::List, 0);
  uint32_t First = 0, Second = 0;
  ASSERT_TRUE(Rec.beginInstance(Site, First));
  ASSERT_TRUE(Rec.beginInstance(Site, Second));
  EXPECT_NE(First, Second);
}

TEST(TraceRecorder, ClearForgetsOpsButKeepsSites) {
  TraceRecorder Rec;
  uint32_t Site = Rec.registerSite("s", AbstractionKind::List, 0);
  uint32_t Instance = 0;
  ASSERT_TRUE(Rec.beginInstance(Site, Instance));
  Rec.record(Site, Instance, TraceOpKind::Populate, OpClass::None, 1);
  Rec.clear();
  EXPECT_EQ(Rec.opsRecorded(), 0u);
  EXPECT_EQ(Rec.instancesSampled(), 0u);
  OpTrace Trace = Rec.trace();
  EXPECT_TRUE(Trace.Ops.empty());
  ASSERT_EQ(Trace.Sites.size(), 1u); // Site indices stay valid.
  EXPECT_EQ(Rec.registerSite("s", AbstractionKind::List, 0), Site);
}

TEST(TraceRecorder, ConcurrentRecordingLosesNothingWithRoom) {
  constexpr size_t Threads = 4, PerThread = 5000;
  TraceRecorder Rec(TraceRecorderOptions{}.capacity(Threads * PerThread));
  uint32_t Site = Rec.registerSite("s", AbstractionKind::List, 0);
  std::atomic<bool> Go{false};
  std::vector<std::thread> Pool;
  for (size_t T = 0; T != Threads; ++T) {
    Pool.emplace_back([&Rec, &Go, Site, T] {
      while (!Go.load(std::memory_order_acquire)) {
      }
      for (size_t I = 0; I != PerThread; ++I)
        Rec.record(Site, static_cast<uint32_t>(T), TraceOpKind::Populate,
                   OpClass::None, I);
    });
  }
  Go.store(true, std::memory_order_release);
  for (std::thread &T : Pool)
    T.join();
  EXPECT_EQ(Rec.opsRecorded(), Threads * PerThread);
  EXPECT_EQ(Rec.opsDropped(), 0u);
  OpTrace Trace = Rec.trace();
  ASSERT_EQ(Trace.Ops.size(), Threads * PerThread);
  // Each thread's ops keep their program order in the global stream.
  size_t NextSize[Threads] = {};
  for (const TraceOp &Op : Trace.Ops)
    EXPECT_EQ(Op.Size, NextSize[Op.Instance]++);
}

TEST(TraceRecorder, ContextIntegrationTracesFacadeOps) {
  TraceRecorder Rec;
  ContextOptions Options;
  Options.LogEvents = false;
  Options.Recorder = &Rec;
  ListContext<int64_t> Ctx("trace:integration", ListVariant::ArrayList,
                           testModel(), SelectionRule::timeRule(), Options);
  {
    List<int64_t> L = Ctx.createList();
    L.add(1);
    L.add(2);
    (void)L.contains(1);  // Hit.
    (void)L.contains(-5); // Miss.
    (void)L.get(0);       // Front.
  }

  OpTrace Trace = Rec.trace();
  ASSERT_EQ(Trace.Sites.size(), 1u);
  EXPECT_EQ(Trace.Sites[0].Name, "trace:integration");
  EXPECT_EQ(Trace.Sites[0].Kind, AbstractionKind::List);
  EXPECT_EQ(Trace.Sites[0].DeclaredVariantIndex,
            static_cast<unsigned>(ListVariant::ArrayList));
  ASSERT_EQ(Trace.Ops.size(), 7u);
  EXPECT_EQ(Trace.Ops.front().Kind, TraceOpKind::InstanceBegin);
  EXPECT_EQ(Trace.Ops[1].Kind, TraceOpKind::Populate);
  EXPECT_EQ(Trace.Ops[1].Size, 1u);
  EXPECT_EQ(Trace.Ops[2].Size, 2u);
  EXPECT_EQ(Trace.Ops[3].Kind, TraceOpKind::Contains);
  EXPECT_EQ(Trace.Ops[3].Class, OpClass::Hit);
  EXPECT_EQ(Trace.Ops[4].Class, OpClass::Miss);
  EXPECT_EQ(Trace.Ops[5].Kind, TraceOpKind::IndexGet);
  EXPECT_EQ(Trace.Ops[5].Class, OpClass::Front);
  EXPECT_EQ(Trace.Ops.back().Kind, TraceOpKind::InstanceEnd);
  EXPECT_EQ(Trace.Ops.back().Size, 2u);
}

TEST(TraceRecorder, RegistryExposesLiveAndRetiredCounters) {
  RecorderStats Before = RecorderRegistry::global().stats();
  {
    TraceRecorder Rec;
    uint32_t Site = Rec.registerSite("s", AbstractionKind::List, 0);
    Rec.record(Site, 0, TraceOpKind::Populate, OpClass::None, 1);
    Rec.record(Site, 0, TraceOpKind::Populate, OpClass::None, 2);
    RecorderStats Live = RecorderRegistry::global().stats() - Before;
    EXPECT_EQ(Live.Recorders, 1u);
    EXPECT_EQ(Live.OpsRecorded, 2u);
  }
  // Counters are monotonic across recorder lifetimes: the destroyed
  // recorder's totals fold into the retired accumulator.
  RecorderStats Retired = RecorderRegistry::global().stats() - Before;
  EXPECT_EQ(Retired.Recorders, 1u);
  EXPECT_EQ(Retired.OpsRecorded, 2u);
}

TEST(TraceRecorder, EngineTelemetryCarriesRecorderCounters) {
  TelemetrySnapshot Before = SwitchEngine::global().telemetry();
  TraceRecorder Rec;
  uint32_t Site = Rec.registerSite("s", AbstractionKind::List, 0);
  Rec.record(Site, 0, TraceOpKind::Populate, OpClass::None, 1);
  TelemetrySnapshot Now = SwitchEngine::global().telemetry();
  RecorderStats Delta = Now.Recorder - Before.Recorder;
  EXPECT_EQ(Delta.OpsRecorded, 1u);
  EXPECT_EQ(Delta.Recorders, 1u);
}

} // namespace
