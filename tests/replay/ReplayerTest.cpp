//===- ReplayerTest.cpp - Deterministic replay tests ----------------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
//
// Tests of the trace replayer: fidelity (a recorded workload replays
// with zero size mismatches), determinism (byte-identical decision logs
// and identical final variants across repeated runs and across thread
// counts), fixed-variant pinning, and the trace -> workload-profile
// aggregation the offline pipeline builds on.
//
//===----------------------------------------------------------------------===//

#include "core/AllocationContext.h"
#include "model/DefaultModel.h"
#include "replay/Replayer.h"
#include "replay/TraceRecorder.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace cswitch;

namespace {

std::shared_ptr<const PerformanceModel> testModel() {
  static std::shared_ptr<const PerformanceModel> Model =
      std::make_shared<const PerformanceModel>(defaultPerformanceModel());
  return Model;
}

/// Records a two-site workload (a list and a set context sharing one
/// recorder) with a mix of hits, misses and positional ops.
OpTrace recordedTrace(size_t Instances) {
  TraceRecorder Rec;
  ContextOptions Options;
  Options.LogEvents = false;
  Options.Recorder = &Rec;
  ListContext<int64_t> Lists("replay-test:list", ListVariant::LinkedList,
                             testModel(), SelectionRule::timeRule(), Options);
  SetContext<int64_t> Sets("replay-test:set", SetVariant::SortedArraySet,
                           testModel(), SelectionRule::timeRule(), Options);
  SplitMix64 Rng(42);
  for (size_t I = 0; I != Instances; ++I) {
    List<int64_t> L = Lists.createList();
    Set<int64_t> S = Sets.createSet();
    size_t N = 8 + Rng.nextBelow(24);
    for (size_t Op = 0; Op != N; ++Op) {
      L.add(static_cast<int64_t>(Op));
      S.add(static_cast<int64_t>(Op % 12)); // Re-adds hit existing keys.
    }
    for (size_t Op = 0; Op != N; ++Op)
      (void)L.get(Rng.nextBelow(L.size()));
    (void)L.contains(static_cast<int64_t>(N / 2)); // Hit.
    (void)L.contains(-1);                          // Miss.
    (void)S.contains(3);
    (void)S.remove(static_cast<int64_t>(Rng.nextBelow(12)));
    L.removeAt(0);
    if (I % 3 == 0)
      L.clear();
  }
  return Rec.trace();
}

TEST(Replayer, FixedReplayExecutesFaithfully) {
  OpTrace Trace = recordedTrace(12);
  ASSERT_EQ(Trace.OpsDropped, 0u);
  ReplayOptions Options;
  Options.Mode = ReplayMode::Fixed;
  Replayer Replay(Trace, Options);
  ReplayResult Result = Replay.run();

  EXPECT_EQ(Result.OpsExecuted, Trace.Ops.size());
  EXPECT_EQ(Result.InstancesReplayed, Trace.InstancesSampled);
  // The fidelity bar: operand re-synthesis reproduces every recorded
  // collection size exactly.
  EXPECT_EQ(Result.SizeMismatches, 0u);
  EXPECT_EQ(Result.Evaluations, 0u); // No contexts in fixed mode.
  ASSERT_EQ(Result.Sites.size(), 2u);
  EXPECT_EQ(Result.Sites[0].FinalVariantIndex,
            static_cast<unsigned>(ListVariant::LinkedList));
  EXPECT_TRUE(Result.DecisionLog.empty());
}

TEST(Replayer, FixedVariantOverridePins) {
  OpTrace Trace = recordedTrace(6);
  ReplayOptions Options;
  Options.Mode = ReplayMode::Fixed;
  Options.FixedList = static_cast<unsigned>(ListVariant::ArrayList);
  Replayer Replay(Trace, Options);
  ReplayResult Result = Replay.run();
  EXPECT_EQ(Result.SizeMismatches, 0u);
  ASSERT_EQ(Result.Sites.size(), 2u);
  EXPECT_EQ(Result.Sites[0].FinalVariantIndex,
            static_cast<unsigned>(ListVariant::ArrayList));
  // The set site had no override: declared variant.
  EXPECT_EQ(Result.Sites[1].FinalVariantIndex,
            static_cast<unsigned>(SetVariant::SortedArraySet));
}

TEST(Replayer, EngineReplayIsDeterministic) {
  OpTrace Trace = recordedTrace(40);
  ReplayOptions Options;
  Options.Mode = ReplayMode::Engine;
  Options.Model = testModel();
  Options.Seed = 7;
  Options.EvalEveryOps = 64;
  Options.Context.WindowSize = 20;
  Options.Context.FinishedRatio = 0.5;
  Options.Context.LogEvents = false;

  Replayer Replay(Trace, Options);
  ReplayResult First = Replay.run();
  ReplayResult Second = Replay.run();

  EXPECT_GT(First.Evaluations, 0u);
  EXPECT_FALSE(First.DecisionLog.empty());
  EXPECT_EQ(First.SizeMismatches, 0u);
  // Two replays of the same (trace, options): byte-identical decision
  // logs and identical final variants — the determinism acceptance bar.
  EXPECT_EQ(First.DecisionLog, Second.DecisionLog);
  ASSERT_EQ(First.Sites.size(), Second.Sites.size());
  for (size_t I = 0; I != First.Sites.size(); ++I) {
    EXPECT_EQ(First.Sites[I].FinalVariantIndex,
              Second.Sites[I].FinalVariantIndex);
    EXPECT_EQ(First.Sites[I].Evaluations, Second.Sites[I].Evaluations);
    EXPECT_EQ(First.Sites[I].Switches, Second.Sites[I].Switches);
  }
}

TEST(Replayer, DecisionLogInvariantAcrossThreadCounts) {
  OpTrace Trace = recordedTrace(30);
  ReplayOptions Options;
  Options.Mode = ReplayMode::Engine;
  Options.Model = testModel();
  Options.EvalEveryOps = 64;
  Options.Context.WindowSize = 20;
  Options.Context.FinishedRatio = 0.5;
  Options.Context.LogEvents = false;

  Options.Threads = 1;
  ReplayResult Single = Replayer(Trace, Options).run();
  Options.Threads = 2;
  ReplayResult Dual = Replayer(Trace, Options).run();
  // Sites are partitioned across threads but each site's replay is
  // self-contained and logs concatenate in site order, so the decision
  // log does not depend on the thread count.
  EXPECT_EQ(Single.DecisionLog, Dual.DecisionLog);
  EXPECT_EQ(Single.OpsExecuted, Dual.OpsExecuted);
  EXPECT_EQ(Single.SizeMismatches, Dual.SizeMismatches);
  ASSERT_EQ(Single.Sites.size(), Dual.Sites.size());
  for (size_t I = 0; I != Single.Sites.size(); ++I)
    EXPECT_EQ(Single.Sites[I].FinalVariantIndex,
              Dual.Sites[I].FinalVariantIndex);
}

TEST(Replayer, SeedVariesOperandsNotFidelity) {
  OpTrace Trace = recordedTrace(10);
  ReplayOptions Options;
  Options.Mode = ReplayMode::Fixed;
  for (uint64_t Seed : {1u, 99u, 12345u}) {
    Options.Seed = Seed;
    ReplayResult Result = Replayer(Trace, Options).run();
    EXPECT_EQ(Result.SizeMismatches, 0u) << "seed " << Seed;
  }
}

TEST(Replayer, HandCraftedMapTraceReplaysExactly) {
  OpTrace Trace;
  Trace.Sites.push_back({"craft:map", AbstractionKind::Map,
                         static_cast<unsigned>(MapVariant::ArrayMap)});
  Trace.InstancesSampled = 1;
  Trace.Ops = {
      {0, 0, TraceOpKind::InstanceBegin, OpClass::None, 0, 0},
      {0, 0, TraceOpKind::Populate, OpClass::Miss, 1, 1},
      {0, 0, TraceOpKind::Populate, OpClass::Miss, 2, 2},
      {0, 0, TraceOpKind::Populate, OpClass::Hit, 2, 3}, // Overwrite.
      {0, 0, TraceOpKind::Contains, OpClass::Hit, 2, 4},
      {0, 0, TraceOpKind::Contains, OpClass::Miss, 2, 5},
      {0, 0, TraceOpKind::RemoveValue, OpClass::Hit, 1, 6},
      {0, 0, TraceOpKind::Iterate, OpClass::None, 1, 7},
      {0, 0, TraceOpKind::Clear, OpClass::None, 0, 8},
      {0, 0, TraceOpKind::InstanceEnd, OpClass::None, 0, 9},
  };
  ReplayOptions Options;
  Options.Mode = ReplayMode::Fixed;
  ReplayResult Result = Replayer(Trace, Options).run();
  EXPECT_EQ(Result.OpsExecuted, Trace.Ops.size());
  EXPECT_EQ(Result.SizeMismatches, 0u);
  EXPECT_EQ(Result.InstancesReplayed, 1u);
}

TEST(Replayer, SkipsOpsOfUnknownInstances) {
  // An instance whose begin marker was lost to the bounded buffer: its
  // ops are skipped, not crashed on.
  OpTrace Trace;
  Trace.Sites.push_back({"craft:list", AbstractionKind::List, 0});
  Trace.OpsDropped = 1;
  Trace.Ops = {
      {0, 9, TraceOpKind::Populate, OpClass::None, 1, 0},
      {0, 9, TraceOpKind::InstanceEnd, OpClass::None, 1, 1},
  };
  ReplayOptions Options;
  Options.Mode = ReplayMode::Fixed;
  ReplayResult Result = Replayer(Trace, Options).run();
  EXPECT_EQ(Result.OpsExecuted, 2u); // Scanned, but nothing to mutate.
  EXPECT_EQ(Result.InstancesReplayed, 0u);
  EXPECT_EQ(Result.SizeMismatches, 0u);
}

TEST(Replayer, AggregateTraceRebuildsPerInstanceProfiles) {
  OpTrace Trace;
  Trace.Sites.push_back({"craft:list", AbstractionKind::List, 0});
  Trace.Ops = {
      // Instance 0: three populates, one contains, finished.
      {0, 0, TraceOpKind::InstanceBegin, OpClass::None, 0, 0},
      {0, 0, TraceOpKind::Populate, OpClass::None, 1, 1},
      {0, 0, TraceOpKind::Populate, OpClass::None, 2, 2},
      {0, 0, TraceOpKind::Populate, OpClass::None, 3, 3},
      {0, 0, TraceOpKind::Contains, OpClass::Hit, 3, 4},
      {0, 0, TraceOpKind::InstanceEnd, OpClass::None, 3, 5},
      // Instance 1: a straggler (no end marker) with one indexed read.
      {0, 1, TraceOpKind::InstanceBegin, OpClass::None, 0, 6},
      {0, 1, TraceOpKind::Populate, OpClass::None, 1, 7},
      {0, 1, TraceOpKind::IndexGet, OpClass::Front, 1, 8},
  };
  std::vector<SiteProfile> Profiles = aggregateTrace(Trace);
  ASSERT_EQ(Profiles.size(), 1u);
  EXPECT_EQ(Profiles[0].Name, "craft:list");
  ASSERT_EQ(Profiles[0].Profiles.size(), 2u); // Stragglers included.
  const WorkloadProfile &P0 = Profiles[0].Profiles[0];
  EXPECT_EQ(P0.count(OperationKind::Populate), 3u);
  EXPECT_EQ(P0.count(OperationKind::Contains), 1u);
  EXPECT_EQ(P0.MaxSize, 3u);
  const WorkloadProfile &P1 = Profiles[0].Profiles[1];
  EXPECT_EQ(P1.count(OperationKind::Populate), 1u);
  EXPECT_EQ(P1.count(OperationKind::IndexAccess), 1u);
  EXPECT_EQ(P1.MaxSize, 1u);
}

TEST(Replayer, RecordedTraceSurvivesFormatRoundTripIntoReplay) {
  // The full pipeline: record -> encode -> decode -> replay.
  OpTrace Trace = recordedTrace(8);
  OpTrace Decoded;
  ASSERT_TRUE(decodeTrace(encodeTrace(Trace), Decoded));
  ASSERT_EQ(Decoded, Trace);
  ReplayOptions Options;
  Options.Mode = ReplayMode::Fixed;
  ReplayResult Result = Replayer(std::move(Decoded), Options).run();
  EXPECT_EQ(Result.SizeMismatches, 0u);
  EXPECT_EQ(Result.OpsExecuted, Trace.Ops.size());
}

} // namespace
