//===- PolicySimulatorTest.cpp - What-if policy sweep tests ---------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
//
// Tests of the offline what-if simulator: the default policy sweep, the
// deterministic replay outcomes behind the ranking, global adaptive
// threshold save/restore, and corpus handling (trace-index prefixes).
//
//===----------------------------------------------------------------------===//

#include "core/AllocationContext.h"
#include "model/DefaultModel.h"
#include "replay/PolicySimulator.h"
#include "replay/TraceRecorder.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace cswitch;

namespace {

std::shared_ptr<const PerformanceModel> testModel() {
  static std::shared_ptr<const PerformanceModel> Model =
      std::make_shared<const PerformanceModel>(defaultPerformanceModel());
  return Model;
}

/// A small recorded list workload the sweeps replay.
OpTrace smallTrace(size_t Instances) {
  TraceRecorder Rec;
  ContextOptions Options;
  Options.LogEvents = false;
  Options.Recorder = &Rec;
  ListContext<int64_t> Ctx("sim-test:list", ListVariant::LinkedList,
                           testModel(), SelectionRule::timeRule(), Options);
  for (size_t I = 0; I != Instances; ++I) {
    List<int64_t> L = Ctx.createList();
    for (int64_t Op = 0; Op != 12; ++Op)
      L.add(Op);
    for (int64_t Op = 0; Op != 12; ++Op)
      (void)L.get(static_cast<size_t>(Op));
    (void)L.contains(-1);
  }
  return Rec.trace();
}

PolicyCandidate quietPolicy(std::string Name, SelectionRule Rule) {
  PolicyCandidate P;
  P.Name = std::move(Name);
  P.Rule = std::move(Rule);
  P.Context.WindowSize = 10;
  P.Context.FinishedRatio = 0.5;
  P.Context.LogEvents = false;
  P.EvalEveryOps = 64;
  return P;
}

TEST(PolicySimulator, DefaultSweepCoversTheStandardPolicies) {
  PolicySimulator Sim(testModel());
  Sim.addDefaultPolicies();
  EXPECT_EQ(Sim.policyCount(), 9u);
}

TEST(PolicySimulator, RanksPoliciesAndReportsOutcomes) {
  PolicySimulator Sim(testModel());
  Sim.addTrace(smallTrace(30));
  Sim.addPolicy(quietPolicy("Rtime", SelectionRule::timeRule()));
  Sim.addPolicy(quietPolicy("static", SelectionRule::impossibleRule()));
  SimulationReport Report = Sim.run();

  ASSERT_EQ(Report.Ranked.size(), 2u);
  EXPECT_FALSE(Report.Best.empty());
  EXPECT_EQ(Report.Best, Report.Ranked.front().Name);
  // Ranked by measured elapsed time, best first.
  EXPECT_LE(Report.Ranked[0].ElapsedNanos, Report.Ranked[1].ElapsedNanos);

  auto Static = std::find_if(
      Report.Ranked.begin(), Report.Ranked.end(),
      [](const PolicyOutcome &O) { return O.Name == "static"; });
  ASSERT_NE(Static, Report.Ranked.end());
  EXPECT_EQ(Static->Switches, 0u); // impossibleRule never switches.
  for (const PolicyOutcome &Outcome : Report.Ranked) {
    EXPECT_GT(Outcome.OpsExecuted, 0u);
    EXPECT_GT(Outcome.InstancesReplayed, 0u);
    EXPECT_GT(Outcome.Evaluations, 0u);
    EXPECT_EQ(Outcome.SizeMismatches, 0u);
    EXPECT_GT(Outcome.PredictedTime, 0.0);
    EXPECT_GT(Outcome.PredictedAlloc, 0.0);
    ASSERT_EQ(Outcome.FinalVariants.size(), 1u);
    EXPECT_EQ(Outcome.FinalVariants[0].first, "sim-test:list");
  }
}

TEST(PolicySimulator, DecisionsAreDeterministicAcrossRuns) {
  PolicySimulator Sim(testModel());
  Sim.addTrace(smallTrace(30));
  Sim.addPolicy(quietPolicy("Rtime", SelectionRule::timeRule()));
  Sim.addPolicy(quietPolicy("Ralloc", SelectionRule::allocRule()));
  SimulationReport First = Sim.run(123);
  SimulationReport Second = Sim.run(123);

  // Wall-clock (and thus ranking order) may vary between runs; the
  // decisions behind it must not.
  for (const PolicyOutcome &A : First.Ranked) {
    auto B = std::find_if(
        Second.Ranked.begin(), Second.Ranked.end(),
        [&A](const PolicyOutcome &O) { return O.Name == A.Name; });
    ASSERT_NE(B, Second.Ranked.end());
    EXPECT_EQ(A.OpsExecuted, B->OpsExecuted);
    EXPECT_EQ(A.Evaluations, B->Evaluations);
    EXPECT_EQ(A.Switches, B->Switches);
    EXPECT_EQ(A.FinalVariants, B->FinalVariants);
    EXPECT_DOUBLE_EQ(A.PredictedTime, B->PredictedTime);
  }
}

TEST(PolicySimulator, RestoresGlobalAdaptiveThresholds) {
  AdaptiveThresholds Before = AdaptiveConfig::global().thresholds();
  PolicySimulator Sim(testModel());
  Sim.addTrace(smallTrace(10));
  PolicyCandidate Adaptive = quietPolicy("adapt", SelectionRule::timeRule());
  Adaptive.Thresholds = AdaptiveThresholds{7, 7, 7};
  Sim.addPolicy(Adaptive);
  (void)Sim.run();
  AdaptiveThresholds After = AdaptiveConfig::global().thresholds();
  EXPECT_EQ(After.List, Before.List);
  EXPECT_EQ(After.Set, Before.Set);
  EXPECT_EQ(After.Map, Before.Map);
}

TEST(PolicySimulator, MultiTraceCorpusPrefixesSiteNames) {
  PolicySimulator Sim(testModel());
  Sim.addTrace(smallTrace(8));
  Sim.addTrace(smallTrace(8));
  EXPECT_EQ(Sim.traceCount(), 2u);
  Sim.addPolicy(quietPolicy("Rtime", SelectionRule::timeRule()));
  SimulationReport Report = Sim.run();
  ASSERT_EQ(Report.Ranked.size(), 1u);
  ASSERT_EQ(Report.Ranked[0].FinalVariants.size(), 2u);
  EXPECT_EQ(Report.Ranked[0].FinalVariants[0].first, "t0:sim-test:list");
  EXPECT_EQ(Report.Ranked[0].FinalVariants[1].first, "t1:sim-test:list");
}

TEST(PolicySimulator, RenderNamesEveryPolicyAndTheWinner) {
  PolicySimulator Sim(testModel());
  Sim.addTrace(smallTrace(10));
  Sim.addPolicy(quietPolicy("policy-one", SelectionRule::timeRule()));
  Sim.addPolicy(quietPolicy("policy-two", SelectionRule::allocRule()));
  SimulationReport Report = Sim.run();
  std::string Text = Report.render();
  EXPECT_NE(Text.find("policy-one"), std::string::npos);
  EXPECT_NE(Text.find("policy-two"), std::string::npos);
  EXPECT_NE(Text.find("best:"), std::string::npos);
  EXPECT_NE(Text.find(Report.Best), std::string::npos);
}

TEST(PolicySimulator, EmptyCorpusProducesEmptyOutcomes) {
  PolicySimulator Sim(testModel());
  Sim.addPolicy(quietPolicy("Rtime", SelectionRule::timeRule()));
  SimulationReport Report = Sim.run();
  ASSERT_EQ(Report.Ranked.size(), 1u);
  EXPECT_EQ(Report.Ranked[0].OpsExecuted, 0u);
  EXPECT_TRUE(Report.Ranked[0].FinalVariants.empty());
}

} // namespace
