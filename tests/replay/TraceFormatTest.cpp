//===- TraceFormatTest.cpp - cswitch-optrace-v1 format tests --------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
//
// Round-trip and rejection tests of the binary operation-trace format:
// encode -> decode -> encode must reproduce the exact bytes (canonical
// encoding), every strict prefix of a valid document must fail to parse
// (truncation fuzzing), and corrupt headers/bodies must be rejected with
// the output trace left empty.
//
//===----------------------------------------------------------------------===//

#include "replay/TraceFormat.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

using namespace cswitch;

namespace {

/// Test-local varint writer for hand-crafting malformed documents.
void putVarint(std::string &Out, uint64_t Value) {
  while (Value >= 0x80) {
    Out += static_cast<char>((Value & 0x7f) | 0x80);
    Value >>= 7;
  }
  Out += static_cast<char>(Value);
}

const char MagicBytes[] = "cswitch-optrace-"; // 16 bytes, no terminator.

/// A representative trace: two sites of different abstractions, ops that
/// jump between sites (negative zigzag deltas), interleaved instances,
/// and non-monotonic recorded sizes.
OpTrace sampleTrace() {
  OpTrace T;
  T.Sites.push_back({"Bench.cpp:10", AbstractionKind::List,
                     static_cast<unsigned>(ListVariant::ArrayList)});
  T.Sites.push_back({"Bench.cpp:20 with spaces", AbstractionKind::Map,
                     static_cast<unsigned>(MapVariant::ChainedHashMap)});
  T.OpsDropped = 3;
  T.InstancesSampled = 2;
  T.InstancesSkipped = 7;
  T.Ops = {
      {0, 0, TraceOpKind::InstanceBegin, OpClass::None, 0, 100},
      {1, 1, TraceOpKind::InstanceBegin, OpClass::None, 0, 150},
      {0, 0, TraceOpKind::Populate, OpClass::None, 1, 200},
      {0, 0, TraceOpKind::Populate, OpClass::None, 2, 210},
      {1, 1, TraceOpKind::Populate, OpClass::Miss, 1, 220},
      {0, 0, TraceOpKind::IndexGet, OpClass::Front, 2, 230},
      {0, 0, TraceOpKind::RemoveAt, OpClass::Back, 1, 240},
      {1, 1, TraceOpKind::Contains, OpClass::Hit, 1, 250},
      {1, 1, TraceOpKind::Clear, OpClass::None, 0, 260},
      {1, 1, TraceOpKind::InstanceEnd, OpClass::None, 0, 270},
      {0, 0, TraceOpKind::InstanceEnd, OpClass::None, 1, 280},
  };
  return T;
}

TEST(TraceFormat, RoundTripPreservesEveryField) {
  OpTrace Original = sampleTrace();
  std::string Bytes = encodeTrace(Original);
  OpTrace Decoded;
  std::string Error;
  ASSERT_TRUE(decodeTrace(Bytes, Decoded, &Error)) << Error;
  EXPECT_EQ(Decoded, Original);
  EXPECT_EQ(Decoded.durationNanos(), 180u); // 280 - 100.
}

TEST(TraceFormat, EncodingIsCanonical) {
  // write -> read -> write must produce identical bytes (the acceptance
  // criterion of the format).
  std::string First = encodeTrace(sampleTrace());
  OpTrace Decoded;
  ASSERT_TRUE(decodeTrace(First, Decoded));
  std::string Second = encodeTrace(Decoded);
  EXPECT_EQ(First, Second);
}

TEST(TraceFormat, EmptyTraceRoundTrips) {
  OpTrace Empty;
  std::string Bytes = encodeTrace(Empty);
  OpTrace Decoded;
  ASSERT_TRUE(decodeTrace(Bytes, Decoded));
  EXPECT_EQ(Decoded, Empty);
  EXPECT_EQ(Decoded.durationNanos(), 0u);
}

TEST(TraceFormat, EveryStrictPrefixIsRejected) {
  // Truncation fuzz: the op count is declared up front, so no strict
  // prefix of a valid document can itself be a valid document.
  std::string Bytes = encodeTrace(sampleTrace());
  for (size_t Len = 0; Len != Bytes.size(); ++Len) {
    OpTrace Out;
    Out.OpsDropped = 99; // Must be wiped on failure.
    std::string Error;
    EXPECT_FALSE(decodeTrace(std::string_view(Bytes).substr(0, Len), Out,
                             &Error))
        << "prefix of length " << Len << " unexpectedly parsed";
    EXPECT_EQ(Out, OpTrace()) << "output not empty at length " << Len;
    EXPECT_FALSE(Error.empty());
  }
}

TEST(TraceFormat, RejectsBadMagic) {
  for (const char *Bad : {"", "x", "cswitch-profile-trace v1\n",
                          "CSWITCH-OPTRACE-\x01\x00"}) {
    OpTrace Out;
    std::string Error;
    EXPECT_FALSE(decodeTrace(Bad, Out, &Error));
    EXPECT_NE(Error.find("magic"), std::string::npos);
  }
}

TEST(TraceFormat, RejectsVersionMismatch) {
  std::string Bytes = encodeTrace(sampleTrace());
  ASSERT_GT(Bytes.size(), 16u);
  Bytes[16] = 2; // Version varint lives right after the magic.
  OpTrace Out;
  std::string Error;
  EXPECT_FALSE(decodeTrace(Bytes, Out, &Error));
  EXPECT_NE(Error.find("version 2"), std::string::npos);
  EXPECT_EQ(Out, OpTrace());
}

TEST(TraceFormat, RejectsTrailingBytes) {
  std::string Bytes = encodeTrace(sampleTrace());
  Bytes += '\0';
  OpTrace Out;
  std::string Error;
  EXPECT_FALSE(decodeTrace(Bytes, Out, &Error));
  EXPECT_NE(Error.find("trailing"), std::string::npos);
  EXPECT_EQ(Out, OpTrace());
}

TEST(TraceFormat, RejectsGarbageBodies) {
  // Valid magic followed by pseudo-random garbage must never parse into
  // a non-empty trace (it may parse as an empty one only if the bytes
  // happen to spell that out, which these seeds do not).
  SplitMix64 Rng(0xfeedface);
  for (int Doc = 0; Doc != 64; ++Doc) {
    std::string Bytes(MagicBytes, 16);
    Bytes += '\x01'; // Valid version so the body parser runs.
    size_t Len = 1 + Rng.nextBelow(64);
    for (size_t I = 0; I != Len; ++I)
      Bytes += static_cast<char>(Rng.nextBelow(256));
    OpTrace Out;
    if (!decodeTrace(Bytes, Out)) {
      EXPECT_EQ(Out, OpTrace());
    } else {
      // Garbage that accidentally parses (possible only via redundant
      // varint encodings of a near-empty document) must still round-trip
      // through the canonical encoder.
      OpTrace Again;
      ASSERT_TRUE(decodeTrace(encodeTrace(Out), Again));
      EXPECT_EQ(Again, Out);
    }
  }
}

TEST(TraceFormat, RejectsBadAbstractionKind) {
  std::string Bytes(MagicBytes, 16);
  putVarint(Bytes, 1); // version
  putVarint(Bytes, 1); // one site
  putVarint(Bytes, 1); // name length
  Bytes += 'a';
  Bytes += '\x09'; // abstraction kind 9: out of range.
  putVarint(Bytes, 0);
  OpTrace Out;
  std::string Error;
  EXPECT_FALSE(decodeTrace(Bytes, Out, &Error));
  EXPECT_NE(Error.find("abstraction"), std::string::npos);
}

TEST(TraceFormat, RejectsBadDeclaredVariant) {
  std::string Bytes(MagicBytes, 16);
  putVarint(Bytes, 1);
  putVarint(Bytes, 1);
  putVarint(Bytes, 1);
  Bytes += 'a';
  Bytes += '\x00';      // list
  putVarint(Bytes, 99); // No list variant 99.
  OpTrace Out;
  std::string Error;
  EXPECT_FALSE(decodeTrace(Bytes, Out, &Error));
  EXPECT_NE(Error.find("variant"), std::string::npos);
}

TEST(TraceFormat, RejectsBadOpKindByte) {
  OpTrace T;
  T.Sites.push_back({"s", AbstractionKind::List, 0});
  T.Ops = {{0, 0, TraceOpKind::InstanceBegin, OpClass::None, 0, 0}};
  std::string Bytes = encodeTrace(T);
  // The packed kind/class byte is the first op byte; 0xff decodes to
  // kind 31, far past NumTraceOpKinds.
  Bytes[Bytes.size() - 5] = static_cast<char>(0xff);
  OpTrace Out;
  std::string Error;
  EXPECT_FALSE(decodeTrace(Bytes, Out, &Error));
  EXPECT_NE(Error.find("kind"), std::string::npos);
}

TEST(TraceFormat, RejectsOpReferencingUnknownSite) {
  OpTrace T;
  T.Sites.push_back({"s", AbstractionKind::List, 0});
  T.Ops = {{5, 0, TraceOpKind::InstanceBegin, OpClass::None, 0, 0}};
  std::string Bytes = encodeTrace(T); // Encoder is format-agnostic here.
  OpTrace Out;
  std::string Error;
  EXPECT_FALSE(decodeTrace(Bytes, Out, &Error));
  EXPECT_NE(Error.find("range"), std::string::npos);
  EXPECT_EQ(Out, OpTrace());
}

TEST(TraceFormat, FileAndStreamRoundTrip) {
  OpTrace Original = sampleTrace();
  std::string Path = ::testing::TempDir() + "/cswitch_optrace_test.bin";
  ASSERT_TRUE(writeTraceToFile(Path, Original));
  OpTrace FromFile;
  ASSERT_TRUE(readTraceFromFile(Path, FromFile));
  EXPECT_EQ(FromFile, Original);
  std::remove(Path.c_str());

  std::istringstream IS(encodeTrace(Original));
  OpTrace FromStream;
  ASSERT_TRUE(readTrace(IS, FromStream));
  EXPECT_EQ(FromStream, Original);

  OpTrace Missing;
  std::string Error;
  EXPECT_FALSE(readTraceFromFile("no-such-dir/x.optrace", Missing, &Error));
  EXPECT_NE(Error.find("open"), std::string::npos);
}

TEST(TraceFormat, KindNamesAndProfileMapping) {
  EXPECT_STREQ(traceOpKindName(TraceOpKind::InstanceBegin), "begin");
  EXPECT_STREQ(traceOpKindName(TraceOpKind::RemoveValue), "remove-value");
  EXPECT_STREQ(opClassName(OpClass::Interior), "interior");

  EXPECT_EQ(toOperationKind(TraceOpKind::Populate), OperationKind::Populate);
  EXPECT_EQ(toOperationKind(TraceOpKind::IndexSet),
            OperationKind::IndexAccess);
  EXPECT_EQ(toOperationKind(TraceOpKind::InsertAt), OperationKind::Middle);
  EXPECT_FALSE(toOperationKind(TraceOpKind::InstanceBegin).has_value());
  EXPECT_FALSE(toOperationKind(TraceOpKind::Clear).has_value());
}

TEST(TraceFormat, ClassifyIndexCoversPositions) {
  EXPECT_EQ(classifyIndex(0, 10), OpClass::Front);
  EXPECT_EQ(classifyIndex(9, 10), OpClass::Back);
  EXPECT_EQ(classifyIndex(5, 10), OpClass::Interior);
  EXPECT_EQ(classifyIndex(0, 1), OpClass::Front);
}

} // namespace
