//===- RecalibratorTest.cpp - On-device recalibration tests ---------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
//
// The promotion gate is exercised BOTH ways with injected measurements:
// a candidate that tracks the held-out slice at least as well as the
// incumbent is promoted and installed; one that regresses past the
// epsilon is rejected and never written to disk.
//
//===----------------------------------------------------------------------===//

#include "fleet/Recalibrator.h"

#include "model/DefaultModel.h"
#include "replay/TraceFormat.h"
#include "support/Telemetry.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>

using namespace cswitch;
using namespace cswitch::fleet;

namespace {

/// A synthetic list-only corpus: eight instances at one site, all in the
/// same log2-size bucket. With HoldoutModulus = 4 instances 0 and 4 form
/// the held-out slice; the other six are the fit slice.
OpTrace sampleTrace(std::vector<uint32_t> InstanceIds = {0, 1, 2, 3, 4, 5,
                                                         6, 7}) {
  OpTrace Trace;
  Trace.Sites.push_back({"bench/Sample.cpp:1", AbstractionKind::List, 0});
  uint64_t Time = 0;
  for (uint32_t Instance : InstanceIds) {
    Trace.Ops.push_back({0, Instance, TraceOpKind::InstanceBegin,
                         OpClass::None, 0, ++Time});
    for (uint32_t Size = 1; Size <= 8; ++Size)
      Trace.Ops.push_back({0, Instance, TraceOpKind::Populate, OpClass::Back,
                           Size, ++Time});
    for (int I = 0; I != 4; ++I)
      Trace.Ops.push_back({0, Instance, TraceOpKind::Contains, OpClass::Hit,
                           8, ++Time});
    Trace.Ops.push_back({0, Instance, TraceOpKind::InstanceEnd, OpClass::None,
                         8, ++Time});
  }
  Trace.InstancesSampled = InstanceIds.size();
  return Trace;
}

bool isHoldoutSlice(const OpTrace &Slice, uint64_t Modulus = 4) {
  return !Slice.Ops.empty() && Slice.Ops.front().Instance % Modulus == 0;
}

/// Measurements far above any incumbent prediction: the fit clamps the
/// correction at MaxAlpha (64x), which still tracks the held-out slice
/// strictly better than the unscaled incumbent — the gate promotes.
RecalibrationOptions promoteOptions() {
  RecalibrationOptions Options;
  Options.Measure = [](AbstractionKind, unsigned, const OpTrace &) {
    return CellMeasurement{1'000'000'000'000ull, 1'000'000'000ull};
  };
  return Options;
}

/// Fit cells see huge costs (driving the 64x rescale) while the held-out
/// cells measure tiny ones: the rescaled candidate overshoots the
/// held-out slice 64x worse than the incumbent — the gate rejects.
RecalibrationOptions rejectOptions() {
  RecalibrationOptions Options;
  Options.Measure = [](AbstractionKind, unsigned, const OpTrace &Slice) {
    if (isHoldoutSlice(Slice))
      return CellMeasurement{1, 1};
    return CellMeasurement{1'000'000'000'000ull, 1'000'000'000ull};
  };
  return Options;
}

std::shared_ptr<const PerformanceModel> incumbent() {
  return std::make_shared<PerformanceModel>(defaultPerformanceModel());
}

TEST(Recalibrator, CellsCoverEverySequentialVariantOfBothSlices) {
  Recalibrator Work(sampleTrace(), incumbent(), promoteOptions());
  // One (fit, holdout) group pair, one cell per sequential list variant.
  EXPECT_EQ(Work.cellCount(),
            2 * firstConcurrentVariant(AbstractionKind::List));
  EXPECT_EQ(Work.cellsMeasured(), 0u);
  EXPECT_FALSE(Work.measured());
}

TEST(Recalibrator, StepMeasuresOneCellAtATime) {
  Recalibrator Work(sampleTrace(), incumbent(), promoteOptions());
  size_t Steps = 0;
  while (Work.step()) {
    ++Steps;
    EXPECT_EQ(Work.cellsMeasured(), Steps);
  }
  EXPECT_EQ(Steps, Work.cellCount());
  EXPECT_TRUE(Work.measured());
  EXPECT_FALSE(Work.step());
}

TEST(Recalibrator, PromotesWhenCandidateTracksHoldoutBetter) {
  auto Model = incumbent();
  Recalibrator Work(sampleTrace(), Model, promoteOptions());
  RecalibrationResult Result = Work.run(/*FitTimestamp=*/1754006400);

  EXPECT_TRUE(Result.Promoted) << Result.Reason;
  EXPECT_TRUE(Result.Reason.empty());
  EXPECT_LE(Result.CandidateResidual, Result.IncumbentResidual);
  EXPECT_GT(Result.VariantsRecalibrated, 0u);
  EXPECT_EQ(Result.CellsMeasured, Work.cellCount());

  // Provenance header is filled for the consumer-side compatibility
  // checks.
  EXPECT_EQ(Result.Artifact.HostFingerprint, hostFingerprint());
  EXPECT_EQ(Result.Artifact.FitTimestamp, 1754006400u);
  EXPECT_EQ(Result.Artifact.HoldoutResidual, Result.CandidateResidual);
  EXPECT_FALSE(Result.Artifact.Rows.empty());

  // The fitted sequential Time/Alloc rows were rescaled by the clamped
  // alpha (the injected measurements dwarf any prediction, so the
  // correction saturates at exactly 64x); everything else is carried
  // over verbatim.
  for (const ModelArtifact::Row &Row : Result.Artifact.Rows) {
    const Polynomial &Before = Model->cost({Row.Kind, Row.Variant}, Row.Op,
                                           Row.Dim);
    bool Fitted = Row.Kind == AbstractionKind::List &&
                  !isConcurrentVariant(Row.Kind, Row.Variant) &&
                  (Row.Dim == CostDimension::Time ||
                   Row.Dim == CostDimension::Alloc);
    if (Fitted)
      EXPECT_EQ(Row.Cost, Before.scaled(64.0));
    else
      EXPECT_EQ(Row.Cost, Before);
  }
}

TEST(Recalibrator, RejectsWhenCandidateRegressesOnHoldout) {
  Recalibrator Work(sampleTrace(), incumbent(), rejectOptions());
  RecalibrationResult Result = Work.run(/*FitTimestamp=*/1754006400);

  EXPECT_FALSE(Result.Promoted);
  EXPECT_NE(Result.Reason.find("regressed"), std::string::npos)
      << Result.Reason;
  EXPECT_GT(Result.CandidateResidual,
            Result.IncumbentResidual + RecalibrationOptions().PromotionEpsilon);
  // The rejected fit stays inspectable.
  EXPECT_FALSE(Result.Artifact.Rows.empty());
  EXPECT_GT(Result.VariantsRecalibrated, 0u);
}

TEST(Recalibrator, RejectsWithoutHoldoutCells) {
  // Only odd instance ids with modulus 2: every instance lands in the
  // fit slice, so there is nothing to validate against — never promote.
  Recalibrator Work(sampleTrace({1, 3, 5, 7}), incumbent(),
                    promoteOptions().holdoutModulus(2));
  RecalibrationResult Result = Work.run(/*FitTimestamp=*/1);
  EXPECT_FALSE(Result.Promoted);
  EXPECT_NE(Result.Reason.find("held-out"), std::string::npos)
      << Result.Reason;
}

TEST(Recalibrator, DropsCellsBelowMinOps) {
  // 14 ops per instance and a threshold above the whole corpus: no
  // cells at all, and the empty fit is rejected.
  Recalibrator Work(sampleTrace({1}), incumbent(),
                    promoteOptions().minCellOps(1'000'000));
  EXPECT_EQ(Work.cellCount(), 0u);
  RecalibrationResult Result = Work.run(/*FitTimestamp=*/1);
  EXPECT_FALSE(Result.Promoted);
  EXPECT_NE(Result.Reason.find("enough fit measurements"),
            std::string::npos);
}

TEST(Recalibrator, FromTraceFileInstallsOnlyOnPromotion) {
  const char *TracePath = "recalibrator_test_trace.bin";
  const char *ArtifactPath = "recalibrator_test_model.bin";
  ASSERT_TRUE(writeTraceToFile(TracePath, sampleTrace()));
  std::remove(ArtifactPath);

  FleetStats Before = FleetRegistry::global().stats();

  // Rejected fit: counters tick, nothing installed.
  std::string Error;
  RecalibrationResult Rejected = recalibrateFromTraceFile(
      TracePath, incumbent(), ArtifactPath, rejectOptions(), &Error);
  EXPECT_FALSE(Rejected.Promoted);
  ModelArtifact OnDisk;
  EXPECT_FALSE(readModelArtifactFromFile(ArtifactPath, OnDisk));

  // Promoted fit: the artifact lands atomically at the requested path.
  RecalibrationResult Promoted = recalibrateFromTraceFile(
      TracePath, incumbent(), ArtifactPath, promoteOptions(), &Error);
  EXPECT_TRUE(Promoted.Promoted) << Promoted.Reason << " " << Error;
  ASSERT_TRUE(readModelArtifactFromFile(ArtifactPath, OnDisk, &Error))
      << Error;
  EXPECT_EQ(OnDisk, Promoted.Artifact);

  FleetStats Delta = FleetRegistry::global().stats() - Before;
  EXPECT_EQ(Delta.Recalibrations, 2u);
  EXPECT_EQ(Delta.Promotions, 1u);
  EXPECT_EQ(Delta.PromotionsRejected, 1u);

  std::remove(TracePath);
  std::remove(ArtifactPath);
}

TEST(Recalibrator, FromTraceFileFailsOnMissingTrace) {
  std::string Error;
  RecalibrationResult Result = recalibrateFromTraceFile(
      "no_such_trace.bin", incumbent(), "unused_model.bin",
      promoteOptions(), &Error);
  EXPECT_FALSE(Result.Promoted);
  EXPECT_EQ(Result.Reason, "cannot read trace");
  EXPECT_FALSE(Error.empty());
}

TEST(BackgroundRecalibrator, SpreadsWorkAcrossTicksThenInstalls) {
  const char *ArtifactPath = "background_recalibrator_model.bin";
  std::remove(ArtifactPath);
  BackgroundRecalibrator Background(sampleTrace(), incumbent(), ArtifactPath,
                                    promoteOptions());

  size_t InnerCalls = 0;
  auto Sink = Background.sink(
      [&InnerCalls](const TelemetrySnapshot &) { ++InnerCalls; });

  Recalibrator Reference(sampleTrace(), incumbent(), promoteOptions());
  size_t CellTicks = Reference.cellCount();
  TelemetrySnapshot Snapshot;
  // One cell per tick, one extra tick for fit + install.
  for (size_t I = 0; I != CellTicks; ++I) {
    EXPECT_FALSE(Background.finished());
    Sink(Snapshot);
  }
  EXPECT_FALSE(Background.finished());
  Sink(Snapshot);
  ASSERT_TRUE(Background.finished());
  EXPECT_EQ(InnerCalls, CellTicks + 1);

  ASSERT_TRUE(Background.result().has_value());
  EXPECT_TRUE(Background.result()->Promoted)
      << Background.result()->Reason;
  ModelArtifact OnDisk;
  std::string Error;
  ASSERT_TRUE(readModelArtifactFromFile(ArtifactPath, OnDisk, &Error))
      << Error;
  EXPECT_EQ(OnDisk, Background.result()->Artifact);

  // Further ticks are no-ops once finished.
  Sink(Snapshot);
  EXPECT_EQ(InnerCalls, CellTicks + 2);
  std::remove(ArtifactPath);
}

} // namespace
