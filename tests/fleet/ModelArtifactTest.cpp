//===- ModelArtifactTest.cpp - cswitch-model-v2 codec tests ---------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//

#include "fleet/ModelArtifact.h"

#include "model/DefaultModel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

using namespace cswitch;
using namespace cswitch::fleet;

namespace {

ModelArtifact sampleArtifact() {
  ModelArtifact Artifact;
  Artifact.HostFingerprint = "testhost/x86_64/c8";
  Artifact.FitTimestamp = 1754006400; // Fixed; the codec never reads clocks.
  Artifact.HoldoutResidual = 0.125;
  Artifact.Rows.push_back({AbstractionKind::List, 0,
                           OperationKind::Populate, CostDimension::Time,
                           Polynomial({1.5, 0.25, 0.0, 1e-3}), 0.02});
  Artifact.Rows.push_back({AbstractionKind::List, 0,
                           OperationKind::Populate, CostDimension::Alloc,
                           Polynomial({32.0}), 0.0});
  Artifact.Rows.push_back({AbstractionKind::Set, 2,
                           OperationKind::Contains, CostDimension::Time,
                           Polynomial({4.0, 0.5}), 0.5});
  Artifact.Rows.push_back({AbstractionKind::Map, 1, OperationKind::Remove,
                           CostDimension::Contention, Polynomial(), 0.0});
  return Artifact;
}

TEST(ModelArtifact, EncodeDecodeRoundTrips) {
  ModelArtifact Artifact = sampleArtifact();
  std::string Bytes = encodeModelArtifact(Artifact);
  ModelArtifact Decoded;
  std::string Error;
  ASSERT_TRUE(decodeModelArtifact(Bytes, Decoded, &Error)) << Error;
  EXPECT_EQ(Decoded, Artifact);
  // Canonical: re-encoding reproduces the exact bytes.
  EXPECT_EQ(encodeModelArtifact(Decoded), Bytes);
}

TEST(ModelArtifact, EmptyArtifactRoundTrips) {
  ModelArtifact Artifact;
  ModelArtifact Decoded;
  ASSERT_TRUE(decodeModelArtifact(encodeModelArtifact(Artifact), Decoded));
  EXPECT_EQ(Decoded, Artifact);
}

TEST(ModelArtifact, EncodingIsCanonicalAcrossInputOrder) {
  ModelArtifact Artifact = sampleArtifact();
  ModelArtifact Shuffled = Artifact;
  std::reverse(Shuffled.Rows.begin(), Shuffled.Rows.end());
  EXPECT_EQ(encodeModelArtifact(Shuffled), encodeModelArtifact(Artifact));
}

// The decoder must be total: truncation at EVERY offset is rejected
// without crashing, and the output is left empty.
TEST(ModelArtifact, TruncationAtEveryOffsetIsRejected) {
  std::string Bytes = encodeModelArtifact(sampleArtifact());
  for (size_t Len = 0; Len != Bytes.size(); ++Len) {
    ModelArtifact Out;
    EXPECT_FALSE(decodeModelArtifact(Bytes.substr(0, Len), Out))
        << "accepted truncation at offset " << Len;
    EXPECT_EQ(Out, ModelArtifact()) << "output not cleared at " << Len;
  }
}

// Flipping any single byte must never be silently accepted as the
// original document (CRCs cover header and rows; the envelope fields
// are structurally checked).
TEST(ModelArtifact, SingleByteCorruptionNeverYieldsOriginal) {
  ModelArtifact Artifact = sampleArtifact();
  std::string Bytes = encodeModelArtifact(Artifact);
  for (size_t I = 0; I != Bytes.size(); ++I) {
    std::string Corrupt = Bytes;
    Corrupt[I] = static_cast<char>(Corrupt[I] ^ 0x20);
    ModelArtifact Out;
    if (decodeModelArtifact(Corrupt, Out)) {
      EXPECT_NE(Out, Artifact) << "bit flip at " << I << " undetected";
    }
  }
}

TEST(ModelArtifact, BadMagicAndVersionAreRejected) {
  std::string Bytes = encodeModelArtifact(sampleArtifact());
  ModelArtifact Out;
  std::string Error;

  std::string WrongMagic = Bytes;
  WrongMagic[0] = 'X';
  EXPECT_FALSE(decodeModelArtifact(WrongMagic, Out, &Error));
  EXPECT_NE(Error.find("magic"), std::string::npos);

  // A store-v1 document is not a model artifact.
  EXPECT_FALSE(decodeModelArtifact("cswitch-store-v1\x01\x00", Out, &Error));

  std::string WrongVersion = Bytes;
  WrongVersion[16] = 0x7f; // The version varint sits right after magic.
  EXPECT_FALSE(decodeModelArtifact(WrongVersion, Out, &Error));
  EXPECT_NE(Error.find("version"), std::string::npos);
}

TEST(ModelArtifact, TrailingBytesAreRejected) {
  std::string Bytes = encodeModelArtifact(sampleArtifact());
  ModelArtifact Out;
  std::string Error;
  EXPECT_FALSE(decodeModelArtifact(Bytes + "x", Out, &Error));
  EXPECT_NE(Error.find("trailing"), std::string::npos);
}

TEST(ModelArtifact, NonFiniteValuesAreRejected) {
  ModelArtifact Artifact = sampleArtifact();
  Artifact.Rows[0].Cost =
      Polynomial({std::numeric_limits<double>::quiet_NaN()});
  ModelArtifact Out;
  std::string Error;
  EXPECT_FALSE(decodeModelArtifact(encodeModelArtifact(Artifact), Out,
                                   &Error));
  EXPECT_NE(Error.find("non-finite"), std::string::npos);

  ModelArtifact BadHeader = sampleArtifact();
  BadHeader.HoldoutResidual = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(
      decodeModelArtifact(encodeModelArtifact(BadHeader), Out, &Error));
}

TEST(ModelArtifact, DuplicateRowsAreRejected) {
  ModelArtifact Artifact = sampleArtifact();
  Artifact.Rows.push_back(Artifact.Rows.front());
  ModelArtifact Out;
  std::string Error;
  EXPECT_FALSE(decodeModelArtifact(encodeModelArtifact(Artifact), Out,
                                   &Error));
  EXPECT_NE(Error.find("order"), std::string::npos);
}

TEST(ModelArtifact, OutOfRangeEnumsAreRejected) {
  // Craft a row with variant index beyond the List pool by encoding a
  // legal artifact and checking the decoder's range guard via the
  // conversion path: rows reference enums, so an artifact built from a
  // real model can never be out of range — corrupt the variant byte
  // instead and require *some* rejection (CRC catches it first).
  ModelArtifact Artifact = sampleArtifact();
  std::string Bytes = encodeModelArtifact(Artifact);
  // Find the first row payload and bump its kind byte past the enum.
  // Kind byte is the first payload byte after the row-length varint;
  // rather than chase offsets, flip every byte to 0xFF and require that
  // no mutation is accepted as a *valid different* document with an
  // out-of-range enum (decode either fails or equals the original).
  for (size_t I = 16; I != Bytes.size(); ++I) {
    std::string Corrupt = Bytes;
    Corrupt[I] = static_cast<char>(0xFF);
    ModelArtifact Out;
    if (decodeModelArtifact(Corrupt, Out)) {
      for (const ModelArtifact::Row &Row : Out.Rows) {
        EXPECT_LT(static_cast<unsigned>(Row.Kind), NumAbstractionKinds);
        EXPECT_LT(Row.Variant, numVariantsOf(Row.Kind));
        EXPECT_LT(static_cast<unsigned>(Row.Op), NumOperationKinds);
        EXPECT_LT(static_cast<unsigned>(Row.Dim), NumCostDimensions);
      }
    }
  }
}

TEST(ModelArtifact, FileRoundTripIsAtomic) {
  ModelArtifact Artifact = sampleArtifact();
  const char *Path = "model_artifact_test.bin";
  std::string Error;
  ASSERT_TRUE(writeModelArtifactToFile(Path, Artifact, &Error)) << Error;
  ModelArtifact Read;
  ASSERT_TRUE(readModelArtifactFromFile(Path, Read, &Error)) << Error;
  EXPECT_EQ(Read, Artifact);
  // Overwrite installs the new artifact completely (tmp+rename).
  Artifact.FitTimestamp += 60;
  ASSERT_TRUE(writeModelArtifactToFile(Path, Artifact, &Error)) << Error;
  ASSERT_TRUE(readModelArtifactFromFile(Path, Read, &Error)) << Error;
  EXPECT_EQ(Read.FitTimestamp, Artifact.FitTimestamp);
  std::remove(Path);
  EXPECT_FALSE(readModelArtifactFromFile(Path, Read, &Error));
}

TEST(ModelArtifact, ModelConversionRoundTrips) {
  PerformanceModel Model = defaultPerformanceModel();
  ModelArtifact Artifact = artifactFromModel(Model);
  EXPECT_FALSE(Artifact.Rows.empty());
  PerformanceModel Back = modelFromArtifact(Artifact);
  // Every polynomial survives the trip.
  for (const ModelArtifact::Row &Row : Artifact.Rows)
    EXPECT_EQ(Back.cost({Row.Kind, Row.Variant}, Row.Op, Row.Dim),
              Row.Cost);
  // And the artifact of the round-tripped model is identical.
  EXPECT_EQ(artifactFromModel(Back), Artifact);
}

TEST(ModelArtifact, HostFingerprintIsStableAndNonEmpty) {
  std::string A = hostFingerprint();
  EXPECT_FALSE(A.empty());
  EXPECT_EQ(A, hostFingerprint());
  EXPECT_NE(A.find('/'), std::string::npos);
}

} // namespace
