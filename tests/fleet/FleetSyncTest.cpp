//===- FleetSyncTest.cpp - Store push/pull over HTTP tests ----------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
//
// End-to-end fleet sync against a real engine endpoint: Switch serves
// /store (GET + POST merge) on an ephemeral loopback port, the fleet
// client pulls and pushes against it. Covers the concurrent push-merge
// path (two writers POSTing while a reader pulls) and every client
// failure class: dead peers, oversized responses, malformed and
// version-skewed documents, oversized pushes.
//
//===----------------------------------------------------------------------===//

#include "fleet/FleetSync.h"

#include "core/Switch.h"
#include "obs/MetricsHttp.h"
#include "support/Telemetry.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

using namespace cswitch;
using namespace cswitch::fleet;

namespace {

StoreSite makeSite(std::string Name, unsigned Decision, uint64_t Runs) {
  StoreSite Site;
  Site.Name = std::move(Name);
  Site.Rule = "amortized";
  Site.Kind = AbstractionKind::List;
  Site.Decision = Decision;
  Site.Runs = Runs;
  Site.Instances = 4;
  Site.MaxSize = 32;
  Site.Counts[0] = 100;
  return Site;
}

/// Quick sync options so failure-path tests spend milliseconds, not the
/// production backoff schedule.
FleetSyncOptions fastSync() {
  return FleetSyncOptions{}
      .requestTimeout(std::chrono::milliseconds(2000))
      .maxRetries(1)
      .backoffBase(std::chrono::milliseconds(1));
}

/// One live engine endpoint serving /store on an ephemeral loopback
/// port, with a scratch store file, torn down on scope exit.
class FleetEndpoint {
public:
  explicit FleetEndpoint(size_t MaxPushBytes = 4u << 20) {
    Switch::stopMetricsServer();
    Switch::closeStore();
    Switch::configure(SwitchConfig{
        EngineOptions{}, ContextOptions{},
        FleetOptions{}.serveStore().maxPushBytes(MaxPushBytes),
        std::string()});
    static int Counter = 0;
    StorePath = "fleet_sync_test_" + std::to_string(++Counter) + ".store";
    std::remove(StorePath.c_str());
    EXPECT_TRUE(Switch::loadStore(StorePath));
    Port = Switch::serveMetrics(0);
    EXPECT_NE(Port, 0);
  }

  ~FleetEndpoint() {
    Switch::stopMetricsServer();
    Switch::closeStore();
    Switch::configure(SwitchConfig{});
    std::remove(StorePath.c_str());
  }

  std::string url() const {
    return "http://127.0.0.1:" + std::to_string(Port) + "/store";
  }

private:
  std::string StorePath;
  uint16_t Port = 0;
};

TEST(FleetSync, RejectsUnsupportedAndMalformedUrls) {
  std::vector<StoreSite> Sites;
  std::string Error;
  EXPECT_FALSE(pullStore("ftp://example/store", Sites, fastSync(), &Error));
  EXPECT_NE(Error.find("http://"), std::string::npos);
  EXPECT_FALSE(pullStore("http://", Sites, fastSync(), &Error));
  EXPECT_NE(Error.find("malformed URL"), std::string::npos);
  EXPECT_FALSE(pushStore("http://:80/store", {}, fastSync(), &Error));
}

TEST(FleetSync, DeadPeerFailsAfterBoundedRetries) {
  FleetStats Before = FleetRegistry::global().stats();
  std::vector<StoreSite> Sites;
  std::string Error;
  // Port 1 on loopback: connection refused, a pure transport failure —
  // retried exactly MaxRetries times, then surfaced.
  EXPECT_FALSE(pullStore("http://127.0.0.1:1/store", Sites,
                         fastSync().maxRetries(2), &Error));
  EXPECT_FALSE(Error.empty());
  FleetStats Delta = FleetRegistry::global().stats() - Before;
  EXPECT_EQ(Delta.PullFailures, 1u);
  EXPECT_EQ(Delta.Pulls, 0u);
  EXPECT_EQ(Delta.Retries, 2u);
}

TEST(FleetSync, StoreRoundTripsOverHttp) {
  FleetEndpoint Endpoint;
  FleetStats Before = FleetRegistry::global().stats();

  // A fresh replica serves an empty document.
  std::vector<StoreSite> Pulled;
  std::string Error;
  ASSERT_TRUE(pullStore(Endpoint.url(), Pulled, fastSync(), &Error))
      << Error;
  EXPECT_TRUE(Pulled.empty());

  // Push two sites; the peer flock-merges them into its store.
  std::vector<StoreSite> Pushed = {makeSite("svc/A.cpp:10", 1, 3),
                                   makeSite("svc/B.cpp:20", 2, 5)};
  ASSERT_TRUE(pushStore(Endpoint.url(), Pushed, fastSync(), &Error))
      << Error;

  // The merged knowledge is served back: both sites present, decisions
  // taken from the pushing side (the local replica had no entries).
  ASSERT_TRUE(pullStore(Endpoint.url(), Pulled, fastSync(), &Error))
      << Error;
  ASSERT_EQ(Pulled.size(), 2u);
  EXPECT_EQ(Pulled[0].Name, "svc/A.cpp:10");
  EXPECT_EQ(Pulled[0].Decision, 1u);
  EXPECT_EQ(Pulled[0].Runs, 3u);
  EXPECT_EQ(Pulled[1].Name, "svc/B.cpp:20");
  EXPECT_EQ(Pulled[1].Decision, 2u);

  FleetStats Delta = FleetRegistry::global().stats() - Before;
  EXPECT_EQ(Delta.Pulls, 2u);
  EXPECT_EQ(Delta.Pushes, 1u);
  EXPECT_EQ(Delta.StoreGets, 2u);
  EXPECT_EQ(Delta.MergesApplied, 1u);
  EXPECT_EQ(Delta.SitesMerged, 2u);
  EXPECT_EQ(Delta.PullFailures, 0u);
  EXPECT_EQ(Delta.PushFailures, 0u);
}

// Satellite of ISSUE 8: two writers POSTing store documents while a
// reader pulls — every request must complete and every pulled document
// must decode (the server serializes handlers; the merge is atomic
// under the store's file lock).
TEST(FleetSync, ConcurrentPushMergeWhileReaderPulls) {
  FleetEndpoint Endpoint;
  constexpr int RoundsPerWriter = 8;

  auto Writer = [&Endpoint](const char *Prefix) {
    for (int Round = 0; Round != RoundsPerWriter; ++Round) {
      std::vector<StoreSite> Sites = {
          makeSite(std::string(Prefix) + "/shared.cpp:1", 1,
                   static_cast<uint64_t>(Round + 1)),
          makeSite("common/hot.cpp:7", 2,
                   static_cast<uint64_t>(Round + 1))};
      std::string Error;
      EXPECT_TRUE(pushStore(Endpoint.url(), Sites, fastSync(), &Error))
          << Error;
    }
  };

  std::thread WriterA(Writer, "writer-a");
  std::thread WriterB(Writer, "writer-b");
  for (int Round = 0; Round != RoundsPerWriter; ++Round) {
    std::vector<StoreSite> Sites;
    std::string Error;
    EXPECT_TRUE(pullStore(Endpoint.url(), Sites, fastSync(), &Error))
        << Error;
  }
  WriterA.join();
  WriterB.join();

  // After the dust settles every site name pushed by either writer is
  // in the merged document exactly once.
  std::vector<StoreSite> Final;
  std::string Error;
  ASSERT_TRUE(pullStore(Endpoint.url(), Final, fastSync(), &Error)) << Error;
  ASSERT_EQ(Final.size(), 3u);
  EXPECT_EQ(Final[0].Name, "common/hot.cpp:7");
  EXPECT_EQ(Final[1].Name, "writer-a/shared.cpp:1");
  EXPECT_EQ(Final[2].Name, "writer-b/shared.cpp:1");
  // Runs accumulate across merges: every push of the common site
  // contributed its run count on top of the merged aggregate.
  EXPECT_GE(Final[0].Runs, static_cast<uint64_t>(RoundsPerWriter));
}

TEST(FleetSync, OversizedPushIsRefusedBeforeMerge) {
  FleetEndpoint Endpoint(/*MaxPushBytes=*/64);
  FleetStats Before = FleetRegistry::global().stats();

  std::vector<StoreSite> Sites = {
      makeSite(std::string(256, 'x') + ":1", 1, 1)};
  std::string Error;
  EXPECT_FALSE(pushStore(Endpoint.url(), Sites, fastSync(), &Error));
  EXPECT_NE(Error.find("413"), std::string::npos) << Error;

  // Nothing was merged; the store still serves the empty document.
  std::vector<StoreSite> Pulled;
  ASSERT_TRUE(pullStore(Endpoint.url(), Pulled, fastSync(), &Error))
      << Error;
  EXPECT_TRUE(Pulled.empty());

  FleetStats Delta = FleetRegistry::global().stats() - Before;
  EXPECT_EQ(Delta.PushFailures, 1u);
  EXPECT_EQ(Delta.MergesApplied, 0u);
}

TEST(FleetSync, MalformedPushAnswers400AndCountsRejection) {
  FleetEndpoint Endpoint;
  FleetStats Before = FleetRegistry::global().stats();

  HttpResponse Response;
  std::string Error;
  ASSERT_TRUE(httpPost(Endpoint.url(), "not a store document", Response,
                       fastSync(), &Error))
      << Error;
  EXPECT_EQ(Response.Status, 400);
  EXPECT_NE(Response.Body.find("merge failed"), std::string::npos);

  FleetStats Delta = FleetRegistry::global().stats() - Before;
  EXPECT_EQ(Delta.RejectedMalformed, 1u);
  EXPECT_EQ(Delta.MergesApplied, 0u);
}

TEST(FleetSync, OversizedResponseIsRejectedWithoutRetry) {
  FleetEndpoint Endpoint;
  std::vector<StoreSite> Pushed = {makeSite("svc/big.cpp:1", 1, 1)};
  std::string Error;
  ASSERT_TRUE(pushStore(Endpoint.url(), Pushed, fastSync(), &Error))
      << Error;

  FleetStats Before = FleetRegistry::global().stats();
  std::vector<StoreSite> Pulled;
  // A 32-byte cap cannot even hold the status line: the pull is
  // rejected as a policy violation — no retries, straight to failure.
  EXPECT_FALSE(pullStore(Endpoint.url(), Pulled,
                         fastSync().maxResponseBytes(32), &Error));
  EXPECT_NE(Error.find("size limit"), std::string::npos);
  FleetStats Delta = FleetRegistry::global().stats() - Before;
  EXPECT_EQ(Delta.RejectedOversize, 1u);
  EXPECT_EQ(Delta.PullFailures, 1u);
  EXPECT_EQ(Delta.Retries, 0u);
}

TEST(FleetSync, MalformedAndVersionSkewedDocumentsAreClassified) {
  // A hostile/broken peer built directly on the HTTP layer: one route
  // serves garbage, the other a version-skewed but well-formed store.
  std::string Skewed = encodeStore({});
  ASSERT_GT(Skewed.size(), 16u);
  Skewed[16] = 0x7f; // Bump the version varint after the 16-byte magic.

  obs::MetricsServer Server;
  Server.handle("/garbage", "application/octet-stream",
                [] { return std::string("definitely not a store"); });
  Server.handle("/skewed", "application/octet-stream",
                [Skewed] { return Skewed; });
  ASSERT_TRUE(Server.start(0));
  std::string Base = "http://127.0.0.1:" + std::to_string(Server.port());

  FleetStats Before = FleetRegistry::global().stats();
  std::vector<StoreSite> Sites;
  std::string Error;
  EXPECT_FALSE(pullStore(Base + "/garbage", Sites, fastSync(), &Error));
  FleetStats Delta = FleetRegistry::global().stats() - Before;
  EXPECT_EQ(Delta.RejectedMalformed, 1u);
  EXPECT_EQ(Delta.RejectedIncompatible, 0u);

  EXPECT_FALSE(pullStore(Base + "/skewed", Sites, fastSync(), &Error));
  EXPECT_NE(Error.find("unsupported cswitch-store version"),
            std::string::npos)
      << Error;
  Delta = FleetRegistry::global().stats() - Before;
  EXPECT_EQ(Delta.RejectedIncompatible, 1u);
  EXPECT_EQ(Delta.PullFailures, 2u);
}

TEST(FleetSync, StoreEndpointAbsentWithoutOptIn) {
  // Without FleetOptions::ServeStore the metrics server must not expose
  // the store at all — the endpoint is strictly opt-in.
  Switch::stopMetricsServer();
  Switch::configure(SwitchConfig{});
  uint16_t Port = Switch::serveMetrics(0);
  ASSERT_NE(Port, 0);
  HttpResponse Response;
  std::string Error;
  ASSERT_TRUE(httpGet("http://127.0.0.1:" + std::to_string(Port) + "/store",
                      Response, fastSync(), &Error))
      << Error;
  EXPECT_EQ(Response.Status, 404);
  Switch::stopMetricsServer();
}

} // namespace
