//===- RewriterTest.cpp - Allocation-site rewriter tests ---------------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests of the automated parser (paper §4.3): recognized declaration
/// shapes, the std-container-to-variant mapping, conservatism around
/// initializers, and immunity to comments and string literals.
///
//===----------------------------------------------------------------------===//

#include "rewriter/Rewriter.h"

#include <gtest/gtest.h>

using namespace cswitch;

namespace {

RewriterOptions namedOptions(const char *File = "test.cpp") {
  RewriterOptions Options;
  Options.FileName = File;
  return Options;
}

TEST(Rewriter, RewritesVectorDeclaration) {
  RewriteResult R = rewriteSource("std::vector<int64_t> rows;",
                                  namedOptions());
  ASSERT_EQ(R.Actions.size(), 1u);
  EXPECT_TRUE(R.Actions[0].Rewritten);
  EXPECT_EQ(R.Actions[0].ContainerName, "std::vector");
  EXPECT_EQ(R.Actions[0].ElementText, "int64_t");
  EXPECT_EQ(R.Actions[0].VariableName, "rows");
  EXPECT_EQ(R.Actions[0].SiteName, "test.cpp:1");
  EXPECT_EQ(R.Actions[0].Abstraction, AbstractionKind::List);
  EXPECT_EQ(R.Code,
            "static auto rows_Ctx = "
            "cswitch::Switch::makeContext<cswitch::List<int64_t>>("
            "\"test.cpp:1\", "
            "cswitch::ListVariant::ArrayList); auto rows = "
            "rows_Ctx->createList();");
}

TEST(Rewriter, MapsContainersToDefaultVariants) {
  struct Case {
    const char *Decl;
    const char *ExpectVariant;
    AbstractionKind Kind;
  };
  const Case Cases[] = {
      {"std::vector<int> a;", "ListVariant::ArrayList",
       AbstractionKind::List},
      {"std::unordered_set<int> b;", "SetVariant::ChainedHashSet",
       AbstractionKind::Set},
      {"std::set<int> c;", "SetVariant::TreeSet", AbstractionKind::Set},
      {"std::unordered_map<int, int> d;", "MapVariant::ChainedHashMap",
       AbstractionKind::Map},
      {"std::map<int, int> e;", "MapVariant::TreeMap",
       AbstractionKind::Map},
  };
  for (const Case &C : Cases) {
    RewriteResult R = rewriteSource(C.Decl, namedOptions());
    ASSERT_EQ(R.Actions.size(), 1u) << C.Decl;
    EXPECT_TRUE(R.Actions[0].Rewritten) << C.Decl;
    EXPECT_EQ(R.Actions[0].Abstraction, C.Kind) << C.Decl;
    EXPECT_NE(R.Code.find(C.ExpectVariant), std::string::npos) << C.Decl;
  }
}

TEST(Rewriter, MapDeclarationKeepsBothTypeArguments) {
  RewriteResult R = rewriteSource(
      "std::unordered_map<int64_t, double> scores;", namedOptions());
  ASSERT_EQ(R.rewrittenCount(), 1u);
  EXPECT_EQ(R.Actions[0].ElementText, "int64_t, double");
  EXPECT_NE(R.Code.find("makeContext<cswitch::Map<int64_t, double>>"),
            std::string::npos);
}

TEST(Rewriter, HandlesNestedTemplateArguments) {
  RewriteResult R = rewriteSource(
      "std::vector<std::pair<int, std::vector<long>>> edges;",
      namedOptions());
  ASSERT_EQ(R.rewrittenCount(), 1u);
  EXPECT_EQ(R.Actions[0].ElementText,
            "std::pair<int, std::vector<long>>");
  EXPECT_EQ(R.Actions[0].VariableName, "edges");
}

TEST(Rewriter, SkipsInitializedDeclarations) {
  for (const char *Decl :
       {"std::vector<int> v = makeVector();",
        "std::vector<int> v{1, 2, 3};", "std::vector<int> v(10);",
        "std::set<int> s = {};"}) {
    RewriteResult R = rewriteSource(Decl, namedOptions());
    ASSERT_EQ(R.Actions.size(), 1u) << Decl;
    EXPECT_FALSE(R.Actions[0].Rewritten) << Decl;
    EXPECT_FALSE(R.Actions[0].SkipReason.empty()) << Decl;
    EXPECT_EQ(R.Code, Decl) << "skipped code must be untouched";
  }
}

TEST(Rewriter, IgnoresCommentsAndStrings) {
  const char *Source =
      "// std::vector<int> commented;\n"
      "/* std::set<int> blockComment; */\n"
      "const char *s = \"std::vector<int> inString;\";\n"
      "std::vector<int> real;\n";
  RewriteResult R = rewriteSource(Source, namedOptions());
  ASSERT_EQ(R.Actions.size(), 1u);
  EXPECT_EQ(R.Actions[0].VariableName, "real");
  EXPECT_EQ(R.Actions[0].Line, 4u);
  EXPECT_EQ(R.Actions[0].SiteName, "test.cpp:4");
}

TEST(Rewriter, RewritesMultipleSitesPreservingSurroundings) {
  const char *Source = "void f() {\n"
                       "  std::vector<int> a;\n"
                       "  int x = 1;\n"
                       "  std::set<long> b;\n"
                       "}\n";
  RewriteResult R = rewriteSource(Source, namedOptions());
  EXPECT_EQ(R.rewrittenCount(), 2u);
  EXPECT_NE(R.Code.find("void f() {"), std::string::npos);
  EXPECT_NE(R.Code.find("int x = 1;"), std::string::npos);
  EXPECT_NE(R.Code.find("a_Ctx->createList()"), std::string::npos);
  EXPECT_NE(R.Code.find("b_Ctx->createSet()"), std::string::npos);
  EXPECT_NE(R.Code.find("test.cpp:2"), std::string::npos);
  EXPECT_NE(R.Code.find("test.cpp:4"), std::string::npos);
}

TEST(Rewriter, LeavesUnrelatedStdTypesAlone) {
  const char *Source = "std::string name;\n"
                       "std::array<int, 4> fixed;\n"
                       "std::vector<int>::iterator it;\n";
  RewriteResult R = rewriteSource(Source, namedOptions());
  // std::string / std::array are not collections we manage; the
  // iterator declaration is not a simple container declaration (the
  // token after '>' is '::', not an identifier).
  EXPECT_EQ(R.rewrittenCount(), 0u);
  EXPECT_EQ(R.Code, Source);
}

TEST(Rewriter, DryRunReportsWithoutChanging) {
  RewriterOptions Options = namedOptions();
  Options.DryRun = true;
  const char *Source = "std::vector<int> v;";
  RewriteResult R = rewriteSource(Source, Options);
  ASSERT_EQ(R.Actions.size(), 1u);
  EXPECT_FALSE(R.Actions[0].Rewritten);
  EXPECT_EQ(R.Code, Source);
}

TEST(Rewriter, UnbalancedTemplateBails) {
  const char *Source = "std::vector<int foo;";
  RewriteResult R = rewriteSource(Source, namedOptions());
  EXPECT_EQ(R.rewrittenCount(), 0u);
  EXPECT_EQ(R.Code, Source);
}

TEST(Rewriter, EmptySourceIsFine) {
  RewriteResult R = rewriteSource("", namedOptions());
  EXPECT_TRUE(R.Actions.empty());
  EXPECT_TRUE(R.Code.empty());
}

TEST(Rewriter, GeneratedCodeCompilesAgainstTheFramework) {
  // Not a compile test per se, but the generated text must reference
  // only real API names — pin them so refactors keep the tool in sync.
  RewriteResult R = rewriteSource("std::unordered_map<int, int> m;",
                                  namedOptions());
  EXPECT_NE(R.Code.find("cswitch::Switch::makeContext<cswitch::Map<"),
            std::string::npos);
  EXPECT_NE(R.Code.find("cswitch::MapVariant::ChainedHashMap"),
            std::string::npos);
  EXPECT_NE(R.Code.find("->createMap()"), std::string::npos);
}

} // namespace
